//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no cargo-registry access, so this crate
//! provides the subset of the `criterion 0.5` API used by the workspace's
//! benches: [`Criterion::benchmark_group`] with sample-size / warm-up /
//! measurement-time / throughput knobs, [`BenchmarkGroup::bench_with_input`]
//! and [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, the
//! per-iteration cost is estimated, and `sample_size` timed samples are
//! taken; the median per-iteration time (and throughput, when set) is
//! printed. There is no statistical analysis, plotting, or baseline
//! comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let (sample_size, warm_up, measurement) = (
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        run_benchmark(&label, sample_size, warm_up, measurement, None, f);
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm a benchmark up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget the samples should roughly fill.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the work per iteration, enabling a throughput report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Units of work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

/// `cargo bench -- <filter>` support: non-flag command-line arguments are
/// substring filters on the benchmark label.
fn matches_filter(label: &str) -> bool {
    use std::sync::OnceLock;
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    let filters = FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    });
    filters.is_empty() || filters.iter().any(|f| label.contains(f.as_str()))
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !matches_filter(label) {
        return;
    }
    // Warm up and estimate the per-iteration cost.
    let mut iters: u64 = 1;
    let mut per_iter = Duration::from_secs(1);
    let warm_start = Instant::now();
    loop {
        let elapsed = time_once(&mut f, iters);
        if !elapsed.is_zero() {
            per_iter = elapsed / iters as u32;
        }
        if warm_start.elapsed() >= warm_up {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 20);
    }

    // Pick an iteration count so that `sample_size` samples roughly fill
    // the measurement budget, then sample.
    let budget_per_sample = measurement / sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1 << 10
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };
    let mut samples: Vec<Duration> = (0..sample_size)
        .map(|_| time_once(&mut f, iters_per_sample) / iters_per_sample as u32)
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];

    match throughput {
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{label:<60} {median:>12.2?}/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{label:<60} {median:>12.2?}/iter {rate:>14.0} B/s");
        }
        _ => println!("{label:<60} {median:>12.2?}/iter"),
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`
            // (ignored); non-flag arguments act as substring filters on
            // benchmark labels, matching real criterion's behavior.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        group.throughput(Throughput::Elements(64));
        let data: Vec<u64> = (0..64).collect();
        group.bench_with_input(BenchmarkId::new("sum", 64), &data, |b, data| {
            b.iter(|| data.iter().sum::<u64>())
        });
        group.finish();
    }
}
