//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the small subset of the `rand 0.8` API the workspace uses
//! is reimplemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! and [`Rng::gen_bool`]. The generator is a SplitMix64 — statistically
//! ample for the deterministic dataset generators and benchmarks that
//! consume it (not cryptographic, exactly like `StdRng`'s contract of
//! being reproducible but unspecified).

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Creates an rng whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`; panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let v = low + (high - low) * unit_f64(rng.next_u64()) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v < high { v } else { low }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                low + (high - low) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable rng (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..50), b.gen_range(0usize..50));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..=6);
            assert!((3..=6).contains(&x));
            let y = rng.gen_range(0u32..10);
            assert!(y < 10);
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<u8> = (0..200).map(|_| rng.gen_range(1u8..=3)).collect();
        assert!(draws.contains(&1) && draws.contains(&3));
    }
}
