//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no cargo-registry access, so this crate
//! reimplements the subset of the `proptest 1.x` API used by the
//! workspace's property tests:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_recursive`] and [`Strategy::boxed`];
//! * range, tuple, [`Just`] and [`collection::vec`] strategies plus
//!   [`any`] (for `bool`);
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::Config`] / `ProptestConfig::with_cases`, honouring a
//!   `PROPTEST_CASES` environment override.
//!
//! Differences from real proptest: generation is plain random testing
//! driven by a per-test deterministic seed — there is **no shrinking**,
//! and `prop_assert*` simply panic (reporting the case number via the
//! panic location). That is sufficient for CI-style pass/fail property
//! checking while keeping the stub dependency-free.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `Vec` is needed here).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::{Range, RangeInclusive};

    /// Anything that can describe the permitted lengths of a generated `Vec`.
    pub trait IntoSizeRange {
        /// Returns the `(min, max)` inclusive length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy::new(element, min, max)
    }
}

/// Generates a value of `A` via its canonical strategy (`any::<bool>()` etc.).
pub fn any<A: strategy::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Property-test entry point: wraps `fn name(x in strategy, ...) { body }`
/// items into `#[test]` functions that run the body over `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal tt-muncher behind [`proptest!`]; do not use directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Build each strategy once, bound to its argument's name; the
            // per-case `let` below shadows it with a generated value.
            let ($($arg,)*) = ($($strat,)*);
            for __case in 0..__config.cases {
                $crate::test_runner::CURRENT_CASE.with(|c| c.set(__case));
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                // Mirror real proptest: the body runs in a closure
                // returning `Result`, so `return Ok(());` early-exits
                // the current case only.
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} rejected: {:?}", __case, e);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Chooses between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property; panics with the failing case id.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!(
                "proptest case {} failed: {}",
                $crate::test_runner::CURRENT_CASE.with(|c| c.get()),
                format!($($fmt)*)
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}
