//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the rng stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a recursively nested strategy: `recurse` receives the
    /// strategy for the previous nesting level and returns one for the
    /// next. `depth` bounds the nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = WeightedUnion::new(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice between boxed strategies (behind [`crate::prop_oneof!`]).
pub struct WeightedUnion<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for WeightedUnion<T> {
    fn clone(&self) -> Self {
        WeightedUnion {
            branches: self.branches.clone(),
            total: self.total,
        }
    }
}

impl<T> WeightedUnion<T> {
    /// Builds the union; at least one branch with positive weight is required.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = branches.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        WeightedUnion { branches, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.branches {
            let weight = *weight as u64;
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, min: usize, max: usize) -> Self {
        assert!(min <= max, "invalid vec size bounds {min}..={max}");
        VecStrategy { element, min, max }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min) as u64 + 1;
        let len = self.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `&str` patterns act as string strategies, as in real proptest. Only a
/// small regex subset is understood: literal characters, `.`, character
/// classes `[a-z0-9]`, and the quantifiers `{m,n}`, `{m,}`, `{m}`, `*`,
/// `+`, `?`. Unsupported constructs panic at generation time.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum RegexAtom {
    Dot,
    Lit(char),
    Class(Vec<(char, char)>),
}

/// Characters `.` draws from: a spread of ASCII plus a few multi-byte
/// code points so parsers get exercised on non-ASCII input too.
const DOT_PALETTE: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '?', '*', '.', ',', ';', ':', '{', '}', '<',
    '>', '[', ']', '(', ')', '"', '\'', '\\', '/', '-', '_', '#', '@', 'é', 'λ', '→', '中', '𝕏',
];

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<(RegexAtom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => RegexAtom::Dot,
            '\\' => RegexAtom::Lit(chars.next().expect("dangling escape in pattern")),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().expect("unterminated character class");
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unterminated class range");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                RegexAtom::Class(ranges)
            }
            '(' | ')' | '|' => panic!("unsupported regex construct {c:?} in strategy pattern"),
            other => RegexAtom::Lit(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    None => {
                        let n = body.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                    Some((m, "")) => {
                        let m: usize = m.trim().parse().expect("bad {m,} quantifier");
                        (m, m + 8)
                    }
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                }
            }
            _ => (1, 1),
        };
        assert!(
            min <= max,
            "bad quantifier {{{min},{max}}} in strategy pattern {pattern:?}"
        );
        atoms.push((atom, min, max));
    }

    let mut out = String::new();
    for (atom, min, max) in atoms {
        let count = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                RegexAtom::Dot => {
                    out.push(DOT_PALETTE[(rng.next_u64() % DOT_PALETTE.len() as u64) as usize])
                }
                RegexAtom::Lit(c) => out.push(*c),
                RegexAtom::Class(ranges) => {
                    let (lo, hi) = ranges[(rng.next_u64() % ranges.len() as u64) as usize];
                    let span = (hi as u32) - (lo as u32) + 1;
                    let code = lo as u32 + (rng.next_u64() % span as u64) as u32;
                    out.push(char::from_u32(code).unwrap_or(lo));
                }
            }
        }
    }
    out
}

/// Types with a canonical strategy, used by [`crate::any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $any:ident),*) => {$(
        /// Canonical full-range strategy for the named integer type.
        #[derive(Debug, Clone, Copy)]
        pub struct $any;

        impl Strategy for $any {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $any;

            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_stay_in_bounds() {
        let mut rng = TestRng::deterministic("strategy-tests");
        let strat = crate::collection::vec((0u8..4, 10u32..=12), 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((10..=12).contains(&b));
            }
        }
    }

    #[test]
    fn weighted_union_hits_every_branch() {
        let mut rng = TestRng::deterministic("union-tests");
        let strat = crate::prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let draws: Vec<u8> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => {
                    assert!(*n < 8, "leaf out of strategy range");
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..8).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("recursive-tests");
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never fired");
    }
}
