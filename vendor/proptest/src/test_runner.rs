//! Test configuration and the deterministic rng driving generation.

use std::cell::Cell;

thread_local! {
    /// Index of the property-test case currently executing; used by the
    /// `prop_assert*` macros to report which case failed.
    pub static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

/// Error type a property body may `return Err(..)` with (compatibility
/// shim for real proptest's `TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 32 cases (kept modest so `cargo test -q` stays fast), overridable
    /// with the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        Config { cases }
    }
}

/// Deterministic SplitMix64 stream, seeded from the test's module path so
/// every property test explores a distinct but reproducible input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the rng from `name` (FNV-1a), optionally perturbed by the
    /// `PROPTEST_SEED` environment variable.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = extra.parse::<u64>() {
                // Mix rather than XOR so every seed value — including 0 —
                // selects a stream distinct from the unseeded default.
                hash = (hash ^ seed)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            }
        }
        TestRng { state: hash }
    }

    /// Returns the next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
