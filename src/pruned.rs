//! Dual-simulation pruning as a built-in query-processing stage.
//!
//! The paper's conclusion argues that "most database systems would
//! benefit from a direct integration of our proposal into their query
//! processor". [`PrunedEngine`] is that integration for the in-house
//! engines: it wraps any [`Engine`] and evaluates every query on the
//! per-query pruned database instead of the full one.
//!
//! For well-designed queries the wrapper is observationally equivalent
//! to the inner engine (Thm. 2 and the well-designedness argument in
//! `dualsim-core::pruning`); for non-well-designed queries it may return
//! a superset of rows, so [`PrunedEngine::new`] rejects those unless
//! explicitly allowed with [`PrunedEngine::allowing_overapproximation`].

use dualsim_core::{prune_with, SimulationKind, SolverConfig};
use dualsim_engine::{Engine, ResultSet};
use dualsim_graph::GraphDb;
use dualsim_query::Query;

/// An [`Engine`] wrapper that prunes the database per query before
/// delegating to the inner engine.
#[derive(Debug, Clone)]
pub struct PrunedEngine<E> {
    inner: E,
    config: SolverConfig,
    threads: usize,
    allow_overapproximation: bool,
}

impl<E: Engine> PrunedEngine<E> {
    /// Wraps `inner` with default solver configuration and sequential
    /// extraction.
    pub fn new(inner: E) -> Self {
        PrunedEngine {
            inner,
            config: SolverConfig::default(),
            threads: 1,
            allow_overapproximation: false,
        }
    }

    /// Overrides the solver configuration.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Fans the pruning extraction out over `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Permits non-well-designed queries, whose pruned evaluation may
    /// contain spurious rows (a sound over-approximation per Def. 3;
    /// callers must re-check candidate rows).
    pub fn allowing_overapproximation(mut self) -> Self {
        self.allow_overapproximation = true;
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Engine> Engine for PrunedEngine<E> {
    fn name(&self) -> &'static str {
        "pruned"
    }

    /// Evaluates via prune-then-delegate.
    ///
    /// # Panics
    /// Panics on non-well-designed queries unless
    /// [`PrunedEngine::allowing_overapproximation`] was called.
    fn evaluate(&self, db: &GraphDb, query: &Query) -> ResultSet {
        assert!(
            self.allow_overapproximation || query.is_well_designed(),
            "pruned evaluation of a non-well-designed query may \
             over-approximate; opt in with allowing_overapproximation()"
        );
        let report = prune_with(db, query, &self.config, SimulationKind::Dual, self.threads);
        let pruned = report.pruned_db(db);
        self.inner.evaluate(&pruned, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualsim_datagen::paper::{fig1_db, query_x1, query_x2, query_x3};
    use dualsim_engine::{HashJoinEngine, NestedLoopEngine};

    #[test]
    fn pruned_engine_is_observationally_equivalent_on_wd_queries() {
        let db = fig1_db();
        for q in [query_x1(), query_x2()] {
            let direct = NestedLoopEngine.evaluate(&db, &q);
            let pruned = PrunedEngine::new(NestedLoopEngine).evaluate(&db, &q);
            assert_eq!(direct, pruned);
        }
    }

    #[test]
    #[should_panic(expected = "over-approximate")]
    fn non_well_designed_queries_are_rejected_by_default() {
        let db = fig1_db();
        let _ = PrunedEngine::new(HashJoinEngine).evaluate(&db, &query_x3());
    }

    #[test]
    fn opt_in_allows_non_well_designed_queries() {
        let db = dualsim_datagen::paper::fig5_db();
        let engine = PrunedEngine::new(HashJoinEngine).allowing_overapproximation();
        let rows = engine.evaluate(&db, &query_x3());
        // On this instance the over-approximation happens to be exact.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn builder_knobs_compose() {
        let db = fig1_db();
        let engine = PrunedEngine::new(NestedLoopEngine)
            .with_threads(4)
            .with_config(SolverConfig::default());
        let q = query_x1();
        assert_eq!(engine.count(&db, &q), 2);
        assert_eq!(engine.name(), "pruned");
        assert_eq!(engine.inner().name(), "nested-loop");
    }
}
