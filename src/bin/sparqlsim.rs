//! `sparqlsim` — command-line dual simulation processing, mirroring the
//! paper's prototype of the same name.
//!
//! ```text
//! sparqlsim stats    --data DB.nt
//! sparqlsim solve    --data DB.nt (--query Q.rq | --query-text '…') [--strategy S] [--no-early-exit]
//! sparqlsim prune    --data DB.nt (--query Q.rq | --query-text '…') [--output PRUNED.nt]
//! sparqlsim eval     --data DB.nt (--query Q.rq | --query-text '…') [--engine nested|hash] [--limit N] [--pruned]
//! sparqlsim maintain --data DB.nt (--query Q.rq | --query-text '…') --updates U.txt [--fixpoint delta] [--wal DIR [--snapshot-every N]]
//! sparqlsim maintain --resume --wal DIR [--updates MORE.txt]
//! sparqlsim serve    --data DB.nt --queries DIR --updates U.txt [--wal DIR] [--on-error P]
//! ```
//!
//! `solve` prints the largest dual simulation per query variable,
//! `prune` writes/reports the per-query pruning (Sect. 5.2), `eval`
//! runs one of the reference engines, optionally on the pruned database,
//! and `maintain` keeps one solution alive across a signed update stream
//! (N-Triples lines prefixed `+`/`-`; consecutive same-sign lines form a
//! batch) — with `--fixpoint delta` every batch is absorbed by the warm
//! counter-driven maintenance paths instead of a cold re-solve. With
//! `--wal DIR` the resident solution is durable: every committed batch
//! is written ahead to a checksummed log and full-state snapshots are
//! kept, so a later `--resume` run recovers the database, the query and
//! the warm solution from disk instead of `--data`/`--query`.
//!
//! `serve` is the multi-query resident session: every `.rq` file under
//! `--queries DIR` becomes a standing query over one shared database,
//! each shared update batch is validated and deduplicated once and
//! fanned out to every query, and a failure in one query degrades only
//! that query (it keeps serving its last committed match set, marked
//! stale, and heals by deterministic retry/backoff escalating to a cold
//! rebuild) while the others commit normally.

use dualsim::core::{
    build_sois, prune, solve_query, ChiBackend, DrainStrategy, DurabilityOptions, EvalStrategy,
    FixpointMode, IncrementalDualSim, KernelBackend, QueryOutcome, QuerySession,
    SessionDurability, SessionOptions, SlabBackend, SolverConfig,
};
use dualsim::engine::{Engine, HashJoinEngine, NestedLoopEngine};
use dualsim::graph::{parse_ntriples, write_ntriples, GraphDb};
use dualsim::query::{parse, Query};
use std::process::ExitCode;

/// Restores the default `SIGPIPE` disposition so `sparqlsim … | head`
/// terminates quietly instead of panicking on a closed stdout.
#[cfg(unix)]
fn restore_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_sigpipe() {}

fn main() -> ExitCode {
    restore_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: sparqlsim <command> --data FILE.nt [options]

commands:
  stats        print database statistics
  solve        compute the largest dual simulation for a query
  prune        prune the database for a query (Sect. 5.2)
  eval         evaluate a query with a reference engine
  maintain     maintain one solution across a +/- update stream
  serve        maintain many standing queries across one shared stream
  fingerprint  build the simulation-quotient index (Sect. 6 extension)

options:
  --data FILE.nt        N-Triples database (required)
  --query FILE.rq       query file (SPARQL-S concrete syntax)
  --query-text 'Q'      query given inline
  --strategy S          rowwise | colwise | adaptive   (default adaptive)
  --fixpoint F          reeval | delta                 (default reeval)
  --fixpoint-threads N  delta: drain the removal worklist sharded over N
                        scoped threads (default 1 = sequential; identical
                        solution and work counts for every N)
  --chi-backend B       dense | rle | auto             (default dense)
                        χ storage: dense bit vectors, run-length encoded
                        ones, or a per-solve choice from the seeded
                        candidate density — identical solution and work
                        counts for every backend
  --slab-backend B      dense | sparse | auto          (default dense)
                        delta: support-counter storage — dense u32 arrays,
                        sparse hash counters, or a per-solve choice from
                        the same density bound the χ auto uses; identical
                        solution and logical work counts for every backend
  --seed-threads N      delta: fan the eager counter seeds out over N
                        scoped threads (default 1; identical solution and
                        work counts for every N)
  --kernel-backend K    scalar | unrolled | simd | auto (default auto)
                        word-level kernel instantiation for the bit-vector
                        inner loops: portable scalar, 4x-unrolled, SIMD
                        (AVX2 with runtime detection and scalar fallback),
                        or the best available; identical solution and work
                        counts for every kernel
  --no-early-exit       keep solving after a mandatory variable empties
  --updates FILE        maintain: signed update stream — N-Triples lines
                        prefixed '+' (insert) or '-' (delete); terms must
                        come from the database's fixed vocabulary
  --on-error P          maintain: skip | abort | rollback (default abort)
                        what to do when an update line fails to parse or
                        a batch fails to apply — skip it and continue,
                        abort the run, or roll the batch back and keep
                        the recovered pre-batch solution
  --wal DIR             maintain: durable mode — append every committed
                        batch to a checksummed write-ahead log and keep
                        full-state snapshots under DIR (one branch-<i>/
                        subdirectory per union branch)
  --snapshot-every N    maintain: with --wal, also write a snapshot after
                        every N committed batches (default: only the
                        initial post-solve snapshot; N must be > 0)
  --keep-snapshots N    with --wal, retain only the newest N snapshots
                        per branch, pruning older ones after each
                        successful write (default 2 so recovery can fall
                        back across one corrupted newest; 0 keeps all)
  --queries DIR         serve: register every .rq file under DIR as a
                        standing query (named by file stem) over the
                        shared database; --on-error maps to the session
                        ladder — skip heals degraded queries by
                        retry/backoff (default), rollback quarantines
                        them at the first failure (still serving their
                        last committed match set), abort stops the run
  --resume              maintain: recover database, query and resident
                        solution from --wal DIR (newest snapshot whose
                        checksum verifies, plus the WAL tail; a torn
                        final record is truncated) instead of loading
                        --data/--query, then apply --updates (optional
                        here) on top of the recovered state
  --drain-budget N      delta: cancel any maintenance drain that exceeds
                        N logical ops in one batch; the engine rolls the
                        batch back and the next update falls back to a
                        cold re-solve (default unlimited)
  --no-journal          delta: disable the per-batch rollback journal
                        (errors then poison the engine instead of
                        restoring the pre-batch solution)
  --output FILE.nt      prune: write the pruned database as N-Triples
  --engine E            eval: nested | hash            (default nested)
  --limit N             eval: print at most N rows     (default 20)
  --pruned              eval: evaluate on the pruned database
  --exclude-labels L,M  fingerprint: predicates to leave out of the index";

/// What `maintain` does when an update line fails to parse or a batch
/// fails to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnError {
    /// Report the failure and continue with the next line / batch.
    Skip,
    /// Stop immediately with a non-zero exit (default).
    Abort,
    /// Report, roll the failing batch back (every union branch restored
    /// to its pre-batch solution), drop the rest of the stream, and
    /// still print the recovered solution with a zero exit.
    Rollback,
}

/// Parsed command line.
struct Opts {
    command: String,
    data: Option<String>,
    query: Option<String>,
    query_text: Option<String>,
    strategy: EvalStrategy,
    fixpoint: FixpointMode,
    fixpoint_threads: usize,
    chi_backend: ChiBackend,
    slab_backend: SlabBackend,
    kernel_backend: KernelBackend,
    seed_threads: usize,
    early_exit: bool,
    updates: Option<String>,
    wal: Option<String>,
    snapshot_every: Option<u64>,
    keep_snapshots: usize,
    queries_dir: Option<String>,
    resume: bool,
    on_error: OnError,
    drain_budget: Option<usize>,
    journal: bool,
    output: Option<String>,
    engine: String,
    limit: usize,
    pruned: bool,
    exclude_labels: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        command: args.first().cloned().ok_or("missing command")?,
        data: None,
        query: None,
        query_text: None,
        strategy: EvalStrategy::Adaptive,
        fixpoint: FixpointMode::Reevaluate,
        fixpoint_threads: 1,
        chi_backend: ChiBackend::Dense,
        slab_backend: SlabBackend::Dense,
        kernel_backend: KernelBackend::Auto,
        seed_threads: 1,
        early_exit: true,
        updates: None,
        wal: None,
        snapshot_every: None,
        keep_snapshots: 2,
        queries_dir: None,
        resume: false,
        on_error: OnError::Abort,
        drain_budget: None,
        journal: true,
        output: None,
        engine: "nested".to_owned(),
        limit: 20,
        pruned: false,
        exclude_labels: Vec::new(),
    };
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--data" => opts.data = Some(value()?),
            "--updates" => opts.updates = Some(value()?),
            "--wal" => opts.wal = Some(value()?),
            "--snapshot-every" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?;
                if n == 0 {
                    return Err("--snapshot-every must be at least 1".into());
                }
                opts.snapshot_every = Some(n);
            }
            "--keep-snapshots" => {
                opts.keep_snapshots = value()?
                    .parse()
                    .map_err(|e| format!("--keep-snapshots: {e}"))?;
            }
            "--queries" => opts.queries_dir = Some(value()?),
            "--resume" => opts.resume = true,
            "--on-error" => {
                opts.on_error = match value()?.as_str() {
                    "skip" => OnError::Skip,
                    "abort" => OnError::Abort,
                    "rollback" => OnError::Rollback,
                    other => return Err(format!("unknown on-error policy {other:?}")),
                };
            }
            "--drain-budget" => {
                opts.drain_budget = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--drain-budget: {e}"))?,
                );
            }
            "--no-journal" => opts.journal = false,
            "--query" => opts.query = Some(value()?),
            "--query-text" => opts.query_text = Some(value()?),
            "--output" => opts.output = Some(value()?),
            "--engine" => opts.engine = value()?,
            "--limit" => {
                opts.limit = value()?.parse().map_err(|e| format!("--limit: {e}"))?;
            }
            "--strategy" => {
                opts.strategy = match value()?.as_str() {
                    "rowwise" => EvalStrategy::RowWise,
                    "colwise" => EvalStrategy::ColumnWise,
                    "adaptive" => EvalStrategy::Adaptive,
                    other => return Err(format!("unknown strategy {other:?}")),
                };
            }
            "--fixpoint" => {
                opts.fixpoint = match value()?.as_str() {
                    "reeval" | "reevaluate" => FixpointMode::Reevaluate,
                    "delta" => FixpointMode::DeltaCounting,
                    other => return Err(format!("unknown fixpoint engine {other:?}")),
                };
            }
            "--fixpoint-threads" => {
                opts.fixpoint_threads = value()?
                    .parse()
                    .map_err(|e| format!("--fixpoint-threads: {e}"))?;
                if opts.fixpoint_threads == 0 {
                    return Err("--fixpoint-threads must be at least 1".into());
                }
            }
            "--chi-backend" => {
                let name = value()?;
                opts.chi_backend = ChiBackend::from_name(&name)
                    .ok_or_else(|| format!("unknown chi backend {name:?}"))?;
            }
            "--slab-backend" => {
                let name = value()?;
                opts.slab_backend = SlabBackend::from_name(&name)
                    .ok_or_else(|| format!("unknown slab backend {name:?}"))?;
            }
            "--kernel-backend" => {
                let name = value()?;
                opts.kernel_backend = KernelBackend::from_name(&name)
                    .ok_or_else(|| format!("unknown kernel backend {name:?}"))?;
            }
            "--seed-threads" => {
                opts.seed_threads = value()?
                    .parse()
                    .map_err(|e| format!("--seed-threads: {e}"))?;
                if opts.seed_threads == 0 {
                    return Err("--seed-threads must be at least 1".into());
                }
            }
            "--no-early-exit" => opts.early_exit = false,
            "--pruned" => opts.pruned = true,
            "--exclude-labels" => {
                opts.exclude_labels = value()?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;
    if opts.resume {
        if opts.command != "maintain" {
            return Err("--resume only applies to the maintain command".into());
        }
        // The database, the query and the solution all come from the
        // durability directory — no --data/--query cold load.
        return cmd_maintain_resume(&opts);
    }
    if opts.snapshot_every.is_some() && opts.wal.is_none() {
        return Err("--snapshot-every requires --wal DIR".into());
    }
    let data_path = opts.data.as_deref().ok_or("--data is required")?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("reading {data_path}: {e}"))?;
    let db = parse_ntriples(&text).map_err(|e| e.to_string())?;

    match opts.command.as_str() {
        "stats" => cmd_stats(&db),
        "solve" => cmd_solve(&db, &load_query(&opts)?, &config(&opts)),
        "prune" => cmd_prune(
            &db,
            &load_query(&opts)?,
            &config(&opts),
            opts.output.as_deref(),
        ),
        "eval" => cmd_eval(&db, &load_query(&opts)?, &opts),
        "maintain" => cmd_maintain(&db, &load_query(&opts)?, &opts),
        "serve" => cmd_serve(&db, &opts),
        "fingerprint" => cmd_fingerprint(&db, &opts),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// One update batch: the sign (`true` = insert) and its triples.
type UpdateBatch = (bool, Vec<dualsim::graph::Triple>);

/// Parses one signed update line (`+`/`-` sign, three IRI terms, `.`).
fn parse_update_line(
    line: &str,
    line_no: usize,
    db: &GraphDb,
) -> Result<(bool, dualsim::graph::Triple), String> {
    use dualsim::graph::Triple;
    let (insert, mut rest) = if let Some(r) = line.strip_prefix('+') {
        (true, r)
    } else if let Some(r) = line.strip_prefix('-') {
        (false, r)
    } else {
        return Err(format!(
            "updates line {line_no}: expected a '+' or '-' sign before the triple"
        ));
    };
    let mut term = |what: &str| -> Result<String, String> {
        let t = rest
            .trim_start()
            .strip_prefix('<')
            .ok_or_else(|| format!("updates line {line_no}: expected '<' opening the {what}"))?;
        let end = t
            .find('>')
            .ok_or_else(|| format!("updates line {line_no}: unterminated {what}"))?;
        rest = &t[end + 1..];
        Ok(t[..end].to_owned())
    };
    let (s, p, o) = (term("subject")?, term("predicate")?, term("object")?);
    if rest.trim() != "." {
        return Err(format!("updates line {line_no}: expected terminating '.'"));
    }
    let node = |name: &str| {
        db.node_id(name).ok_or_else(|| {
            format!(
                "updates line {line_no}: node <{name}> is outside the database's \
                 vocabulary (fixed at load time)"
            )
        })
    };
    let label = db.label_id(&p).ok_or_else(|| {
        format!(
            "updates line {line_no}: predicate <{p}> is outside the database's \
             vocabulary (fixed at load time)"
        )
    })?;
    Ok((insert, Triple::new(node(&s)?, label, node(&o)?)))
}

/// Parses a signed update stream: N-Triples lines (IRI terms only)
/// prefixed `+` or `-`; consecutive lines with the same sign form one
/// batch. Every term must resolve in `db`'s fixed vocabulary.
///
/// With `skip_bad_lines` each unparsable line is collected (with its
/// 1-based line number) instead of failing the whole stream; otherwise
/// the first bad line aborts parsing. The returned `Vec<String>` holds
/// the reports for the skipped lines, in stream order.
fn parse_update_batches(
    text: &str,
    db: &GraphDb,
    skip_bad_lines: bool,
) -> Result<(Vec<UpdateBatch>, Vec<String>), String> {
    let mut batches: Vec<UpdateBatch> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (insert, t) = match parse_update_line(line, idx + 1, db) {
            Ok(parsed) => parsed,
            Err(msg) if skip_bad_lines => {
                skipped.push(msg);
                continue;
            }
            Err(msg) => return Err(msg),
        };
        match batches.last_mut() {
            Some((sign, batch)) if *sign == insert => batch.push(t),
            _ => batches.push((insert, vec![t])),
        }
    }
    Ok((batches, skipped))
}

/// The resident-solution loop: one initial solve, then every update
/// batch maintained in place. Under `--fixpoint delta` insertions ride
/// the counter-driven re-activation frontier and deletions the support
/// countdown, so no batch triggers a cold re-solve; under the default
/// re-evaluation engine insertions fall back to a cold solve — the
/// per-batch `warm`/`cold` tag makes the difference visible.
fn cmd_maintain(db: &GraphDb, query: &Query, opts: &Opts) -> Result<(), String> {
    let path = opts.updates.as_deref().ok_or("--updates is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (batches, bad_lines) = parse_update_batches(&text, db, opts.on_error == OnError::Skip)?;
    for msg in &bad_lines {
        eprintln!("warning: {msg} — line skipped");
    }
    let cfg = config(opts);
    let started = std::time::Instant::now();
    let sois = build_sois(db, query);
    let mut engines: Vec<IncrementalDualSim> = Vec::with_capacity(sois.len());
    match opts.wal.as_deref() {
        None => {
            for soi in sois {
                engines.push(IncrementalDualSim::new(db, soi, cfg.clone()));
            }
        }
        Some(wal) => {
            // The snapshot carries the query text as opaque metadata so
            // `--resume` can rebuild the printable query without a
            // --query flag.
            let meta = query_source_text(opts)?;
            for (i, soi) in sois.into_iter().enumerate() {
                let mut d = DurabilityOptions::new(branch_dir(wal, i));
                d.snapshot_every = opts.snapshot_every;
                d.keep_snapshots = opts.keep_snapshots;
                d.meta = meta.clone();
                let sim = IncrementalDualSim::new_durable(db, soi, cfg.clone(), &d)
                    .map_err(|e| format!("durability for union branch {i}: {e}"))?;
                engines.push(sim);
            }
        }
    }
    println!(
        "initial solve in {:?} ({} union branch(es){})",
        started.elapsed(),
        engines.len(),
        if opts.wal.is_some() { ", durable" } else { "" }
    );
    maintain_stream(db, query, engines, &batches, opts)
}

/// Per-union-branch durability directory under the `--wal` root.
fn branch_dir(wal: &str, branch: usize) -> std::path::PathBuf {
    std::path::Path::new(wal).join(format!("branch-{branch}"))
}

/// The `maintain --resume` path: every `branch-<i>/` directory under
/// `--wal` is recovered (newest verified snapshot + WAL tail), the
/// database and the query are rebuilt from the snapshot, and an optional
/// `--updates` stream is applied on top of the recovered state.
fn cmd_maintain_resume(opts: &Opts) -> Result<(), String> {
    let wal = opts.wal.as_deref().ok_or("--resume requires --wal DIR")?;
    if opts.data.is_some() || opts.query.is_some() || opts.query_text.is_some() {
        return Err(
            "--resume restores the database and the query from the snapshot; \
             drop --data/--query/--query-text"
                .into(),
        );
    }
    let mut engines: Vec<IncrementalDualSim> = Vec::new();
    let mut db: Option<GraphDb> = None;
    let mut meta: Option<String> = None;
    for i in 0usize.. {
        let dir = branch_dir(wal, i);
        if !dir.is_dir() {
            break;
        }
        let mut d = DurabilityOptions::new(&dir);
        d.snapshot_every = opts.snapshot_every;
        d.keep_snapshots = opts.keep_snapshots;
        let rec = IncrementalDualSim::recover(&d)
            .map_err(|e| format!("recovering union branch {i} from {}: {e}", dir.display()))?;
        print!(
            "branch {i}: recovered at epoch {} (snapshot epoch {}, {} WAL record(s) replayed",
            rec.report.epoch, rec.report.snapshot_epoch, rec.report.records_replayed,
        );
        if rec.report.torn_bytes > 0 {
            print!(", {} torn byte(s) truncated", rec.report.torn_bytes);
        }
        if rec.report.snapshots_skipped > 0 {
            print!(", {} corrupt snapshot(s) skipped", rec.report.snapshots_skipped);
        }
        println!(")");
        db = Some(rec.db);
        meta = Some(rec.meta);
        engines.push(rec.sim);
    }
    let (Some(db), Some(meta)) = (db, meta) else {
        return Err(format!(
            "nothing to resume: no {} directory under {wal}",
            branch_dir(wal, 0).display()
        ));
    };
    // A kill between the per-branch commits of one batch leaves the
    // branches at different epochs; their recovered databases disagree,
    // so resuming the shared update stream would be unsound.
    let epochs: Vec<u64> = engines.iter().map(IncrementalDualSim::epoch).collect();
    if epochs.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "union branches recovered at different epochs {epochs:?}; \
             the crash hit between branch commits — restart cold from --data"
        ));
    }
    let query = parse(&meta).map_err(|e| format!("query stored in snapshot: {e}"))?;
    let batches = match opts.updates.as_deref() {
        None => Vec::new(),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let (batches, bad_lines) =
                parse_update_batches(&text, &db, opts.on_error == OnError::Skip)?;
            for msg in &bad_lines {
                eprintln!("warning: {msg} — line skipped");
            }
            batches
        }
    };
    maintain_stream(&db, &query, engines, &batches, opts)
}

/// The shared maintenance loop: applies every update batch to every
/// union branch (staged against a copy of the resident triple set, with
/// inverse-batch undo on error) and prints the per-branch solution and
/// work counters. `db` is the resident database the engines currently
/// reflect — the freshly loaded one for a cold start, the recovered one
/// under `--resume`.
fn maintain_stream(
    db: &GraphDb,
    query: &Query,
    mut engines: Vec<IncrementalDualSim>,
    batches: &[UpdateBatch],
    opts: &Opts,
) -> Result<(), String> {
    use dualsim::graph::Triple;
    let mut present: std::collections::BTreeSet<Triple> = db.triples().collect();
    for (i, (insert, batch)) in batches.iter().enumerate() {
        // Stage the batch against a copy: a rejected batch must leave
        // the resident triple set exactly as it was.
        let mut next = present.clone();
        let mut problem: Option<String> = None;
        for t in batch {
            let applies = if *insert {
                next.insert(*t)
            } else {
                next.remove(t)
            };
            if !applies {
                problem = Some(format!(
                    "update batch {}: triple (<{}> <{}> <{}>) is {} the database",
                    i + 1,
                    db.node_name(t.s),
                    db.label_name(t.p),
                    db.node_name(t.o),
                    if *insert { "already in" } else { "not in" }
                ));
                break;
            }
        }
        let started = std::time::Instant::now();
        let mut changed = 0usize;
        let mut warm = true;
        // Union branches that committed the batch before a later branch
        // failed — they must be walked back so every branch reflects
        // the same database again.
        let mut committed = 0usize;
        if problem.is_none() {
            let triples: Vec<Triple> = next.iter().copied().collect();
            match db.with_triples(&triples) {
                Err(e) => problem = Some(format!("update batch {}: {e}", i + 1)),
                Ok(db_after) => {
                    for engine in &mut engines {
                        let applied = if *insert {
                            engine.apply_insertions(&db_after, batch)
                        } else {
                            engine.apply_deletions(&db_after, batch)
                        };
                        match applied {
                            Ok(n) => {
                                changed += n;
                                warm &= engine.last_update_was_warm();
                                committed += 1;
                            }
                            Err(e) => {
                                problem = Some(format!("update batch {}: {e}", i + 1));
                                break;
                            }
                        }
                    }
                }
            }
        }
        let msg = match problem {
            None => {
                present = next;
                println!(
                    "batch {}: {}{} triple(s), {} candidate(s) {}, {} in {:?}",
                    i + 1,
                    if *insert { "+" } else { "-" },
                    batch.len(),
                    changed,
                    if *insert { "gained" } else { "dropped" },
                    if warm { "warm maintenance" } else { "cold re-solve" },
                    started.elapsed()
                );
                continue;
            }
            Some(msg) if opts.on_error == OnError::Abort => return Err(msg),
            Some(msg) => msg,
        };
        // The failing branch rolled its own epoch back; undo the
        // branches that had already committed by applying the inverse
        // batch (the largest dual simulation is unique per database, so
        // this restores the pre-batch solution exactly).
        if committed > 0 {
            let prev: Vec<Triple> = present.iter().copied().collect();
            let db_before = db
                .with_triples(&prev)
                .map_err(|e| format!("undoing batch {}: {e}", i + 1))?;
            for engine in engines.iter_mut().take(committed) {
                let undone = if *insert {
                    engine.apply_deletions(&db_before, batch)
                } else {
                    engine.apply_insertions(&db_before, batch)
                };
                undone.map_err(|e| format!("undoing batch {}: {e}", i + 1))?;
            }
        }
        if opts.on_error == OnError::Skip {
            eprintln!("warning: {msg} — batch rolled back, continuing");
        } else {
            eprintln!("warning: {msg} — batch rolled back, dropping the rest of the stream");
            break;
        }
    }
    for (i, engine) in engines.iter().enumerate() {
        if engines.len() > 1 {
            println!("— union branch {i} —");
        }
        let (soi, solution) = (engine.soi(), engine.solution());
        for var in query.vars() {
            let chi = solution.var_solution(soi, var);
            let count = chi.count_ones();
            let preview: Vec<&str> = chi
                .iter_ones()
                .take(5)
                .map(|n| db.node_name(n as u32))
                .collect();
            let ellipsis = if count > 5 { ", …" } else { "" };
            println!(
                "?{var}: {count} candidates [{}{ellipsis}]",
                preview.join(", ")
            );
        }
        let s = engine.maintenance_stats();
        println!(
            "maintenance work: counter_increments={} reactivations={} counter_decrements={} \
             delta_removals={} ops={}",
            s.counter_increments,
            s.reactivations,
            s.counter_decrements,
            s.delta_removals,
            s.work_ops()
        );
        println!(
            "robustness: rollbacks={} poisonings={} budget_aborts={} journal_entries={}",
            s.rollbacks, s.poisonings, s.budget_aborts, s.journal_entries
        );
    }
    Ok(())
}

/// The resident multi-query session loop: every `.rq` file under
/// `--queries DIR` is registered as a standing query, then each shared
/// update batch is validated once and fanned out to all of them. The
/// per-query outcome of every batch is reported, and a final summary
/// prints each query's health, per-variable candidates and maintenance
/// work.
fn cmd_serve(db: &GraphDb, opts: &Opts) -> Result<(), String> {
    let dir = opts
        .queries_dir
        .as_deref()
        .ok_or("serve requires --queries DIR")?;
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rq"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .rq query files under {dir}"));
    }

    let sopts = SessionOptions {
        // `rollback` maps to the quarantine-at-first-failure rung of
        // the session ladder: the query keeps serving its rolled-back
        // (stale) match set, but is never retried automatically.
        auto_heal: opts.on_error != OnError::Rollback,
        durability: opts.wal.as_deref().map(|wal| SessionDurability {
            root: wal.into(),
            snapshot_every: opts.snapshot_every,
            fsync: true,
            keep_snapshots: opts.keep_snapshots,
        }),
        ..SessionOptions::default()
    };
    let cfg = config(opts);
    let started = std::time::Instant::now();
    let mut session = QuerySession::new(db.clone(), sopts);
    for path in &files {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let branches = session
            .register(&name, &text, cfg.clone())
            .map_err(|e| e.to_string())?;
        println!(
            "registered `{name}` ({branches} union branch(es), {} candidate(s))",
            session.candidates(&name).map_err(|e| e.to_string())?
        );
    }
    println!(
        "session of {} quer(ies) solved in {:?}{}",
        session.len(),
        started.elapsed(),
        if opts.wal.is_some() { ", durable" } else { "" }
    );

    let path = opts.updates.as_deref().ok_or("--updates is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (batches, bad_lines) = parse_update_batches(&text, db, opts.on_error == OnError::Skip)?;
    for msg in &bad_lines {
        eprintln!("warning: {msg} — line skipped");
    }
    'stream: for (i, (insert, batch)) in batches.iter().enumerate() {
        let started = std::time::Instant::now();
        let report = session
            .apply_batch(*insert, batch)
            .map_err(|e| format!("update batch {}: {e}", i + 1))?;
        println!(
            "batch {}: {}{} triple(s) applied ({} duplicate(s), {} no-op(s) dropped) in {:?}",
            i + 1,
            if *insert { "+" } else { "-" },
            report.applied,
            report.deduped,
            report.noops,
            started.elapsed()
        );
        for (name, outcome) in &report.outcomes {
            match outcome {
                QueryOutcome::Committed {
                    gained,
                    dropped,
                    warm,
                } => println!(
                    "  `{name}`: committed, +{gained}/-{dropped} candidate(s), {}",
                    if *warm { "warm maintenance" } else { "cold re-solve" }
                ),
                QueryOutcome::Healed {
                    via,
                    gained,
                    dropped,
                } => println!(
                    "  `{name}`: healed by {}, +{gained}/-{dropped} candidate(s) vs stale set",
                    match via {
                        dualsim::core::HealPath::Replay => "backlog replay",
                        dualsim::core::HealPath::Rebuild => "cold rebuild",
                    }
                ),
                QueryOutcome::Failed { error, health } => {
                    eprintln!("warning: `{name}` failed batch {}: {error} — now {health}", i + 1);
                    if opts.on_error == OnError::Abort {
                        eprintln!("warning: dropping the rest of the stream (--on-error abort)");
                        break 'stream;
                    }
                }
                QueryOutcome::Stale { health } => {
                    println!("  `{name}`: serving stale — {health}");
                }
            }
        }
    }

    for name in session.query_names().into_iter().map(String::from).collect::<Vec<_>>() {
        let health = session.health(&name).map_err(|e| e.to_string())?.clone();
        println!("— query `{name}`: {health} —");
        let query = parse(session.query_text(&name).map_err(|e| e.to_string())?)
            .map_err(|e| format!("`{name}`: {e}"))?;
        let sois = session.sois(&name).map_err(|e| e.to_string())?;
        let solutions = session.solutions(&name).map_err(|e| e.to_string())?;
        for (b, (soi, solution)) in sois.iter().zip(&solutions).enumerate() {
            if solutions.len() > 1 {
                println!("  — union branch {b} —");
            }
            for var in query.vars() {
                let chi = solution.var_solution(soi, var);
                let count = chi.count_ones();
                let preview: Vec<&str> = chi
                    .iter_ones()
                    .take(5)
                    .map(|n| db.node_name(n as u32))
                    .collect();
                let ellipsis = if count > 5 { ", …" } else { "" };
                println!("  ?{var}: {count} candidates [{}{ellipsis}]", preview.join(", "));
            }
        }
    }
    let s = session.stats();
    println!(
        "session: {} batch(es), {} triple(s) validated once, {} duplicate(s) + {} no-op(s) \
         dropped, {} fan-out application(s)",
        s.batches, s.triples_validated, s.duplicates_dropped, s.noops_dropped,
        s.fanout_applications
    );
    println!(
        "healing: {} failure(s), {} replay heal(s), {} rebuild heal(s), {} failed retr(ies), \
         {} quarantine(s)",
        s.failures, s.replay_heals, s.rebuild_heals, s.failed_retries, s.quarantines
    );
    Ok(())
}

fn cmd_fingerprint(db: &GraphDb, opts: &Opts) -> Result<(), String> {
    use dualsim::core::QuotientIndex;
    let labels: Vec<u32> = (0..db.num_labels() as u32)
        .filter(|&l| !opts.exclude_labels.iter().any(|x| x == db.label_name(l)))
        .collect();
    let started = std::time::Instant::now();
    let index = QuotientIndex::build_for_labels(db, &labels);
    println!(
        "fingerprint over {} of {} predicates:",
        labels.len(),
        db.num_labels()
    );
    println!(
        "  {} blocks for {} nodes ({:.2}x compression)",
        index.num_blocks(),
        db.num_nodes(),
        index.node_compression()
    );
    println!(
        "  quotient: {} triples (original {})",
        index.quotient().num_triples(),
        db.num_triples()
    );
    println!(
        "  {} refinement rounds in {:?}",
        index.rounds,
        started.elapsed()
    );
    Ok(())
}

fn config(opts: &Opts) -> SolverConfig {
    SolverConfig {
        strategy: opts.strategy,
        fixpoint: opts.fixpoint,
        drain: if opts.fixpoint_threads > 1 {
            DrainStrategy::Sharded {
                threads: opts.fixpoint_threads,
            }
        } else {
            DrainStrategy::Sequential
        },
        chi_backend: opts.chi_backend,
        slab_backend: opts.slab_backend,
        kernel_backend: opts.kernel_backend,
        seed_threads: opts.seed_threads,
        early_exit: opts.early_exit,
        drain_budget: opts.drain_budget,
        journal: opts.journal,
        ..SolverConfig::default()
    }
}

/// The query's concrete text, from `--query FILE` or `--query-text`.
fn query_source_text(opts: &Opts) -> Result<String, String> {
    match (&opts.query, &opts.query_text) {
        (Some(path), None) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
        }
        (None, Some(text)) => Ok(text.clone()),
        _ => Err("exactly one of --query / --query-text is required".into()),
    }
}

fn load_query(opts: &Opts) -> Result<Query, String> {
    parse(&query_source_text(opts)?).map_err(|e| e.to_string())
}

fn cmd_stats(db: &GraphDb) -> Result<(), String> {
    println!("nodes     : {}", db.num_nodes());
    println!("triples   : {}", db.num_triples());
    println!("predicates: {}", db.num_labels());
    println!(
        "matrices  : {:.1} KiB (forward + backward adjacency)",
        db.memory_footprint() as f64 / 1024.0
    );
    let mut labels: Vec<(usize, String)> = (0..db.num_labels() as u32)
        .map(|l| (db.num_label_triples(l), db.label_name(l).to_owned()))
        .collect();
    labels.sort_by_key(|&(count, _)| std::cmp::Reverse(count));
    println!("top predicates:");
    for (count, name) in labels.into_iter().take(10) {
        println!("  {count:>9}  {name}");
    }
    Ok(())
}

fn cmd_solve(db: &GraphDb, query: &Query, cfg: &SolverConfig) -> Result<(), String> {
    let started = std::time::Instant::now();
    let branches = solve_query(db, query, cfg);
    let elapsed = started.elapsed();
    for (i, (soi, solution)) in branches.iter().enumerate() {
        if branches.len() > 1 {
            println!("— union branch {i} —");
        }
        for var in query.vars() {
            let chi = solution.var_solution(soi, var);
            let count = chi.count_ones();
            let preview: Vec<&str> = chi
                .iter_ones()
                .take(5)
                .map(|n| db.node_name(n as u32))
                .collect();
            let ellipsis = if count > 5 { ", …" } else { "" };
            println!(
                "?{var}: {count} candidates [{}{ellipsis}]",
                preview.join(", ")
            );
        }
        let s = &solution.stats;
        println!(
            "iterations={} updates={} rowwise={} colwise={} empty={}",
            s.iterations, s.updates, s.rowwise, s.colwise, s.emptied_mandatory
        );
        println!(
            "work: rows_ored={} bits_probed={} counter_inits={} counter_decrements={} \
             delta_removals={} ops={}",
            s.rows_ored,
            s.bits_probed,
            s.counter_inits,
            s.counter_decrements,
            s.delta_removals,
            s.work_ops()
        );
        // The backend-dependent gauges, on their own line: the work
        // counters above are bit-identical across χ/slab backends, but
        // peak storage and the drain's row-pointer loads legitimately
        // differ per backend.
        println!(
            "storage: chi_peak_words={} slab_peak_words={} row_lookups={}",
            s.chi_peak_words, s.slab_peak_words, s.row_lookups
        );
    }
    println!("solved in {elapsed:?}");
    Ok(())
}

fn cmd_prune(
    db: &GraphDb,
    query: &Query,
    cfg: &SolverConfig,
    output: Option<&str>,
) -> Result<(), String> {
    let report = prune(db, query, cfg);
    println!(
        "kept {} of {} triples ({:.2}% pruned) in {:?} ({} iterations)",
        report.num_kept(),
        db.num_triples(),
        100.0 * report.prune_ratio(db),
        report.total_time(),
        report.iterations()
    );
    if let Some(path) = output {
        let pruned = report.pruned_db(db);
        std::fs::write(path, write_ntriples(&pruned))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("pruned database written to {path}");
    }
    Ok(())
}

fn cmd_eval(db: &GraphDb, query: &Query, opts: &Opts) -> Result<(), String> {
    let engine: Box<dyn Engine> = match opts.engine.as_str() {
        "nested" => Box::new(NestedLoopEngine),
        "hash" => Box::new(HashJoinEngine),
        other => return Err(format!("unknown engine {other:?}")),
    };
    let cfg = config(opts);
    let target;
    let db = if opts.pruned {
        let report = prune(db, query, &cfg);
        println!(
            "pruning kept {} of {} triples in {:?}",
            report.num_kept(),
            db.num_triples(),
            report.total_time()
        );
        target = report.pruned_db(db);
        &target
    } else {
        db
    };
    let started = std::time::Instant::now();
    let results = engine.evaluate(db, query);
    println!(
        "{} matches in {:?} ({} engine)",
        results.len(),
        started.elapsed(),
        engine.name()
    );
    for row in results.to_named_rows(db).into_iter().take(opts.limit) {
        let rendered: Vec<String> = row.iter().map(|(v, n)| format!("?{v}={n}")).collect();
        println!("  {}", rendered.join("  "));
    }
    if results.len() > opts.limit {
        println!("  … ({} more rows)", results.len() - opts.limit);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_reads_flags() {
        let args: Vec<String> = [
            "prune",
            "--data",
            "db.nt",
            "--query-text",
            "{ ?a p ?b }",
            "--strategy",
            "rowwise",
            "--fixpoint",
            "delta",
            "--fixpoint-threads",
            "4",
            "--chi-backend",
            "rle",
            "--slab-backend",
            "sparse",
            "--seed-threads",
            "3",
            "--no-early-exit",
            "--limit",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.command, "prune");
        assert_eq!(opts.data.as_deref(), Some("db.nt"));
        assert_eq!(opts.strategy, EvalStrategy::RowWise);
        assert_eq!(opts.fixpoint, FixpointMode::DeltaCounting);
        assert_eq!(opts.fixpoint_threads, 4);
        assert_eq!(opts.chi_backend, ChiBackend::Rle);
        assert_eq!(opts.slab_backend, SlabBackend::Sparse);
        assert_eq!(opts.seed_threads, 3);
        assert!(!opts.early_exit);
        assert_eq!(opts.limit, 7);
    }

    #[test]
    fn parse_args_accepts_every_slab_backend_and_rejects_bad_values() {
        for (name, expected) in [
            ("dense", SlabBackend::Dense),
            ("sparse", SlabBackend::Sparse),
            ("auto", SlabBackend::Auto),
        ] {
            let args: Vec<String> = ["solve", "--slab-backend", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert_eq!(parse_args(&args).unwrap().slab_backend, expected);
        }
        for bad in [&["solve", "--slab-backend", "rle"][..], &["solve", "--seed-threads", "0"][..]] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_args(&args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_args_accepts_every_chi_backend_and_rejects_unknown_ones() {
        for (name, expected) in [
            ("dense", ChiBackend::Dense),
            ("rle", ChiBackend::Rle),
            ("auto", ChiBackend::Auto),
        ] {
            let args: Vec<String> = ["solve", "--chi-backend", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert_eq!(parse_args(&args).unwrap().chi_backend, expected);
        }
        let args: Vec<String> = ["solve", "--chi-backend", "sparse"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_accepts_every_kernel_backend_and_rejects_unknown_ones() {
        for (name, expected) in [
            ("scalar", KernelBackend::Scalar),
            ("unrolled", KernelBackend::Unrolled),
            ("simd", KernelBackend::Simd),
            ("auto", KernelBackend::Auto),
        ] {
            let args: Vec<String> = ["solve", "--kernel-backend", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert_eq!(parse_args(&args).unwrap().kernel_backend, expected);
        }
        let args: Vec<String> = ["solve", "--kernel-backend", "avx512"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_reads_serve_flags() {
        let args: Vec<String> = [
            "serve",
            "--data",
            "db.nt",
            "--queries",
            "queries/",
            "--updates",
            "u.txt",
            "--wal",
            "wal/",
            "--keep-snapshots",
            "5",
            "--on-error",
            "rollback",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.command, "serve");
        assert_eq!(opts.queries_dir.as_deref(), Some("queries/"));
        assert_eq!(opts.updates.as_deref(), Some("u.txt"));
        assert_eq!(opts.wal.as_deref(), Some("wal/"));
        assert_eq!(opts.keep_snapshots, 5);
        assert_eq!(opts.on_error, OnError::Rollback);
    }

    #[test]
    fn parse_args_defaults_snapshot_retention_to_two() {
        let args: Vec<String> = ["maintain"].iter().map(|s| s.to_string()).collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.keep_snapshots, 2);
        assert!(opts.queries_dir.is_none());
    }

    #[test]
    fn parse_args_rejects_bad_snapshot_retention() {
        let args: Vec<String> = ["serve", "--keep-snapshots", "many"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_rejects_zero_fixpoint_threads() {
        let args: Vec<String> = ["solve", "--fixpoint-threads", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_rejects_unknown_fixpoint_engine() {
        let args: Vec<String> = ["solve", "--fixpoint", "magic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_rejects_unknown_flags() {
        let args: Vec<String> = ["solve", "--nope"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn update_streams_parse_into_signed_batches() {
        use dualsim::graph::parse_ntriples;
        let db = parse_ntriples("<a> <p> <b> .\n<b> <p> <c> .\n").unwrap();
        let (batches, skipped) = parse_update_batches(
            "# churn\n- <a> <p> <b> .\n- <b> <p> <c> .\n+ <a> <p> <b> .\n",
            &db,
            false,
        )
        .unwrap();
        assert!(skipped.is_empty());
        let shape: Vec<(bool, usize)> = batches.iter().map(|(s, b)| (*s, b.len())).collect();
        assert_eq!(shape, vec![(false, 2), (true, 1)]);

        let unsigned = parse_update_batches("<a> <p> <b> .\n", &db, false).unwrap_err();
        assert!(unsigned.contains("'+' or '-'"), "{unsigned}");
        let foreign = parse_update_batches("+ <zz> <p> <b> .\n", &db, false).unwrap_err();
        assert!(foreign.contains("outside the database's"), "{foreign}");
        let unterminated = parse_update_batches("+ <a> <p> <b>\n", &db, false).unwrap_err();
        assert!(unterminated.contains("terminating '.'"), "{unterminated}");
    }

    #[test]
    fn skipping_bad_update_lines_keeps_the_rest_and_reports_line_numbers() {
        use dualsim::graph::parse_ntriples;
        let db = parse_ntriples("<a> <p> <b> .\n<b> <p> <c> .\n").unwrap();
        // Line 2 is unsigned, line 4 mentions a foreign node; both are
        // skipped, the surviving lines still group into signed batches.
        let (batches, skipped) = parse_update_batches(
            "- <a> <p> <b> .\n<b> <p> <c> .\n- <b> <p> <c> .\n+ <zz> <p> <b> .\n+ <a> <p> <b> .\n",
            &db,
            true,
        )
        .unwrap();
        let shape: Vec<(bool, usize)> = batches.iter().map(|(s, b)| (*s, b.len())).collect();
        assert_eq!(shape, vec![(false, 2), (true, 1)]);
        assert_eq!(skipped.len(), 2);
        assert!(skipped[0].contains("line 2"), "{}", skipped[0]);
        assert!(skipped[1].contains("line 4"), "{}", skipped[1]);
    }

    #[test]
    fn parse_args_reads_the_robustness_flags() {
        let args: Vec<String> = [
            "maintain",
            "--on-error",
            "rollback",
            "--drain-budget",
            "5000",
            "--no-journal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.on_error, OnError::Rollback);
        assert_eq!(opts.drain_budget, Some(5000));
        assert!(!opts.journal);

        for (name, expected) in [("skip", OnError::Skip), ("abort", OnError::Abort)] {
            let args: Vec<String> = ["maintain", "--on-error", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert_eq!(parse_args(&args).unwrap().on_error, expected);
        }
        let bad: Vec<String> = ["maintain", "--on-error", "retry"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn parse_args_reads_the_durability_flags() {
        let args: Vec<String> = [
            "maintain",
            "--wal",
            "state.d",
            "--snapshot-every",
            "16",
            "--resume",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.wal.as_deref(), Some("state.d"));
        assert_eq!(opts.snapshot_every, Some(16));
        assert!(opts.resume);

        let defaults = parse_args(&["maintain".to_string()]).unwrap();
        assert_eq!(defaults.wal, None);
        assert_eq!(defaults.snapshot_every, None);
        assert!(!defaults.resume);

        for bad in [
            &["maintain", "--snapshot-every", "0"][..],
            &["maintain", "--snapshot-every", "soon"][..],
            &["maintain", "--wal"][..],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_args(&args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn resume_is_rejected_outside_maintain_and_needs_a_wal_dir() {
        let solve: Vec<String> = ["solve", "--resume", "--wal", "d"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&solve).unwrap_err().contains("maintain"));
        let no_wal: Vec<String> = ["maintain", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&no_wal).unwrap_err().contains("--wal"));
        let with_data: Vec<String> = ["maintain", "--resume", "--wal", "d", "--data", "x.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&with_data).unwrap_err().contains("snapshot"));
        let snap_only: Vec<String> = ["maintain", "--snapshot-every", "4", "--data", "x.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&snap_only).unwrap_err().contains("--wal"));
    }

    #[test]
    fn parse_args_reads_the_updates_flag() {
        let args: Vec<String> = ["maintain", "--data", "db.nt", "--updates", "u.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&args).unwrap();
        assert_eq!(opts.command, "maintain");
        assert_eq!(opts.updates.as_deref(), Some("u.txt"));
    }

    #[test]
    fn query_source_must_be_unambiguous() {
        let both: Vec<String> = ["solve", "--data", "x", "--query", "a", "--query-text", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_args(&both).unwrap();
        assert!(load_query(&opts).is_err());
    }
}
