//! # dualsim — Fast Dual Simulation Processing of Graph Database Queries
//!
//! Facade crate re-exporting the whole workspace. See the repository
//! README for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

mod pruned;

pub use dualsim_bitmatrix as bitmatrix;
pub use dualsim_core as core;
pub use dualsim_datagen as datagen;
pub use dualsim_engine as engine;
pub use dualsim_graph as graph;
pub use dualsim_query as query;
pub use pruned::PrunedEngine;

/// One-stop imports for the common pipeline: build or load a database,
/// parse a query, solve/prune, evaluate.
///
/// ```
/// use dualsim::prelude::*;
///
/// let mut b = GraphDbBuilder::new();
/// b.add_triple("a", "p", "b").unwrap();
/// let db = b.finish();
/// let q = parse("{ ?x p ?y }").unwrap();
/// let report = prune(&db, &q, &SolverConfig::default());
/// assert_eq!(report.num_kept(), 1);
/// assert_eq!(NestedLoopEngine.count(&report.pruned_db(&db), &q), 1);
/// ```
pub mod prelude {
    pub use crate::pruned::PrunedEngine;
    pub use dualsim_core::{
        build_sois, prune, prune_with_threads, solve, solve_query, PruneReport, Soi, Solution,
        SolverConfig,
    };
    pub use dualsim_engine::{Engine, HashJoinEngine, NestedLoopEngine, ResultSet};
    pub use dualsim_graph::{parse_ntriples, write_ntriples, GraphDb, GraphDbBuilder, Triple};
    pub use dualsim_query::{parse, Query, Term, TriplePattern};
}
