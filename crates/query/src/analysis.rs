//! Structural query analysis: shape classification and complexity
//! statistics.
//!
//! The paper's evaluation narrative constantly refers to query *shapes* —
//! "the cyclic shape of the queries and the low selectivity of the
//! predicates … explains the long runtime" (§5.2), star-shaped DBpedia
//! benchmark queries, chains, and so on. This module makes those notions
//! first-class so workloads and experiment reports can state them
//! mechanically.

use crate::{Query, Term};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The shape of a query's mandatory-core pattern graph (viewed as an
/// undirected multigraph over its terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// No triple patterns at all.
    Empty,
    /// Connected, every node on at most two edges, acyclic — includes the
    /// single-pattern case.
    Chain,
    /// Connected, one hub node incident to every edge (at least two).
    Star,
    /// Connected, every node on exactly two edges, as many edges as
    /// nodes — the L0 triangle is the canonical example.
    Cycle,
    /// Connected and acyclic but neither chain nor star.
    Tree,
    /// Everything else: disconnected, or cyclic beyond a pure cycle.
    Complex,
}

/// Structural statistics of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Triple patterns over the whole query (all operators).
    pub triple_patterns: usize,
    /// Distinct variables.
    pub variables: usize,
    /// Distinct constants (IRIs and literals).
    pub constants: usize,
    /// Maximum `OPTIONAL` nesting depth (0 = no optional parts).
    pub optional_depth: usize,
    /// Number of union-free branches the union normal form produces.
    pub union_branches: usize,
    /// Shape of the mandatory core.
    pub shape: Shape,
    /// Whether the query is well designed (Pérez et al.).
    pub well_designed: bool,
}

/// Computes [`QueryStats`] for a query.
pub fn analyze(query: &Query) -> QueryStats {
    let vars = query.vars();
    let mut constants: BTreeSet<&Term> = BTreeSet::new();
    collect_constants(query, &mut constants);
    QueryStats {
        triple_patterns: query.num_triple_patterns(),
        variables: vars.len(),
        constants: constants.len(),
        optional_depth: optional_depth(query),
        union_branches: union_branches(query),
        shape: shape_of_core(query),
        well_designed: query.is_well_designed(),
    }
}

fn collect_constants<'q>(q: &'q Query, out: &mut BTreeSet<&'q Term>) {
    match q {
        Query::Bgp(tps) => {
            for t in tps {
                if t.s.is_constant() {
                    out.insert(&t.s);
                }
                if t.o.is_constant() {
                    out.insert(&t.o);
                }
            }
        }
        Query::And(a, b) | Query::Optional(a, b) | Query::Union(a, b) => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
    }
}

fn optional_depth(q: &Query) -> usize {
    match q {
        Query::Bgp(_) => 0,
        Query::And(a, b) | Query::Union(a, b) => optional_depth(a).max(optional_depth(b)),
        Query::Optional(a, b) => optional_depth(a).max(optional_depth(b) + 1),
    }
}

fn union_branches(q: &Query) -> usize {
    match q {
        Query::Bgp(_) => 1,
        Query::And(a, b) | Query::Optional(a, b) => union_branches(a) * union_branches(b),
        Query::Union(a, b) => union_branches(a) + union_branches(b),
    }
}

/// Classifies the mandatory core's undirected multigraph shape.
pub fn shape_of_core(query: &Query) -> Shape {
    let core = query.mandatory_core();
    if core.is_empty() {
        return Shape::Empty;
    }
    // Index the terms.
    let mut ids: BTreeMap<&Term, usize> = BTreeMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for tp in &core {
        let n = ids.len();
        let s = *ids.entry(&tp.s).or_insert(n);
        let n = ids.len();
        let o = *ids.entry(&tp.o).or_insert(n);
        edges.push((s, o));
    }
    let n = ids.len();
    let m = edges.len();
    let mut degree = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(s, o) in &edges {
        degree[s] += 1;
        adj[s].push(o);
        if s != o {
            degree[o] += 1;
            adj[o].push(s);
        }
    }
    // Connectivity.
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    if reached < n {
        return Shape::Complex;
    }
    let acyclic = m == n - 1;
    let pure_cycle = m == n && degree.iter().all(|&d| d == 2);
    if pure_cycle {
        return Shape::Cycle;
    }
    if acyclic {
        if degree.iter().all(|&d| d <= 2) {
            return Shape::Chain;
        }
        if m >= 2 && degree.contains(&m) {
            return Shape::Star;
        }
        return Shape::Tree;
    }
    Shape::Complex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, tp};

    fn shape(text: &str) -> Shape {
        shape_of_core(&parse(text).unwrap())
    }

    #[test]
    fn shapes_are_classified() {
        assert_eq!(shape("{ }"), Shape::Empty);
        assert_eq!(shape("{ ?a p ?b }"), Shape::Chain);
        assert_eq!(shape("{ ?a p ?b . ?b q ?c }"), Shape::Chain);
        assert_eq!(shape("{ ?a p ?b . ?a q ?c . ?a r ?d }"), Shape::Star);
        assert_eq!(
            shape("{ ?a p ?b . ?b q ?c . ?c r ?a }"),
            Shape::Cycle,
            "the L0 triangle"
        );
        assert_eq!(
            shape("{ ?a p ?b . ?b q ?c . ?b q2 ?d . ?d r ?e }"),
            Shape::Tree
        );
        assert_eq!(
            shape("{ ?a p ?b . ?c q ?d }"),
            Shape::Complex,
            "disconnected"
        );
        assert_eq!(
            shape("{ ?a p ?b . ?b q ?c . ?c r ?a . ?a s ?d }"),
            Shape::Complex,
            "cycle plus appendix"
        );
    }

    #[test]
    fn two_edge_star_counts_as_chain() {
        // Degree-2 hub: path classification wins (standard convention).
        assert_eq!(shape("{ ?a p ?b . ?a q ?c }"), Shape::Chain);
    }

    #[test]
    fn constants_are_graph_nodes() {
        // ?a → const ← ?b is a chain through the constant.
        assert_eq!(shape("{ ?a p c0 . ?b q c0 }"), Shape::Chain);
    }

    #[test]
    fn self_loop_is_cyclic() {
        assert_eq!(shape("{ ?a p ?a }"), Shape::Complex);
    }

    #[test]
    fn stats_cover_all_dimensions() {
        let q = parse(
            "{ { ?a p ?b OPTIONAL { ?a q ?c OPTIONAL { ?c r lit } } } \
               UNION { ?a s ?d } }",
        )
        .unwrap();
        let stats = analyze(&q);
        assert_eq!(stats.triple_patterns, 4);
        assert_eq!(stats.variables, 4);
        assert_eq!(stats.constants, 1);
        assert_eq!(stats.optional_depth, 2);
        assert_eq!(stats.union_branches, 2);
        assert!(stats.well_designed);
    }

    #[test]
    fn optional_core_shape_ignores_optional_parts() {
        let q = crate::Query::bgp(vec![tp("?a", "p", "?b")]).optional(crate::Query::bgp(vec![
            tp("?a", "q", "?c"),
            tp("?c", "r", "?d"),
        ]));
        assert_eq!(shape_of_core(&q), Shape::Chain);
        assert_eq!(analyze(&q).optional_depth, 1);
    }
}
