//! Property tests for the query layer: parse/print round trips and
//! invariants of `vars`, `mand`, and the union normal form.

use crate::{parse, Query, Term, TriplePattern};
use proptest::prelude::*;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => (0u8..6).prop_map(|i| Term::Var(format!("v{i}"))),
        1 => (0u8..4).prop_map(|i| Term::Iri(format!("const{i}"))),
        1 => (0u8..3).prop_map(|i| Term::Literal(format!("lit \"{i}\"\\"))),
    ]
}

fn arb_tp() -> impl Strategy<Value = TriplePattern> {
    (arb_term(), 0u8..5, arb_term()).prop_map(|(s, p, o)| TriplePattern::new(s, format!("p{p}"), o))
}

fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = proptest::collection::vec(arb_tp(), 0..4).prop_map(Query::Bgp);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.optional(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.union(b)),
        ]
    })
}

proptest! {
    /// The Display output is valid concrete syntax and parses back to the
    /// identical AST.
    #[test]
    fn display_parse_round_trip(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\nin: {text}"));
        prop_assert_eq!(reparsed, q);
    }

    /// `mand(Q) ⊆ vars(Q)` always holds.
    #[test]
    fn mand_is_subset_of_vars(q in arb_query()) {
        let vars = q.vars();
        prop_assert!(q.mand().iter().all(|v| vars.contains(v)));
    }

    /// Union normal form yields only union-free branches, preserves the
    /// total triple-pattern multiset size per branch shape, and is the
    /// identity on union-free input.
    #[test]
    fn union_normal_form_is_union_free(q in arb_query()) {
        let branches = q.union_normal_form();
        prop_assert!(!branches.is_empty());
        for b in &branches {
            prop_assert!(b.is_union_free());
        }
        if q.is_union_free() {
            prop_assert_eq!(branches, vec![q]);
        }
    }

    /// Every variable of every branch occurs in the original query.
    #[test]
    fn union_normal_form_invents_no_variables(q in arb_query()) {
        let vars = q.vars();
        for b in q.union_normal_form() {
            for v in b.vars() {
                prop_assert!(vars.contains(v));
            }
        }
    }

    /// The parser never panics, whatever bytes it is fed — it either
    /// parses or returns a positioned error.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Token-shaped garbage exercises deeper parser paths, still without
    /// panicking.
    #[test]
    fn parser_survives_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(".".to_owned()),
                Just("OPTIONAL".to_owned()),
                Just("UNION".to_owned()),
                Just("SELECT".to_owned()),
                Just("WHERE".to_owned()),
                Just("*".to_owned()),
                Just("?v".to_owned()),
                Just("<iri>".to_owned()),
                Just("\"lit\"".to_owned()),
                Just("word".to_owned()),
            ],
            0..24,
        )
    ) {
        let _ = parse(&tokens.join(" "));
    }

    /// BGPs and AND-only queries are always well designed.
    #[test]
    fn and_only_queries_are_well_designed(
        tps in proptest::collection::vec(arb_tp(), 0..4),
        more in proptest::collection::vec(proptest::collection::vec(arb_tp(), 0..3), 0..3),
    ) {
        let mut q = Query::Bgp(tps);
        for m in more {
            q = q.and(Query::Bgp(m));
        }
        prop_assert!(q.is_well_designed());
    }

    /// The mandatory core of a union-free query contains exactly the
    /// triple patterns reachable without entering an OPTIONAL right
    /// operand, hence its variables are `⊇ mand(Q)`.
    #[test]
    fn mandatory_core_covers_mand(q in arb_query()) {
        if q.is_union_free() {
            let core = Query::Bgp(q.mandatory_core());
            let core_vars = core.vars();
            for v in q.mand() {
                prop_assert!(core_vars.contains(v));
            }
        }
    }
}
