//! The SPARQL fragment **S** of Sect. 4: union-free queries built from
//! basic graph patterns with `AND` and `OPTIONAL`, plus `UNION` which is
//! compiled away by the union-normal-form rewriting (Prop. 3).
//!
//! The crate provides
//!
//! * an [`ast`](crate::Query) close to the paper's grammar
//!   `Q ::= G | Q AND Q | Q OPTIONAL Q` (extended with `UNION`),
//! * the variable functions `vars` and `mand` (Sect. 4.3) and the
//!   well-designedness check of Pérez et al. (Sect. 4.5),
//! * a recursive-descent [`parse`] function for a SPARQL-like concrete
//!   syntax (`SELECT * WHERE { … }` with `OPTIONAL`/`UNION` and both
//!   `<iri>` and bare-word constants), and
//! * [`Query::union_normal_form`], splitting any query into union-free
//!   branches processed separately by the SOI machinery.
//!
//! ```
//! use dualsim_query::parse;
//!
//! let q = parse(
//!     "SELECT * WHERE { ?director directed ?movie . \
//!                       ?director worked_with ?coworker . }",
//! ).unwrap();
//! assert_eq!(q.var_names(), ["coworker", "director", "movie"]);
//! assert!(q.is_well_designed());
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod ast;
mod normalize;
mod parser;

pub use analysis::{analyze, QueryStats, Shape};
pub use ast::{tp, Query, Term, TriplePattern};
pub use parser::{parse, ParseError};

#[cfg(test)]
mod proptests;
