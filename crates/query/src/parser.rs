//! Recursive-descent parser for the concrete SPARQL-like syntax.
//!
//! Supported grammar (keywords case-insensitive):
//!
//! ```text
//! query   := [ 'SELECT' '*' 'WHERE' ] group
//! group   := '{' item* '}'
//! item    := triple '.'?
//!          | 'OPTIONAL' group
//!          | group ( 'UNION' group )*
//! triple  := term predicate term
//! term    := '?'name | '<'iri'>' | bareword | '"'literal'"'
//! ```
//!
//! Group items follow SPARQL's left-fold semantics: adjacent triples form
//! one BGP; a sub-group is joined with `AND`; `OPTIONAL` applies to
//! everything accumulated so far. Variable predicates are rejected —
//! dual simulation operates over a fixed edge alphabet (Sect. 2).

use crate::{Query, Term, TriplePattern};

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LBrace,
    RBrace,
    Dot,
    Star,
    Select,
    Where,
    Optional,
    Union,
    Var(String),
    Iri(String),
    Literal(String),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokenize(input: &'a str) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut lx = Lexer { input, pos: 0 };
        let mut out = Vec::new();
        while let Some(tok) = lx.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn next_token(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = bytes[self.pos];
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'?' => {
                self.pos += 1;
                let name = self.take_word();
                if name.is_empty() {
                    return Err(self.err(start, "expected variable name after '?'"));
                }
                Tok::Var(name)
            }
            b'<' => {
                self.pos += 1;
                let Some(end) = self.input[self.pos..].find('>') else {
                    return Err(self.err(start, "unterminated IRI"));
                };
                let iri = self.input[self.pos..self.pos + end].to_owned();
                self.pos += end + 1;
                Tok::Iri(iri)
            }
            b'"' => {
                self.pos += 1;
                let mut value = String::new();
                loop {
                    let Some(ch) = self.input[self.pos..].chars().next() else {
                        return Err(self.err(start, "unterminated literal"));
                    };
                    self.pos += ch.len_utf8();
                    match ch {
                        '"' => break,
                        '\\' => {
                            let Some(esc) = self.input[self.pos..].chars().next() else {
                                return Err(self.err(start, "dangling escape"));
                            };
                            self.pos += esc.len_utf8();
                            match esc {
                                'n' => value.push('\n'),
                                't' => value.push('\t'),
                                '"' => value.push('"'),
                                '\\' => value.push('\\'),
                                other => {
                                    return Err(self.err(start, format!("unknown escape \\{other}")))
                                }
                            }
                        }
                        other => value.push(other),
                    }
                }
                Tok::Literal(value)
            }
            _ if is_word_char(c) => {
                let word = self.take_word();
                match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::Select,
                    "WHERE" => Tok::Where,
                    "OPTIONAL" => Tok::Optional,
                    "UNION" => Tok::Union,
                    _ => Tok::Iri(word),
                }
            }
            other => {
                return Err(self.err(start, format!("unexpected character {:?}", other as char)))
            }
        };
        Ok(Some((start, tok)))
    }

    fn take_word(&mut self) -> String {
        let bytes = self.input.as_bytes();
        let start = self.pos;
        while self.pos < bytes.len() && is_word_char(bytes[self.pos]) {
            self.pos += 1;
        }
        self.input[start..self.pos].to_owned()
    }

    fn err(&self, position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b':' | b'/' | b'#' | b'-')
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some((_, t)) if t == want => Ok(()),
            Some((p, t)) => Err(ParseError {
                position: p,
                message: format!("expected {what}, found {t:?}"),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        if self.peek() == Some(&Tok::Select) {
            self.next();
            self.expect(Tok::Star, "'*' (only SELECT * is supported)")?;
            self.expect(Tok::Where, "'WHERE'")?;
        }
        let q = self.group()?;
        if let Some((p, t)) = self.next() {
            return Err(ParseError {
                position: p,
                message: format!("trailing input after query: {t:?}"),
            });
        }
        Ok(q)
    }

    /// `'{' item* '}'` with SPARQL's left-fold combination of items.
    fn group(&mut self) -> Result<Query, ParseError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut acc: Option<Query> = None;
        let mut pending: Vec<TriplePattern> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated group, expected '}'")),
                Some(Tok::RBrace) => {
                    self.next();
                    break;
                }
                Some(Tok::Optional) => {
                    self.next();
                    let inner = self.group()?;
                    flush(&mut acc, &mut pending);
                    let left = acc.take().unwrap_or(Query::Bgp(Vec::new()));
                    acc = Some(left.optional(inner));
                }
                Some(Tok::LBrace) => {
                    let sub = self.group_with_unions()?;
                    flush(&mut acc, &mut pending);
                    acc = Some(match acc.take() {
                        None => sub,
                        Some(a) => a.and(sub),
                    });
                }
                Some(Tok::Union) => {
                    return Err(self.err("UNION must follow a braced group"));
                }
                Some(Tok::Dot) => {
                    self.next(); // stray separators are tolerated
                }
                _ => {
                    let t = self.triple()?;
                    pending.push(t);
                    if self.peek() == Some(&Tok::Dot) {
                        self.next();
                    }
                }
            }
        }
        flush(&mut acc, &mut pending);
        Ok(acc.unwrap_or(Query::Bgp(Vec::new())))
    }

    /// `group ('UNION' group)*`, left-associative.
    fn group_with_unions(&mut self) -> Result<Query, ParseError> {
        let mut q = self.group()?;
        while self.peek() == Some(&Tok::Union) {
            self.next();
            q = q.union(self.group()?);
        }
        Ok(q)
    }

    fn triple(&mut self) -> Result<TriplePattern, ParseError> {
        let s = self.term("subject")?;
        let p = match self.next() {
            Some((_, Tok::Iri(p))) => p,
            Some((p, Tok::Var(v))) => {
                return Err(ParseError {
                    position: p,
                    message: format!(
                        "variable predicate ?{v} is not supported: dual simulation \
                         requires a fixed edge alphabet"
                    ),
                })
            }
            Some((p, t)) => {
                return Err(ParseError {
                    position: p,
                    message: format!("expected predicate, found {t:?}"),
                })
            }
            None => return Err(self.err("expected predicate, found end of input")),
        };
        let o = self.term("object")?;
        Ok(TriplePattern::new(s, p, o))
    }

    fn term(&mut self, what: &str) -> Result<Term, ParseError> {
        match self.next() {
            Some((_, Tok::Var(v))) => Ok(Term::Var(v)),
            Some((_, Tok::Iri(iri))) => Ok(Term::Iri(iri)),
            Some((_, Tok::Literal(l))) => Ok(Term::Literal(l)),
            Some((p, t)) => Err(ParseError {
                position: p,
                message: format!("expected {what} term, found {t:?}"),
            }),
            None => Err(self.err(format!("expected {what} term, found end of input"))),
        }
    }
}

fn flush(acc: &mut Option<Query>, pending: &mut Vec<TriplePattern>) {
    if pending.is_empty() {
        return;
    }
    let bgp = Query::Bgp(std::mem::take(pending));
    *acc = Some(match acc.take() {
        None => bgp,
        Some(a) => a.and(bgp),
    });
}

/// Parses a query in the concrete syntax described in the module docs.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    }
    .query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp;

    #[test]
    fn parses_query_x1() {
        let q = parse(
            "SELECT * WHERE { ?director directed ?movie . \
             ?director worked_with ?coworker . }",
        )
        .unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![
                tp("?director", "directed", "?movie"),
                tp("?director", "worked_with", "?coworker"),
            ])
        );
    }

    #[test]
    fn parses_query_x2_optional() {
        let q = parse(
            "SELECT * WHERE { ?director directed ?movie . \
             OPTIONAL { ?director worked_with ?coworker . } }",
        )
        .unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![tp("?director", "directed", "?movie")]).optional(Query::Bgp(vec![tp(
                "?director",
                "worked_with",
                "?coworker"
            )]))
        );
    }

    #[test]
    fn parses_query_x3_shape() {
        let q =
            parse("SELECT * WHERE { { ?v1 a ?v2 OPTIONAL { ?v3 b ?v2 } } { ?v3 c ?v4 } }").unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![tp("?v1", "a", "?v2")])
                .optional(Query::Bgp(vec![tp("?v3", "b", "?v2")]))
                .and(Query::Bgp(vec![tp("?v3", "c", "?v4")]))
        );
    }

    #[test]
    fn parses_unions() {
        let q = parse("{ { ?x a ?y } UNION { ?x b ?y } UNION { ?x c ?y } }").unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![tp("?x", "a", "?y")])
                .union(Query::Bgp(vec![tp("?x", "b", "?y")]))
                .union(Query::Bgp(vec![tp("?x", "c", "?y")]))
        );
    }

    #[test]
    fn select_clause_is_optional() {
        let a = parse("{ ?x p ?y }").unwrap();
        let b = parse("select * where { ?x p ?y }").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iris_literals_and_prefixed_names() {
        let q = parse("{ ?m type ub:Publication . <Saint John> population \"70063\" }").unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![
                tp("?m", "type", "ub:Publication"),
                tp("Saint John", "population", "\"70063\""),
            ])
        );
    }

    #[test]
    fn leading_optional_gets_empty_left_side() {
        let q = parse("{ OPTIONAL { ?x p ?y } }").unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![]).optional(Query::Bgp(vec![tp("?x", "p", "?y")]))
        );
    }

    #[test]
    fn variable_predicates_are_rejected() {
        let err = parse("{ ?s ?p ?o }").unwrap_err();
        assert!(err.message.contains("fixed edge alphabet"), "{err}");
    }

    #[test]
    fn error_positions_point_at_offenders() {
        let err = parse("{ ?s p }").unwrap_err();
        assert_eq!(err.position, 7, "{err}");
    }

    #[test]
    fn unterminated_group_is_an_error() {
        assert!(parse("{ ?s p ?o").is_err());
        assert!(parse("{").is_err());
    }

    #[test]
    fn escaped_literals() {
        let q = parse(r#"{ ?s p "a\"b\\c\n" }"#).unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![TriplePattern::new(
                Term::Var("s".into()),
                "p",
                Term::Literal("a\"b\\c\n".into())
            )])
        );
    }

    #[test]
    fn triples_after_group_start_new_bgp() {
        let q = parse("{ { ?a p ?b } ?c q ?d }").unwrap();
        assert_eq!(
            q,
            Query::Bgp(vec![tp("?a", "p", "?b")]).and(Query::Bgp(vec![tp("?c", "q", "?d")]))
        );
    }

    #[test]
    fn union_without_left_group_is_an_error() {
        assert!(parse("{ UNION { ?a p ?b } }").is_err());
    }
}
