//! Abstract syntax of the query language S.

use std::collections::BTreeSet;
use std::fmt;

/// A subject or object position of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A query variable (`?name` in concrete syntax, `name` here).
    Var(String),
    /// A constant database object.
    Iri(String),
    /// A constant literal value.
    Literal(String),
}

impl Term {
    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// `true` iff the term is a constant (IRI or literal).
    pub fn is_constant(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

/// A triple pattern `(s, p, o)` with a *constant* predicate.
///
/// Dual simulation operates over a fixed edge alphabet `Σ`, so predicates
/// must be constants; the parser rejects variable predicates. Subject and
/// object may be variables or constants (Sect. 4.5 discusses constants).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate (edge label), always constant.
    pub p: String,
    /// Object term.
    pub o: Term,
}

impl TriplePattern {
    /// Constructs a triple pattern from already-built terms.
    pub fn new(s: Term, p: impl Into<String>, o: Term) -> Self {
        TriplePattern { s, p: p.into(), o }
    }

    /// `vars(t)`: the set of variables occurring in the pattern.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.s.as_var().into_iter().chain(self.o.as_var())
    }
}

/// Shorthand constructor used pervasively in tests and generators:
/// `"?x"` becomes a variable, `"\"42\""` a literal, anything else an IRI.
///
/// ```
/// use dualsim_query::{tp, Term};
/// let t = tp("?director", "directed", "?movie");
/// assert_eq!(t.s, Term::Var("director".into()));
/// let c = tp("?m", "type", "ub:Publication");
/// assert_eq!(c.o, Term::Iri("ub:Publication".into()));
/// ```
pub fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
    TriplePattern::new(parse_term(s), p, parse_term(o))
}

fn parse_term(text: &str) -> Term {
    if let Some(v) = text.strip_prefix('?') {
        Term::Var(v.to_owned())
    } else if text.len() >= 2 && text.starts_with('"') && text.ends_with('"') {
        Term::Literal(text[1..text.len() - 1].to_owned())
    } else {
        Term::Iri(text.to_owned())
    }
}

/// A query of the language S (Sect. 4.3), extended with `UNION`.
///
/// The paper's grammar is `Q ::= G | Q AND Q | Q OPTIONAL Q` over basic
/// graph patterns `G`; `UNION` is permitted at any position and removed
/// up front by [`Query::union_normal_form`] (Prop. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// A basic graph pattern: a set of triple patterns, all mandatory.
    Bgp(Vec<TriplePattern>),
    /// Conjunction — the inner join of both result sets on compatible
    /// matches (Sect. 4.2).
    And(Box<Query>, Box<Query>),
    /// Optional pattern — the left-outer join (Sect. 4.3).
    Optional(Box<Query>, Box<Query>),
    /// Union of result sets (Sect. 4.2).
    Union(Box<Query>, Box<Query>),
}

impl Query {
    /// Builds a BGP query.
    pub fn bgp(patterns: Vec<TriplePattern>) -> Query {
        Query::Bgp(patterns)
    }

    /// `self AND other`.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// `self OPTIONAL other`.
    pub fn optional(self, other: Query) -> Query {
        Query::Optional(Box::new(self), Box::new(other))
    }

    /// `self UNION other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// `vars(Q)`: every variable occurring anywhere in the query.
    pub fn vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Query::Bgp(tps) => {
                for t in tps {
                    out.extend(t.vars());
                }
            }
            Query::And(a, b) | Query::Optional(a, b) | Query::Union(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Sorted list of all variable names (owned), the canonical variable
    /// order used by the evaluation engines.
    pub fn var_names(&self) -> Vec<String> {
        self.vars().into_iter().map(str::to_owned).collect()
    }

    /// `mand(Q)`: the variables with a mandatory occurrence (Sect. 4.3):
    ///
    /// * `mand(G) = vars(G)`
    /// * `mand(Q1 AND Q2) = mand(Q1) ∪ mand(Q2)`
    /// * `mand(Q1 OPTIONAL Q2) = mand(Q1)`
    /// * `mand(Q1 UNION Q2) = mand(Q1) ∩ mand(Q2)` — a variable is certain
    ///   to be bound only if both branches bind it (used by the engines
    ///   for join keys; the paper's `mand` is defined on union-free
    ///   queries where this case does not arise).
    pub fn mand(&self) -> BTreeSet<&str> {
        match self {
            Query::Bgp(_) => self.vars(),
            Query::And(a, b) => a.mand().union(&b.mand()).copied().collect(),
            Query::Optional(a, _) => a.mand(),
            Query::Union(a, b) => a.mand().intersection(&b.mand()).copied().collect(),
        }
    }

    /// `true` iff no `UNION` occurs in the query, i.e. the query lies in
    /// the language S the SOI construction handles directly.
    pub fn is_union_free(&self) -> bool {
        match self {
            Query::Bgp(_) => true,
            Query::And(a, b) | Query::Optional(a, b) => a.is_union_free() && b.is_union_free(),
            Query::Union(..) => false,
        }
    }

    /// Number of triple patterns in the query.
    pub fn num_triple_patterns(&self) -> usize {
        match self {
            Query::Bgp(tps) => tps.len(),
            Query::And(a, b) | Query::Optional(a, b) | Query::Union(a, b) => {
                a.num_triple_patterns() + b.num_triple_patterns()
            }
        }
    }

    /// The well-designedness check of Pérez et al. (Sect. 4.5): for every
    /// sub-pattern `Q1 OPTIONAL Q2` and every variable `v ∈ vars(Q2)` that
    /// also occurs *outside* the whole optional sub-pattern, `v` must
    /// occur in `Q1`. Query (X3) of the paper is the canonical
    /// non-well-designed example.
    ///
    /// The dual-simulation machinery does not require well-designedness —
    /// this predicate exists so workloads and experiments can report it.
    pub fn is_well_designed(&self) -> bool {
        fn check(q: &Query, outside: &BTreeSet<&str>) -> bool {
            match q {
                Query::Bgp(_) => true,
                Query::And(a, b) => {
                    let mut oa = outside.clone();
                    oa.extend(b.vars());
                    let mut ob = outside.clone();
                    ob.extend(a.vars());
                    check(a, &oa) && check(b, &ob)
                }
                Query::Union(a, b) => check(a, outside) && check(b, outside),
                Query::Optional(a, b) => {
                    let va = a.vars();
                    let cond = b
                        .vars()
                        .iter()
                        .all(|v| !outside.contains(v) || va.contains(v));
                    let mut oa = outside.clone();
                    oa.extend(b.vars());
                    let mut ob = outside.clone();
                    ob.extend(a.vars());
                    cond && check(a, &oa) && check(b, &ob)
                }
            }
        }
        check(self, &BTreeSet::new())
    }

    /// Strips all `OPTIONAL` operators, keeping only the mandatory core
    /// (used to compare against the Ma et al. baseline on BGPs, which is
    /// how the paper prepares queries B0–B19 for Table 2), and flattens
    /// `AND` into a single BGP. `UNION` keeps both branches joined, which
    /// over-approximates but is only used for workload preparation.
    pub fn mandatory_core(&self) -> Vec<TriplePattern> {
        let mut out = Vec::new();
        fn walk(q: &Query, out: &mut Vec<TriplePattern>) {
            match q {
                Query::Bgp(tps) => out.extend(tps.iter().cloned()),
                Query::And(a, b) | Query::Union(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Query::Optional(a, _) => walk(a, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Literal(l) => write!(f, "\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}> {} .", self.s, self.p, self.o)
    }
}

/// Serializes the query in the concrete syntax accepted by
/// [`crate::parse`]; `parse(q.to_string())` reconstructs the same AST
/// (a property-tested round trip).
impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT * WHERE ")?;
        self.fmt_group(f)
    }
}

impl Query {
    fn fmt_group(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ ")?;
        self.fmt_inner(f)?;
        write!(f, "}}")
    }

    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Bgp(tps) => {
                for t in tps {
                    write!(f, "{t} ")?;
                }
                Ok(())
            }
            Query::And(a, b) => {
                a.fmt_group(f)?;
                write!(f, " ")?;
                b.fmt_group(f)?;
                write!(f, " ")
            }
            Query::Optional(a, b) => {
                a.fmt_group(f)?;
                write!(f, " OPTIONAL ")?;
                b.fmt_group(f)?;
                write!(f, " ")
            }
            Query::Union(a, b) => {
                a.fmt_group(f)?;
                write!(f, " UNION ")?;
                b.fmt_group(f)?;
                write!(f, " ")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Query (X1) of the paper.
    fn x1() -> Query {
        Query::bgp(vec![
            tp("?director", "directed", "?movie"),
            tp("?director", "worked_with", "?coworker"),
        ])
    }

    /// Query (X2): (X1) with the coworker part optional.
    fn x2() -> Query {
        Query::bgp(vec![tp("?director", "directed", "?movie")]).optional(Query::bgp(vec![tp(
            "?director",
            "worked_with",
            "?coworker",
        )]))
    }

    /// Query (X3): ({(v1,a,v2)} OPTIONAL {(v3,b,v2)}) AND {(v3,c,v4)}.
    fn x3() -> Query {
        Query::bgp(vec![tp("?v1", "a", "?v2")])
            .optional(Query::bgp(vec![tp("?v3", "b", "?v2")]))
            .and(Query::bgp(vec![tp("?v3", "c", "?v4")]))
    }

    #[test]
    fn vars_collects_all_variables() {
        assert_eq!(
            x1().vars().into_iter().collect::<Vec<_>>(),
            vec!["coworker", "director", "movie"]
        );
        assert_eq!(x3().vars().len(), 4);
    }

    #[test]
    fn mand_follows_the_paper_definition() {
        // mand(X2) = vars of the mandatory part only.
        let x2 = x2();
        let mand = x2.mand();
        assert!(mand.contains("director") && mand.contains("movie"));
        assert!(!mand.contains("coworker"));
        // mand(X3): v3 is mandatory through the AND's right clause.
        let x3 = x3();
        let mand3 = x3.mand();
        assert!(mand3.contains("v1") && mand3.contains("v2"));
        assert!(mand3.contains("v3") && mand3.contains("v4"));
    }

    #[test]
    fn x3_is_not_well_designed_but_x1_x2_are() {
        assert!(x1().is_well_designed());
        assert!(x2().is_well_designed());
        // v3 occurs in the optional part and outside it, but not in the
        // mandatory left-hand side of its OPTIONAL (Sect. 4.5).
        assert!(!x3().is_well_designed());
    }

    #[test]
    fn nested_optionals_well_designedness() {
        // (P1 OPT P2) OPT P3 with y in all three parts: well designed.
        let p = Query::bgp(vec![tp("?y", "a", "?u")])
            .optional(Query::bgp(vec![tp("?y", "b", "?w")]))
            .optional(Query::bgp(vec![tp("?y", "c", "?z")]));
        assert!(p.is_well_designed());
        // R1 OPT (R2 OPT R3) with z only in R2 and R3 and a fresh variable
        // linking to R1: still well designed (z does not occur outside the
        // inner optional pattern's scope chain).
        let r = Query::bgp(vec![tp("?x", "a", "?x2")]).optional(
            Query::bgp(vec![tp("?z", "b", "?x")]).optional(Query::bgp(vec![tp("?z", "c", "?w")])),
        );
        assert!(r.is_well_designed());
        // But if z also occurs in R1 while missing from R2's mandatory
        // side of the innermost OPTIONAL, it is not.
        let bad = Query::bgp(vec![tp("?x", "a", "?z")]).optional(
            Query::bgp(vec![tp("?x", "b", "?w")]).optional(Query::bgp(vec![tp("?z", "c", "?w2")])),
        );
        assert!(!bad.is_well_designed());
    }

    #[test]
    fn union_free_detection() {
        assert!(x3().is_union_free());
        let u = x1().union(x2());
        assert!(!u.is_union_free());
    }

    #[test]
    fn mandatory_core_strips_optionals() {
        let core = x2().mandatory_core();
        assert_eq!(core, vec![tp("?director", "directed", "?movie")]);
        let core3 = x3().mandatory_core();
        assert_eq!(core3.len(), 2);
    }

    #[test]
    fn tp_shorthand_distinguishes_term_kinds() {
        let t = tp("?s", "population", "\"70063\"");
        assert_eq!(t.o, Term::Literal("70063".into()));
        let c = tp("Saint John", "population", "?p");
        assert_eq!(c.s, Term::Iri("Saint John".into()));
    }

    #[test]
    fn display_is_parseable_sparql() {
        let text = x3().to_string();
        assert!(text.starts_with("SELECT * WHERE {"));
        assert!(text.contains("OPTIONAL"));
    }

    #[test]
    fn num_triple_patterns_counts_leaves() {
        assert_eq!(x1().num_triple_patterns(), 2);
        assert_eq!(x3().num_triple_patterns(), 3);
        assert_eq!(x1().union(x3()).num_triple_patterns(), 5);
    }
}
