//! Union-normal-form rewriting (Prop. 3 of the paper / Prop. 3.8 of
//! Pérez et al.).
//!
//! Every query is rewritten into a list of *union-free* queries that are
//! processed separately by the SOI machinery; the pruning of the original
//! query is the union of the per-branch prunings (Sect. 4.2).

use crate::Query;

impl Query {
    /// Splits the query into union-free branches.
    ///
    /// The rewriting distributes `UNION` out of both operands of `AND`
    /// and out of the mandatory (left) operand of `OPTIONAL` — both exact
    /// equivalences [Pérez et al., Prop. 1]. A `UNION` inside the
    /// *optional* operand is also distributed,
    /// `Q1 OPTIONAL (Q2 UNION Q3) ⇝ (Q1 OPTIONAL Q2) ∪ (Q1 OPTIONAL Q3)`,
    /// which is **not** an equivalence in general but yields a superset
    /// of the original result set in which every original match occurs
    /// unchanged: any `μ1 ∪ μ2` with `μ2` from `Q2` (or `Q3`) survives in
    /// the corresponding branch, and any bare `μ1` survives in both.
    /// Since dual simulation processing computes a sound
    /// *over*-approximation anyway (Theorem 2), soundness of the pruning
    /// is preserved; the branches may only retain extra triples.
    ///
    /// The result is never empty; a union-free query yields itself.
    pub fn union_normal_form(&self) -> Vec<Query> {
        match self {
            Query::Bgp(_) => vec![self.clone()],
            Query::Union(a, b) => {
                let mut out = a.union_normal_form();
                out.extend(b.union_normal_form());
                out
            }
            Query::And(a, b) => cross(a, b, Query::and),
            Query::Optional(a, b) => cross(a, b, Query::optional),
        }
    }
}

fn cross(a: &Query, b: &Query, combine: fn(Query, Query) -> Query) -> Vec<Query> {
    let left = a.union_normal_form();
    let right = b.union_normal_form();
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in &left {
        for r in &right {
            out.push(combine(l.clone(), r.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{tp, Query};

    fn b(name: &str) -> Query {
        Query::Bgp(vec![tp("?x", name, "?y")])
    }

    #[test]
    fn union_free_queries_pass_through() {
        let q = b("a").and(b("b")).optional(b("c"));
        assert_eq!(q.union_normal_form(), vec![q]);
    }

    #[test]
    fn top_level_unions_are_flattened() {
        let q = b("a").union(b("b")).union(b("c"));
        assert_eq!(q.union_normal_form(), vec![b("a"), b("b"), b("c")]);
    }

    #[test]
    fn union_distributes_over_and() {
        let q = b("a").union(b("b")).and(b("c"));
        assert_eq!(
            q.union_normal_form(),
            vec![b("a").and(b("c")), b("b").and(b("c"))]
        );
        let q2 = b("a").and(b("b").union(b("c")));
        assert_eq!(
            q2.union_normal_form(),
            vec![b("a").and(b("b")), b("a").and(b("c"))]
        );
    }

    #[test]
    fn union_distributes_over_optional_left() {
        let q = b("a").union(b("b")).optional(b("c"));
        assert_eq!(
            q.union_normal_form(),
            vec![b("a").optional(b("c")), b("b").optional(b("c"))]
        );
    }

    #[test]
    fn union_in_optional_right_is_approximated() {
        let q = b("a").optional(b("b").union(b("c")));
        assert_eq!(
            q.union_normal_form(),
            vec![b("a").optional(b("b")), b("a").optional(b("c"))]
        );
    }

    #[test]
    fn nested_unions_multiply_out() {
        let q = b("a").union(b("b")).and(b("c").union(b("d")));
        assert_eq!(q.union_normal_form().len(), 4);
    }

    #[test]
    fn branches_are_union_free() {
        let q = b("a")
            .union(b("b"))
            .and(b("c").union(b("d")))
            .optional(b("e").union(b("f")));
        for branch in q.union_normal_form() {
            assert!(branch.is_union_free());
        }
    }
}
