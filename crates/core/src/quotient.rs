//! Simulation-quotient database fingerprints (the Sect. 6 extension).
//!
//! The related-work section observes that join-ahead pruning indexes on
//! XML data are built from bisimulation equivalence classes and that
//! "it would be sufficient to produce dual simulation equivalence
//! classes, which promises to obtain a much smaller database
//! fingerprint". This module implements that idea:
//!
//! * [`QuotientIndex::build`] computes the coarsest partition of the
//!   database nodes that is stable under *both* adjacency directions
//!   (forward/backward bisimulation) by signature refinement;
//! * the quotient graph — one node per block, an `a`-edge between blocks
//!   iff some members are `a`-connected — is itself a [`GraphDb`], so the
//!   entire SOI machinery runs on it unchanged;
//! * [`QuotientIndex::expand`] lifts a quotient solution back to the
//!   original node universe.
//!
//! Bisimilar nodes are indistinguishable to dual simulation, so the
//! largest dual simulation of any *constant-free* pattern over the
//! quotient, expanded, equals the largest dual simulation over the
//! original database (property-tested in `tests/soundness_props.rs`).
//! With constants the quotient result is still a sound
//! over-approximation: a pinned node is represented by its whole block.

use dualsim_bitmatrix::BitVec;
use dualsim_graph::{GraphDb, GraphDbBuilder, NodeId};
use std::collections::HashMap;

/// A forward/backward-bisimulation quotient of a database.
#[derive(Debug, Clone)]
pub struct QuotientIndex {
    block_of: Vec<u32>,
    num_blocks: usize,
    quotient: GraphDb,
    labels: Vec<dualsim_graph::LabelId>,
    /// Refinement rounds until the partition stabilized.
    pub rounds: usize,
}

impl QuotientIndex {
    /// Computes the quotient over the full label alphabet.
    pub fn build(db: &GraphDb) -> Self {
        let labels: Vec<_> = (0..db.num_labels() as u32).collect();
        Self::build_for_labels(db, &labels)
    }

    /// Computes the quotient over a label sub-alphabet.
    ///
    /// Databases with unique attribute literals (names, e-mails)
    /// fingerprint poorly under the full alphabet — every entity's
    /// literal is distinct, so every entity block is a singleton.
    /// Restricting the fingerprint to the *relational* predicates
    /// recovers the structural regularity; the full-abstraction guarantee
    /// then applies to queries that mention only fingerprinted labels.
    ///
    /// Computes the coarsest stable partition by iterated signature
    /// refinement: two nodes stay in one block as long as they reach the
    /// same blocks over the same (selected) labels in both directions.
    /// Terminates after at most `|V|` rounds; each round is
    /// `O(|E| log |E|)`.
    pub fn build_for_labels(db: &GraphDb, labels: &[dualsim_graph::LabelId]) -> Self {
        let n = db.num_nodes();
        let mut block_of: Vec<u32> = vec![0; n];
        let mut num_blocks = 1usize.min(n);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); n];
            for &label in labels {
                for (s, o) in db.label_pairs(label) {
                    // Encode (label, direction, neighbour block).
                    let fwd = ((label as u64) << 33) | (block_of[o as usize] as u64);
                    let bwd = ((label as u64) << 33) | (1 << 32) | (block_of[s as usize] as u64);
                    signatures[s as usize].push(fwd);
                    signatures[o as usize].push(bwd);
                }
            }
            let mut table: HashMap<(u32, Vec<u64>), u32> = HashMap::with_capacity(num_blocks * 2);
            let mut next: Vec<u32> = vec![0; n];
            for v in 0..n {
                let sig = &mut signatures[v];
                sig.sort_unstable();
                sig.dedup();
                // Refinement: the new block is keyed by (old block, sig),
                // so blocks only ever split.
                let key = (block_of[v], std::mem::take(sig));
                let fresh = table.len() as u32;
                next[v] = *table.entry(key).or_insert(fresh);
            }
            let new_count = table.len();
            block_of = next;
            if new_count == num_blocks {
                break;
            }
            num_blocks = new_count;
        }
        let quotient = build_quotient_db(db, &block_of, num_blocks, labels);
        QuotientIndex {
            block_of,
            num_blocks,
            quotient,
            labels: labels.to_vec(),
            rounds,
        }
    }

    /// The fingerprinted label sub-alphabet (original label ids).
    pub fn labels(&self) -> &[dualsim_graph::LabelId] {
        &self.labels
    }

    /// Number of equivalence classes (fingerprint size in nodes).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The block of an original node.
    pub fn block_of(&self, node: NodeId) -> u32 {
        self.block_of[node as usize]
    }

    /// The quotient database. Block `b` is the node named `block{b}`;
    /// labels carry the original predicate names, so queries run
    /// unchanged.
    pub fn quotient(&self) -> &GraphDb {
        &self.quotient
    }

    /// Compression factor in nodes (original / blocks).
    pub fn node_compression(&self) -> f64 {
        if self.num_blocks == 0 {
            return 1.0;
        }
        self.block_of.len() as f64 / self.num_blocks as f64
    }

    /// Lifts a χ over quotient nodes back to original nodes: an original
    /// node is a candidate iff its block is.
    pub fn expand(&self, quotient_chi: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.block_of.len());
        for (node, &block) in self.block_of.iter().enumerate() {
            // Structural invariant: `build_quotient_db` interned one
            // node per block.
            #[allow(clippy::expect_used)]
            let q = self
                .quotient
                .node_id(&block_name(block))
                .expect("every block is a quotient node");
            if quotient_chi.get(q as usize) {
                out.set(node);
            }
        }
        out
    }
}

fn block_name(b: u32) -> String {
    format!("block{b}")
}

fn build_quotient_db(
    db: &GraphDb,
    block_of: &[u32],
    num_blocks: usize,
    labels: &[dualsim_graph::LabelId],
) -> GraphDb {
    let mut b = GraphDbBuilder::new();
    // Intern blocks in order so block b gets a stable node name.
    for block in 0..num_blocks as u32 {
        // Structural invariant: block names are fresh IRIs.
        #[allow(clippy::unwrap_used)]
        b.add_node(&block_name(block), dualsim_graph::NodeKind::Iri)
            .unwrap();
    }
    for &label in labels {
        let name = db.label_name(label).to_owned();
        b.intern_label(&name);
        let mut edges: Vec<(u32, u32)> = db
            .label_pairs(label)
            .map(|(s, o)| (block_of[s as usize], block_of[o as usize]))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        for (s, o) in edges {
            // Structural invariant: both endpoints were interned above.
            #[allow(clippy::unwrap_used)]
            b.add_triple(&block_name(s), &name, &block_name(o)).unwrap();
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_sois, solve, SolverConfig};
    use dualsim_query::parse;

    fn chain_db() -> GraphDb {
        // Two isomorphic chains a→b→c and d→e→f: blocks must pair up.
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("d", "p", "e").unwrap();
        b.add_triple("e", "p", "f").unwrap();
        b.finish()
    }

    #[test]
    fn isomorphic_substructures_share_blocks() {
        let db = chain_db();
        let q = QuotientIndex::build(&db);
        assert_eq!(q.num_blocks(), 3, "head, middle, tail");
        assert_eq!(
            q.block_of(db.node_id("a").unwrap()),
            q.block_of(db.node_id("d").unwrap())
        );
        assert_eq!(
            q.block_of(db.node_id("b").unwrap()),
            q.block_of(db.node_id("e").unwrap())
        );
        assert_ne!(
            q.block_of(db.node_id("a").unwrap()),
            q.block_of(db.node_id("b").unwrap())
        );
        assert_eq!(q.quotient().num_triples(), 2);
        assert!((q.node_compression() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn quotient_solution_expands_to_the_original_solution() {
        let db = chain_db();
        let index = QuotientIndex::build(&db);
        let query = parse("{ ?x p ?y . ?y p ?z }").unwrap();
        let cfg = SolverConfig::default();
        // Direct solution.
        let soi = build_sois(&db, &query).remove(0);
        let direct = solve(&db, &soi, &cfg);
        // Quotient solution, expanded.
        let qsoi = build_sois(index.quotient(), &query).remove(0);
        let qsol = solve(index.quotient(), &qsoi, &cfg);
        for var in ["x", "y", "z"] {
            let expanded = index.expand(&qsol.var_solution(&qsoi, var));
            assert_eq!(expanded, direct.var_solution(&soi, var), "?{var}");
        }
    }

    #[test]
    fn heterogeneous_nodes_split() {
        let mut b = GraphDbBuilder::new();
        b.add_triple("movie1", "genre", "Action").unwrap();
        b.add_triple("movie2", "genre", "Action").unwrap();
        b.add_triple("director", "directed", "movie1").unwrap();
        let db = b.finish();
        let q = QuotientIndex::build(&db);
        // movie1 (directed + genre) and movie2 (genre only) must split.
        assert_ne!(
            q.block_of(db.node_id("movie1").unwrap()),
            q.block_of(db.node_id("movie2").unwrap())
        );
    }

    #[test]
    fn refinement_terminates_on_cycles() {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "a").unwrap();
        let db = b.finish();
        let q = QuotientIndex::build(&db);
        // Perfectly symmetric 2-cycle: one block.
        assert_eq!(q.num_blocks(), 1);
        assert_eq!(q.quotient().num_triples(), 1, "self-loop block");
    }

    #[test]
    fn empty_database_has_empty_quotient() {
        let db = GraphDbBuilder::new().finish();
        let q = QuotientIndex::build(&db);
        assert_eq!(q.num_blocks(), 0);
        assert_eq!(q.quotient().num_triples(), 0);
    }

    #[test]
    fn label_restricted_fingerprints_ignore_attribute_edges() {
        // Bisimulation sees structure, not literal values: whether a
        // movie *has* a title edge splits blocks under the full alphabet;
        // restricting the fingerprint to `genre` merges them again.
        let mut b = GraphDbBuilder::new();
        for i in 0..4 {
            b.add_triple(&format!("m{i}"), "genre", "Action").unwrap();
        }
        b.add_attribute("m0", "title", "unique title 0").unwrap();
        b.add_attribute("m1", "title", "unique title 1").unwrap();
        let db = b.finish();
        let full = QuotientIndex::build(&db);
        // titled movies, untitled movies, titles, Action.
        assert_eq!(full.num_blocks(), 4);
        assert_ne!(
            full.block_of(db.node_id("m0").unwrap()),
            full.block_of(db.node_id("m2").unwrap())
        );
        let genre = db.label_id("genre").unwrap();
        let structural = QuotientIndex::build_for_labels(&db, &[genre]);
        // movies, Action, edge-less title literals.
        assert_eq!(structural.num_blocks(), 3);
        assert_eq!(
            structural.block_of(db.node_id("m0").unwrap()),
            structural.block_of(db.node_id("m2").unwrap())
        );
        assert_eq!(structural.labels(), &[genre]);
    }

    #[test]
    fn constants_over_approximate_via_blocks() {
        let db = chain_db();
        let index = QuotientIndex::build(&db);
        let query = parse("{ ?x p b }").unwrap();
        let cfg = SolverConfig::default();
        let soi = build_sois(&db, &query).remove(0);
        let direct = solve(&db, &soi, &cfg);
        // On the quotient the constant b does not exist by name; solving
        // the variable-only core over-approximates: the expansion of the
        // unconstrained query covers the constant-constrained solution.
        let core = parse("{ ?x p ?o }").unwrap();
        let qsoi = build_sois(index.quotient(), &core).remove(0);
        let qsol = solve(index.quotient(), &qsoi, &cfg);
        let expanded = index.expand(&qsol.var_solution(&qsoi, "x"));
        assert!(direct.var_solution(&soi, "x").is_subset_of(&expanded));
    }
}
