//! Incremental maintenance of the largest dual simulation under triple
//! deletions **and insertions**.
//!
//! The largest dual simulation is *monotone in the database edges*: any
//! dual simulation w.r.t. a sub-database is also one w.r.t. the original,
//! so deleting triples can only shrink the largest solution. The current
//! solution therefore remains a valid **starting relation** for the
//! fixpoint after deletions — the solver converges to the new largest
//! solution without re-seeding from `V₁ × V₂` (see
//! [`crate::solve_from`]), typically touching only the neighbourhood of
//! the deleted triples.
//!
//! Insertions are the hard direction: the solution can *grow*, so the
//! previous χ is no longer an upper bound and warm-starting the
//! shrink-only solver from it would miss every regained candidate. Under
//! [`FixpointMode::Reevaluate`] a cold re-solve is the only sound
//! option (the classic split in incremental simulation maintenance, cf.
//! Fan et al.'s incremental graph pattern matching line of work the
//! paper builds on). Under [`FixpointMode::DeltaCounting`], however,
//! the persistent support counters tell exactly *which* candidates may
//! return: an inserted triple increments the counters of the
//! inequalities it feeds, and the **re-activation frontier** — the
//! candidates whose support went **0→1**, plus the inserted endpoints —
//! is optimistically re-admitted into χ and cascaded to closure; the
//! standard removal drain then culls the over-approximation. Both
//! update directions thus touch only the changed triples'
//! neighbourhood, and neither ever re-evaluates an inequality
//! wholesale.
//!
//! Deletions under [`FixpointMode::DeltaCounting`] are fed *directly
//! into the delta worklist* (one counter decrement per deleted triple
//! and affected inequality) instead of re-running the solver over the
//! previous χ — the fully incremental path the `ablation_fixpoint`
//! benchmark measures. The configured [`crate::DrainStrategy`] applies
//! to maintenance too: under `DrainStrategy::Sharded` every update's
//! cascade is drained in parallel rounds, with χ and all work counters
//! bit-identical to the sequential drain.

use crate::delta::DeltaSolver;
use crate::{solve, solve_from, FixpointMode, Soi, Solution, SolverConfig};
use dualsim_graph::{GraphDb, Triple};

/// A maintained largest-solution instance for one SOI.
#[derive(Debug, Clone)]
pub struct IncrementalDualSim {
    soi: Soi,
    config: SolverConfig,
    solution: Solution,
    /// Persistent delta engine (support counters included); `Some` iff
    /// the configuration selects [`FixpointMode::DeltaCounting`].
    engine: Option<DeltaSolver>,
    /// `true` iff the last update was served incrementally.
    warm: bool,
}

impl IncrementalDualSim {
    /// Solves from scratch and starts maintenance.
    pub fn new(db: &GraphDb, soi: Soi, config: SolverConfig) -> Self {
        let (solution, engine) = match config.fixpoint {
            FixpointMode::Reevaluate => (solve(db, &soi, &config), None),
            FixpointMode::DeltaCounting => {
                let engine = DeltaSolver::new(db, &soi, &config);
                (engine.solution(), Some(engine))
            }
        };
        IncrementalDualSim {
            soi,
            config,
            solution,
            engine,
            // The initial solve is a cold solve by definition; `warm`
            // reports on *updates*, of which there have been none.
            warm: false,
        }
    }

    /// The maintained solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The maintained system.
    pub fn soi(&self) -> &Soi {
        &self.soi
    }

    /// Re-establishes the largest solution after triples were **deleted**
    /// (`db_after` must be the old database minus `deleted`; duplicates
    /// within the batch are ignored).
    ///
    /// Under [`FixpointMode::Reevaluate`] this warm-starts the solver
    /// from the previous solution; under [`FixpointMode::DeltaCounting`]
    /// the deletions are pushed straight into the persistent delta
    /// queue, touching only the counters the deleted triples supported.
    ///
    /// Returns the number of candidates dropped by the update.
    pub fn apply_deletions(&mut self, db_after: &GraphDb, deleted: &[Triple]) -> usize {
        debug_assert!(
            deleted.iter().all(|t| !db_after.contains_triple(*t)),
            "deleted triples must be absent from db_after"
        );
        let before: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        if let Some(engine) = &mut self.engine {
            engine.retract_triples(db_after, &self.soi, &self.config, deleted);
            self.solution = engine.solution();
        } else {
            // The previous χ is an upper bound of the new largest
            // solution; early exit stays valid because emptiness is
            // monotone too.
            let initial = self.solution.chi.clone();
            self.solution = solve_from(db_after, &self.soi, &self.config, initial);
        }
        self.warm = true;
        let after: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        before.saturating_sub(after)
    }

    /// Re-establishes the largest solution after triples were
    /// **inserted** (`db_after` must be the old database plus
    /// `inserted`; a triple already present before the update must not
    /// be listed, duplicates within the batch are ignored).
    ///
    /// Under [`FixpointMode::DeltaCounting`] the insertions are walked
    /// against the persistent support counters: the candidates whose
    /// support went 0→1 — plus the inserted endpoints — form the
    /// re-activation frontier, are optimistically re-admitted, and the
    /// over-approximation is culled by the standard removal drain, so
    /// the update costs work proportional to the inserted triples'
    /// neighbourhood. Under [`FixpointMode::Reevaluate`] the previous χ
    /// is no upper bound any more (the solution can grow), so the
    /// update falls back to a cold re-solve — as it does for a delta
    /// engine that a previous early exit emptied for good (the rebuild
    /// restores the counters, so later updates are incremental again).
    ///
    /// Returns the number of candidates gained by the update.
    pub fn apply_insertions(&mut self, db_after: &GraphDb, inserted: &[Triple]) -> usize {
        debug_assert!(
            inserted.iter().all(|t| db_after.contains_triple(*t)),
            "inserted triples must be present in db_after"
        );
        let before: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        let mut warm = false;
        if let Some(engine) = &mut self.engine {
            warm = engine.insert_triples(db_after, &self.soi, &self.config, inserted);
            if warm {
                self.solution = engine.solution();
            }
        }
        if !warm {
            match self.config.fixpoint {
                FixpointMode::Reevaluate => {
                    self.solution = solve(db_after, &self.soi, &self.config);
                }
                FixpointMode::DeltaCounting => {
                    let engine = DeltaSolver::new(db_after, &self.soi, &self.config);
                    self.solution = engine.solution();
                    self.engine = Some(engine);
                }
            }
        }
        self.warm = warm;
        let after: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        after.saturating_sub(before)
    }

    /// `true` iff the last update was served by the warm-start path
    /// (`false` before any update: the initial solve is cold).
    pub fn last_update_was_warm(&self) -> bool {
        self.warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_sois;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "q", "c").unwrap();
        b.add_triple("d", "p", "e").unwrap();
        b.add_triple("e", "q", "f").unwrap();
        b.add_triple("g", "p", "h").unwrap();
        b.finish()
    }

    const MODES: [FixpointMode; 2] = [FixpointMode::Reevaluate, FixpointMode::DeltaCounting];

    fn cfg(fixpoint: FixpointMode) -> SolverConfig {
        SolverConfig {
            early_exit: false,
            fixpoint,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn deletion_warm_start_matches_cold_solve() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let configs = [
            cfg(FixpointMode::Reevaluate),
            cfg(FixpointMode::DeltaCounting),
            SolverConfig {
                drain: crate::DrainStrategy::Sharded { threads: 4 },
                ..cfg(FixpointMode::DeltaCounting)
            },
        ];
        for config in configs {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), config.clone());

            // Delete the (d,p,e) edge: the d→e→f chain dies.
            let deleted: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) == "d").collect();
            let remaining: Vec<Triple> =
                db.triples().filter(|t| db.node_name(t.s) != "d").collect();
            let db_after = db.with_triples(&remaining).unwrap();

            let dropped = inc.apply_deletions(&db_after, &deleted);
            assert!(dropped > 0);
            assert!(inc.last_update_was_warm());
            let cold = solve(&db_after, &soi, &config);
            assert_eq!(
                inc.solution().chi,
                cold.chi,
                "warm == cold after deletion ({config:?})"
            );
        }
    }

    #[test]
    fn chained_deletions_stay_consistent() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));

            let mut triples: Vec<Triple> = db.triples().collect();
            // Remove one triple at a time; warm result must always equal
            // cold.
            while let Some(victim) = triples.pop() {
                let db_after = db.with_triples(&triples).unwrap();
                inc.apply_deletions(&db_after, &[victim]);
                let cold = solve(&db_after, &soi, &cfg(mode));
                assert_eq!(
                    inc.solution().chi,
                    cold.chi,
                    "after removing {victim:?} ({mode:?})"
                );
            }
            assert!(inc.solution().chi.iter().all(|c| c.none_set()));
        }
    }

    #[test]
    fn delta_mode_deletions_skip_reevaluation_work() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let mut inc =
            IncrementalDualSim::new(&db, soi, cfg(FixpointMode::DeltaCounting));
        let base = inc.solution().stats.clone();
        let victim: Triple = db.triples().next().unwrap();
        let remaining: Vec<Triple> = db.triples().skip(1).collect();
        inc.apply_deletions(&db.with_triples(&remaining).unwrap(), &[victim]);
        let after = inc.solution().stats.clone();
        // The update decremented counters and never multiplied a whole
        // inequality. Seeding work may grow only through the lazy first
        // touch of an inequality whose seeding was deferred at the cold
        // solve — never through a wholesale re-seed.
        assert!(after.counter_inits >= base.counter_inits);
        assert_eq!(
            after.lazy_seeds > base.lazy_seeds,
            after.counter_inits > base.counter_inits,
            "init growth is exactly lazy first-touch seeding"
        );
        assert_eq!(after.rows_ored, 0);
        assert_eq!(after.bits_probed, 0);
        assert!(after.counter_decrements > base.counter_decrements);
    }

    #[test]
    fn a_fresh_instance_reports_cold() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));
            assert!(
                !inc.last_update_was_warm(),
                "the initial solve is cold by definition ({mode:?})"
            );
        }
    }

    #[test]
    fn duplicated_deletions_decrement_once() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));
            let victim: Triple = db.triples().find(|t| db.node_name(t.s) == "d").unwrap();
            let remaining: Vec<Triple> = db.triples().filter(|&t| t != victim).collect();
            let db_after = db.with_triples(&remaining).unwrap();
            // The same triple listed three times must count once — a
            // double decrement would wrongly zero other candidates'
            // support and over-prune.
            inc.apply_deletions(&db_after, &[victim, victim, victim]);
            let cold = solve(&db_after, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
        }
    }

    fn mini_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_node("a", dualsim_graph::NodeKind::Iri).unwrap();
        b.add_node("b", dualsim_graph::NodeKind::Iri).unwrap();
        b.add_node("c", dualsim_graph::NodeKind::Iri).unwrap();
        b.intern_label("p");
        b.intern_label("q");
        b.add_triple("a", "p", "b").unwrap();
        b.finish()
    }

    #[test]
    fn insertions_track_cold_solves_in_both_modes() {
        let small = mini_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&small, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&small, soi.clone(), cfg(mode));
            assert!(
                inc.solution().chi.iter().all(|c| c.none_set()),
                "no q edge yet"
            );

            // Insert (b,q,c): the chain appears. The delta engine serves
            // this from its counters; re-evaluation must cold-solve.
            let inserted = Triple::new(
                small.node_id("b").unwrap(),
                small.label_id("q").unwrap(),
                small.node_id("c").unwrap(),
            );
            let mut triples: Vec<Triple> = small.triples().collect();
            triples.push(inserted);
            let db_after = small.with_triples(&triples).unwrap();
            let gained = inc.apply_insertions(&db_after, &[inserted]);
            assert!(gained > 0, "the chain a→b→c appeared ({mode:?})");
            assert_eq!(
                inc.last_update_was_warm(),
                mode == FixpointMode::DeltaCounting,
                "delta serves insertions incrementally, re-evaluation cold-solves"
            );
            let cold = solve(&db_after, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
            let x = soi.vars_for("x")[0];
            assert!(inc.solution().chi[x].get(small.node_id("a").unwrap() as usize));

            // And further deletions keep working on the same instance.
            let deleted: Vec<Triple> = db_after.triples().skip(1).collect();
            let kept: Vec<Triple> = db_after.triples().take(1).collect();
            let db_final = db_after.with_triples(&kept).unwrap();
            inc.apply_deletions(&db_final, &deleted);
            let cold = solve(&db_final, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
        }
    }

    #[test]
    fn delta_mode_insertions_skip_reevaluation_work() {
        let small = mini_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&small, &q).remove(0);
        let mut inc = IncrementalDualSim::new(&small, soi.clone(), cfg(FixpointMode::DeltaCounting));
        let base = inc.solution().stats.clone();
        let inserted = Triple::new(
            small.node_id("b").unwrap(),
            small.label_id("q").unwrap(),
            small.node_id("c").unwrap(),
        );
        let mut triples: Vec<Triple> = small.triples().collect();
        triples.push(inserted);
        let db_after = small.with_triples(&triples).unwrap();
        inc.apply_insertions(&db_after, &[inserted]);
        assert!(inc.last_update_was_warm());
        let after = inc.solution().stats.clone();
        // Zero wholesale re-seeds: the only evaluation-engine work is
        // whatever the cold solve already paid. Counter work grew only
        // by the inserted neighbourhood's increments (plus lazy first
        // touches of deferred inequalities) and the frontier was
        // re-admitted rather than recomputed.
        assert_eq!(after.rows_ored, 0, "no whole-inequality multiplies");
        assert_eq!(after.bits_probed, 0);
        assert_eq!(after.evaluations, base.evaluations, "no new evaluations");
        assert!(after.reactivations > 0, "the frontier was re-admitted");
        let final_count: usize = inc.solution().chi.iter().map(|c| c.count_ones()).sum();
        assert!(final_count > 0);
    }
}
