//! Incremental maintenance of the largest dual simulation under triple
//! deletions **and insertions**.
//!
//! The largest dual simulation is *monotone in the database edges*: any
//! dual simulation w.r.t. a sub-database is also one w.r.t. the original,
//! so deleting triples can only shrink the largest solution. The current
//! solution therefore remains a valid **starting relation** for the
//! fixpoint after deletions — the solver converges to the new largest
//! solution without re-seeding from `V₁ × V₂` (see
//! [`crate::solve_from`]), typically touching only the neighbourhood of
//! the deleted triples.
//!
//! Insertions are the hard direction: the solution can *grow*, so the
//! previous χ is no longer an upper bound and warm-starting the
//! shrink-only solver from it would miss every regained candidate. Under
//! [`FixpointMode::Reevaluate`] a cold re-solve is the only sound
//! option (the classic split in incremental simulation maintenance, cf.
//! Fan et al.'s incremental graph pattern matching line of work the
//! paper builds on). Under [`FixpointMode::DeltaCounting`], however,
//! the persistent support counters tell exactly *which* candidates may
//! return: an inserted triple increments the counters of the
//! inequalities it feeds, and the **re-activation frontier** — the
//! candidates whose support went **0→1**, plus the inserted endpoints —
//! is optimistically re-admitted into χ and cascaded to closure; the
//! standard removal drain then culls the over-approximation. Both
//! update directions thus touch only the changed triples'
//! neighbourhood, and neither ever re-evaluates an inequality
//! wholesale.
//!
//! Deletions under [`FixpointMode::DeltaCounting`] are fed *directly
//! into the delta worklist* (one counter decrement per deleted triple
//! and affected inequality) instead of re-running the solver over the
//! previous χ — the fully incremental path the `ablation_fixpoint`
//! benchmark measures. The configured [`crate::DrainStrategy`] applies
//! to maintenance too: under `DrainStrategy::Sharded` every update's
//! cascade is drained in parallel rounds, with χ and all work counters
//! bit-identical to the sequential drain.

use crate::delta::DeltaSolver;
use crate::durability::{self, Durability, DurabilityOptions, Recovered, SnapshotState};
use crate::{solve, solve_from, FixpointMode, MaintainError, Soi, Solution, SolverConfig};
use dualsim_graph::{GraphDb, Triple};

/// A maintained largest-solution instance for one SOI.
#[derive(Debug)]
pub struct IncrementalDualSim {
    soi: Soi,
    config: SolverConfig,
    solution: Solution,
    /// Persistent delta engine (support counters included); `Some` iff
    /// the configuration selects [`FixpointMode::DeltaCounting`].
    engine: Option<DeltaSolver>,
    /// `true` iff the last update was served incrementally.
    warm: bool,
    /// Write-ahead log + snapshot handle; `Some` iff the instance was
    /// created with [`Self::new_durable`] or by [`Self::recover`].
    durability: Option<Durability>,
    /// Committed update count: 0 after the initial solve, +1 per served
    /// batch (warm or cold). WAL record ids — each committed batch logs
    /// exactly one record carrying this epoch.
    epoch: u64,
}

impl Clone for IncrementalDualSim {
    /// Clones the resident state only: the clone is *not* durable (a
    /// WAL file handle cannot be shared by two writers). It continues
    /// from the same epoch with durability detached; attach a fresh
    /// directory via [`Self::new_durable`] if the copy must persist.
    fn clone(&self) -> Self {
        IncrementalDualSim {
            soi: self.soi.clone(),
            config: self.config.clone(),
            solution: self.solution.clone(),
            engine: self.engine.clone(),
            warm: self.warm,
            durability: None,
            epoch: self.epoch,
        }
    }
}

impl IncrementalDualSim {
    /// Solves from scratch and starts maintenance.
    pub fn new(db: &GraphDb, soi: Soi, config: SolverConfig) -> Self {
        let (solution, engine) = match config.fixpoint {
            FixpointMode::Reevaluate => (solve(db, &soi, &config), None),
            FixpointMode::DeltaCounting => {
                let engine = DeltaSolver::new(db, &soi, &config);
                (engine.solution(), Some(engine))
            }
        };
        IncrementalDualSim {
            soi,
            config,
            solution,
            engine,
            // The initial solve is a cold solve by definition; `warm`
            // reports on *updates*, of which there have been none.
            warm: false,
            durability: None,
            epoch: 0,
        }
    }

    /// Solves from scratch and starts **durable** maintenance: a
    /// write-ahead log is created in `opts.dir` (any previous WAL or
    /// snapshots there are discarded — use [`Self::recover`] to resume
    /// an existing instance instead), every committed batch appends one
    /// checksummed record before `apply_insertions`/`apply_deletions`
    /// returns, and an initial epoch-0 snapshot of the full resident
    /// state is written so recovery always has a base to replay from.
    ///
    /// # Errors
    ///
    /// [`MaintainError::Io`] if the durability directory, the WAL, or
    /// the initial snapshot cannot be written.
    pub fn new_durable(
        db: &GraphDb,
        soi: Soi,
        config: SolverConfig,
        opts: &DurabilityOptions,
    ) -> Result<Self, MaintainError> {
        let mut sim = Self::new(db, soi, config);
        sim.durability = Some(Durability::create(opts)?);
        sim.snapshot_now(db)?;
        Ok(sim)
    }

    /// Recovers a durable instance from its directory: loads the newest
    /// snapshot whose checksum verifies, truncates any torn WAL tail,
    /// replays the WAL records past the snapshot's epoch through the
    /// ordinary maintenance paths, and resumes warm with durability
    /// re-attached. The replay is deterministic: the recovered χ and
    /// logical [`crate::SolveStats`] are bit-identical to an
    /// uninterrupted run over the same committed batch prefix.
    ///
    /// # Errors
    ///
    /// [`MaintainError::Io`] if the directory cannot be read, and
    /// [`MaintainError::Corrupt`] if no snapshot passes validation or
    /// the WAL cannot extend any verified snapshot gap-free.
    pub fn recover(opts: &DurabilityOptions) -> Result<Recovered, MaintainError> {
        durability::recover(opts)
    }

    /// Rebuilds an instance from decoded snapshot state (the recovery
    /// path; durability is attached separately once the WAL tail has
    /// been replayed).
    pub(crate) fn from_restored(
        soi: Soi,
        config: SolverConfig,
        engine: Option<DeltaSolver>,
        solution: Solution,
        warm: bool,
        epoch: u64,
    ) -> Self {
        IncrementalDualSim {
            soi,
            config,
            solution,
            engine,
            warm,
            durability: None,
            epoch,
        }
    }

    /// Re-attaches the WAL of a recovered instance (called by
    /// [`durability::recover`] after the replay, so the replayed batches
    /// are not appended a second time).
    pub(crate) fn attach_recovered(&mut self, durability: Durability) {
        self.durability = Some(durability);
    }

    /// The committed update count: 0 after the initial solve, +1 per
    /// batch served by `apply_insertions`/`apply_deletions`. Doubles as
    /// the WAL record id of the last committed batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` iff this instance persists its updates to a write-ahead
    /// log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Writes a checksummed snapshot of the full resident state (graph,
    /// SOI, configuration, χ, support counters, statistics) to the
    /// durability directory, atomically. A no-op without durability.
    /// Older snapshots are kept: recovery falls back to them (replaying
    /// a longer WAL tail) if the newest fails its checksum.
    ///
    /// # Errors
    ///
    /// [`MaintainError::Io`] if the snapshot cannot be written; the
    /// resident state and the WAL are unaffected, so the failure costs
    /// only recovery time, never committed data.
    pub fn snapshot_now(&mut self, db: &GraphDb) -> Result<(), MaintainError> {
        let Some(durability) = &mut self.durability else {
            return Ok(());
        };
        let meta = durability.meta().to_string();
        let engine_state = self.engine.as_ref().map(DeltaSolver::export_state);
        let solution = if engine_state.is_some() {
            None
        } else {
            Some((&self.solution.chi[..], &self.solution.stats))
        };
        let state = SnapshotState {
            epoch: self.epoch,
            meta: &meta,
            config: &self.config,
            db,
            soi: &self.soi,
            warm: self.warm,
            engine: engine_state,
            solution,
        };
        durability.write_snapshot(&state)
    }

    /// Applies the automatic snapshot policy
    /// ([`DurabilityOptions::snapshot_every`]) after a committed batch.
    fn snapshot_if_due(&mut self, db: &GraphDb) -> Result<(), MaintainError> {
        let Some(every) = self.durability.as_ref().and_then(Durability::snapshot_every) else {
            return Ok(());
        };
        if self.epoch.is_multiple_of(every.max(1)) {
            self.snapshot_now(db)
        } else {
            Ok(())
        }
    }

    /// The maintained solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The maintained system.
    pub fn soi(&self) -> &Soi {
        &self.soi
    }

    /// The solver configuration this instance maintains under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Re-establishes the largest solution after triples were **deleted**
    /// (`db_after` must be the old database minus `deleted`; duplicates
    /// within the batch are ignored).
    ///
    /// Under [`FixpointMode::Reevaluate`] this warm-starts the solver
    /// from the previous solution; under [`FixpointMode::DeltaCounting`]
    /// the deletions are pushed straight into the persistent delta
    /// queue, touching only the counters the deleted triples supported.
    ///
    /// Returns the number of candidates dropped by the update.
    ///
    /// # Errors
    ///
    /// The delta engine runs each batch inside an update epoch, so an
    /// erroring batch was rolled back to the pre-batch state before the
    /// error surfaces here. Degradations the engine can recover from on
    /// its own — a poisoned engine ([`MaintainError::Poisoned`]) or a
    /// drain-budget abort ([`MaintainError::BudgetExceeded`]) — are
    /// handled *transparently*: the update is served by a cold rebuild
    /// instead (`last_update_was_warm` reports `false`, the robustness
    /// counters carry over) and no error is returned. Only errors the
    /// caller must act on propagate: an out-of-vocabulary triple in the
    /// batch, an injected failpoint under the chaos harness, or — for a
    /// durable instance — a failed WAL append ([`MaintainError::Io`]),
    /// which rolls the in-memory batch back with it (a batch commits
    /// iff its WAL record is fully on disk). The one exception to
    /// "error ⟹ rolled back" is a failed *snapshot* after the batch
    /// committed: the error surfaces, but the batch is already durable
    /// in the WAL and [`Self::epoch`] has advanced past it.
    pub fn apply_deletions(
        &mut self,
        db_after: &GraphDb,
        deleted: &[Triple],
    ) -> Result<usize, MaintainError> {
        // Out-of-vocabulary triples are a recoverable input error the
        // engine reports itself — skip them here so the consistency
        // assert never indexes past the interned range.
        debug_assert!(
            deleted
                .iter()
                .all(|t| !in_vocabulary(db_after, t) || !db_after.contains_triple(*t)),
            "deleted triples must be absent from db_after"
        );
        let before: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        let epoch_next = self.epoch + 1;
        if let Some(engine) = &mut self.engine {
            // The WAL append runs as the epoch's commit hook, between a
            // successful batch body and the commit: if it errors the
            // batch rolls back with it, so memory and log agree.
            let durability = &mut self.durability;
            let mut hook = || wal_append(durability, epoch_next, false, deleted);
            match engine.retract_triples_durable(
                db_after,
                &self.soi,
                &self.config,
                deleted,
                Some(&mut hook),
            ) {
                Ok(()) => {
                    self.solution = engine.solution();
                    self.warm = true;
                }
                Err(e) if Self::degrades_to_cold(&e) => {
                    // Served by a cold rebuild instead: log the record
                    // *before* rebuilding, so a failed append leaves
                    // the batch unserved rather than unlogged.
                    wal_append(&mut self.durability, epoch_next, false, deleted)?;
                    self.rebuild_cold(db_after);
                }
                Err(e) => return Err(e),
            }
        } else {
            wal_append(&mut self.durability, epoch_next, false, deleted)?;
            // The previous χ is an upper bound of the new largest
            // solution; early exit stays valid because emptiness is
            // monotone too.
            let initial = self.solution.chi.clone();
            self.solution = solve_from(db_after, &self.soi, &self.config, initial);
            self.warm = true;
        }
        self.epoch = epoch_next;
        self.snapshot_if_due(db_after)?;
        let after: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        Ok(before.saturating_sub(after))
    }

    /// Re-establishes the largest solution after triples were
    /// **inserted** (`db_after` must be the old database plus
    /// `inserted`; a triple already present before the update must not
    /// be listed, duplicates within the batch are ignored).
    ///
    /// Under [`FixpointMode::DeltaCounting`] the insertions are walked
    /// against the persistent support counters: the candidates whose
    /// support went 0→1 — plus the inserted endpoints — form the
    /// re-activation frontier, are optimistically re-admitted, and the
    /// over-approximation is culled by the standard removal drain, so
    /// the update costs work proportional to the inserted triples'
    /// neighbourhood. Under [`FixpointMode::Reevaluate`] the previous χ
    /// is no upper bound any more (the solution can grow), so the
    /// update falls back to a cold re-solve — as it does for a delta
    /// engine that a previous early exit emptied for good (the rebuild
    /// restores the counters, so later updates are incremental again).
    ///
    /// Returns the number of candidates gained by the update.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::apply_deletions`]: engine-internal
    /// degradations (poisoned engine, drain-budget abort) are served by
    /// a transparent cold rebuild, while out-of-vocabulary batches and
    /// injected failpoints roll back and propagate.
    pub fn apply_insertions(
        &mut self,
        db_after: &GraphDb,
        inserted: &[Triple],
    ) -> Result<usize, MaintainError> {
        // See `apply_deletions` on the vocabulary guard.
        debug_assert!(
            inserted
                .iter()
                .all(|t| !in_vocabulary(db_after, t) || db_after.contains_triple(*t)),
            "inserted triples must be present in db_after"
        );
        let before: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        let epoch_next = self.epoch + 1;
        let mut warm = false;
        if let Some(engine) = &mut self.engine {
            // See `apply_deletions`: the WAL append is the commit hook.
            let durability = &mut self.durability;
            let mut hook = || wal_append(durability, epoch_next, true, inserted);
            match engine.insert_triples_durable(
                db_after,
                &self.soi,
                &self.config,
                inserted,
                Some(&mut hook),
            ) {
                Ok(w) => warm = w,
                Err(e) if Self::degrades_to_cold(&e) => {
                    wal_append(&mut self.durability, epoch_next, true, inserted)?;
                    self.rebuild_cold(db_after);
                    self.epoch = epoch_next;
                    self.snapshot_if_due(db_after)?;
                    let after: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
                    return Ok(after.saturating_sub(before));
                }
                Err(e) => return Err(e),
            }
            if warm {
                self.solution = engine.solution();
            }
        }
        if !warm {
            // Cold serving paths commit without running the engine's
            // hook (a dead engine declines insertions before opening an
            // epoch; re-evaluation has no engine at all) — log directly,
            // before mutating, under the same append-then-serve order.
            wal_append(&mut self.durability, epoch_next, true, inserted)?;
            match self.config.fixpoint {
                FixpointMode::Reevaluate => {
                    self.solution = solve(db_after, &self.soi, &self.config);
                }
                FixpointMode::DeltaCounting => {
                    self.rebuild_cold(db_after);
                }
            }
        }
        self.warm = warm;
        self.epoch = epoch_next;
        self.snapshot_if_due(db_after)?;
        let after: usize = self.solution.chi.iter().map(|c| c.count_ones()).sum();
        Ok(after.saturating_sub(before))
    }

    /// `true` iff the last update was served by the warm-start path
    /// (`false` before any update: the initial solve is cold).
    pub fn last_update_was_warm(&self) -> bool {
        self.warm
    }

    /// `true` iff the resident delta engine is poisoned (an aborted
    /// batch without a trustworthy rollback). The next update heals it
    /// transparently through a cold rebuild; this accessor only exists
    /// so harnesses can observe the degradation in between.
    pub fn engine_is_poisoned(&self) -> bool {
        self.engine.as_ref().is_some_and(DeltaSolver::is_poisoned)
    }

    /// The live maintenance statistics. Prefers the resident delta
    /// engine's counters over the solution snapshot: after a rolled-back
    /// batch the snapshot still shows the pre-batch stats, while the
    /// engine has already recorded the rollback in its robustness
    /// counters. Falls back to the solution stats when no delta engine
    /// is resident ([`FixpointMode::Reevaluate`]).
    pub fn maintenance_stats(&self) -> &crate::SolveStats {
        match &self.engine {
            Some(engine) => engine.stats(),
            None => &self.solution.stats,
        }
    }

    /// The errors [`Self::apply_insertions`] / [`Self::apply_deletions`]
    /// absorb by degrading to a cold rebuild instead of propagating:
    /// the engine poisoned itself (now or in an earlier batch), so the
    /// resident state is gone either way and a fresh solve is the
    /// serving path. Input errors and injected faults stay visible to
    /// the caller.
    fn degrades_to_cold(e: &MaintainError) -> bool {
        matches!(
            e,
            MaintainError::Poisoned | MaintainError::BudgetExceeded { .. }
        )
    }

    /// Replaces the resident engine (and solution) with a cold solve of
    /// `db_after`, carrying the robustness counters across the rebuild
    /// so `rollbacks`/`poisonings`/`budget_aborts` remain cumulative
    /// over the instance's lifetime. Serves both the dead-engine
    /// insertion fallback and the poisoned-engine degradation path.
    fn rebuild_cold(&mut self, db_after: &GraphDb) {
        // The robustness counters live in the *engine's* stats — after
        // an abort they are ahead of the last published solution
        // snapshot (the abort itself bumped them).
        let prev_stats = match &self.engine {
            Some(engine) => engine.stats().clone(),
            None => self.solution.stats.clone(),
        };
        let mut engine = DeltaSolver::new(db_after, &self.soi, &self.config);
        engine.carry_robustness_from(&prev_stats);
        self.solution = engine.solution();
        self.engine = Some(engine);
        self.warm = false;
    }
}

/// Appends one update record to the WAL, if durability is attached. A
/// free function (not a method) so the apply paths can capture the
/// `durability` field in a commit-hook closure while the `engine` field
/// is mutably borrowed — the borrows are disjoint.
fn wal_append(
    durability: &mut Option<Durability>,
    epoch: u64,
    insert: bool,
    batch: &[Triple],
) -> Result<(), MaintainError> {
    match durability {
        Some(d) => d.append(epoch, insert, batch),
        None => Ok(()),
    }
}

/// `true` iff the triple's node and label ids lie inside the database's
/// interned vocabulary (the debug consistency asserts must not index
/// past it — out-of-vocabulary triples are reported, not assumed away).
/// Not `cfg(debug_assertions)`-gated: `debug_assert!` bodies are
/// type-checked in release builds too, where the optimizer drops the
/// dead call.
pub(crate) fn in_vocabulary(db: &GraphDb, t: &Triple) -> bool {
    (t.s as usize) < db.num_nodes()
        && (t.o as usize) < db.num_nodes()
        && (t.p as usize) < db.num_labels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_sois;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "q", "c").unwrap();
        b.add_triple("d", "p", "e").unwrap();
        b.add_triple("e", "q", "f").unwrap();
        b.add_triple("g", "p", "h").unwrap();
        b.finish()
    }

    const MODES: [FixpointMode; 2] = [FixpointMode::Reevaluate, FixpointMode::DeltaCounting];

    fn cfg(fixpoint: FixpointMode) -> SolverConfig {
        SolverConfig {
            early_exit: false,
            fixpoint,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn deletion_warm_start_matches_cold_solve() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let configs = [
            cfg(FixpointMode::Reevaluate),
            cfg(FixpointMode::DeltaCounting),
            SolverConfig {
                drain: crate::DrainStrategy::Sharded { threads: 4 },
                ..cfg(FixpointMode::DeltaCounting)
            },
        ];
        for config in configs {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), config.clone());

            // Delete the (d,p,e) edge: the d→e→f chain dies.
            let deleted: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) == "d").collect();
            let remaining: Vec<Triple> =
                db.triples().filter(|t| db.node_name(t.s) != "d").collect();
            let db_after = db.with_triples(&remaining).unwrap();

            let dropped = inc.apply_deletions(&db_after, &deleted).unwrap();
            assert!(dropped > 0);
            assert!(inc.last_update_was_warm());
            let cold = solve(&db_after, &soi, &config);
            assert_eq!(
                inc.solution().chi,
                cold.chi,
                "warm == cold after deletion ({config:?})"
            );
        }
    }

    #[test]
    fn chained_deletions_stay_consistent() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));

            let mut triples: Vec<Triple> = db.triples().collect();
            // Remove one triple at a time; warm result must always equal
            // cold.
            while let Some(victim) = triples.pop() {
                let db_after = db.with_triples(&triples).unwrap();
                inc.apply_deletions(&db_after, &[victim]).unwrap();
                let cold = solve(&db_after, &soi, &cfg(mode));
                assert_eq!(
                    inc.solution().chi,
                    cold.chi,
                    "after removing {victim:?} ({mode:?})"
                );
            }
            assert!(inc.solution().chi.iter().all(|c| c.none_set()));
        }
    }

    #[test]
    fn delta_mode_deletions_skip_reevaluation_work() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let mut inc =
            IncrementalDualSim::new(&db, soi, cfg(FixpointMode::DeltaCounting));
        let base = inc.solution().stats.clone();
        let victim: Triple = db.triples().next().unwrap();
        let remaining: Vec<Triple> = db.triples().skip(1).collect();
        inc.apply_deletions(&db.with_triples(&remaining).unwrap(), &[victim])
            .unwrap();
        let after = inc.solution().stats.clone();
        // The update decremented counters and never multiplied a whole
        // inequality. Seeding work may grow only through the lazy first
        // touch of an inequality whose seeding was deferred at the cold
        // solve — never through a wholesale re-seed.
        assert!(after.counter_inits >= base.counter_inits);
        assert_eq!(
            after.lazy_seeds > base.lazy_seeds,
            after.counter_inits > base.counter_inits,
            "init growth is exactly lazy first-touch seeding"
        );
        assert_eq!(after.rows_ored, 0);
        assert_eq!(after.bits_probed, 0);
        assert!(after.counter_decrements > base.counter_decrements);
    }

    #[test]
    fn a_fresh_instance_reports_cold() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));
            assert!(
                !inc.last_update_was_warm(),
                "the initial solve is cold by definition ({mode:?})"
            );
        }
    }

    #[test]
    fn duplicated_deletions_decrement_once() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), cfg(mode));
            let victim: Triple = db.triples().find(|t| db.node_name(t.s) == "d").unwrap();
            let remaining: Vec<Triple> = db.triples().filter(|&t| t != victim).collect();
            let db_after = db.with_triples(&remaining).unwrap();
            // The same triple listed three times must count once — a
            // double decrement would wrongly zero other candidates'
            // support and over-prune.
            inc.apply_deletions(&db_after, &[victim, victim, victim])
                .unwrap();
            let cold = solve(&db_after, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
        }
    }

    fn mini_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_node("a", dualsim_graph::NodeKind::Iri).unwrap();
        b.add_node("b", dualsim_graph::NodeKind::Iri).unwrap();
        b.add_node("c", dualsim_graph::NodeKind::Iri).unwrap();
        b.intern_label("p");
        b.intern_label("q");
        b.add_triple("a", "p", "b").unwrap();
        b.finish()
    }

    #[test]
    fn insertions_track_cold_solves_in_both_modes() {
        let small = mini_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&small, &q).remove(0);
        for mode in MODES {
            let mut inc = IncrementalDualSim::new(&small, soi.clone(), cfg(mode));
            assert!(
                inc.solution().chi.iter().all(|c| c.none_set()),
                "no q edge yet"
            );

            // Insert (b,q,c): the chain appears. The delta engine serves
            // this from its counters; re-evaluation must cold-solve.
            let inserted = Triple::new(
                small.node_id("b").unwrap(),
                small.label_id("q").unwrap(),
                small.node_id("c").unwrap(),
            );
            let mut triples: Vec<Triple> = small.triples().collect();
            triples.push(inserted);
            let db_after = small.with_triples(&triples).unwrap();
            let gained = inc.apply_insertions(&db_after, &[inserted]).unwrap();
            assert!(gained > 0, "the chain a→b→c appeared ({mode:?})");
            assert_eq!(
                inc.last_update_was_warm(),
                mode == FixpointMode::DeltaCounting,
                "delta serves insertions incrementally, re-evaluation cold-solves"
            );
            let cold = solve(&db_after, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
            let x = soi.vars_for("x")[0];
            assert!(inc.solution().chi[x].get(small.node_id("a").unwrap() as usize));

            // And further deletions keep working on the same instance.
            let deleted: Vec<Triple> = db_after.triples().skip(1).collect();
            let kept: Vec<Triple> = db_after.triples().take(1).collect();
            let db_final = db_after.with_triples(&kept).unwrap();
            inc.apply_deletions(&db_final, &deleted).unwrap();
            let cold = solve(&db_final, &soi, &cfg(mode));
            assert_eq!(inc.solution().chi, cold.chi, "{mode:?}");
        }
    }

    #[test]
    fn delta_mode_insertions_skip_reevaluation_work() {
        let small = mini_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&small, &q).remove(0);
        let mut inc = IncrementalDualSim::new(&small, soi.clone(), cfg(FixpointMode::DeltaCounting));
        let base = inc.solution().stats.clone();
        let inserted = Triple::new(
            small.node_id("b").unwrap(),
            small.label_id("q").unwrap(),
            small.node_id("c").unwrap(),
        );
        let mut triples: Vec<Triple> = small.triples().collect();
        triples.push(inserted);
        let db_after = small.with_triples(&triples).unwrap();
        inc.apply_insertions(&db_after, &[inserted]).unwrap();
        assert!(inc.last_update_was_warm());
        let after = inc.solution().stats.clone();
        // Zero wholesale re-seeds: the only evaluation-engine work is
        // whatever the cold solve already paid. Counter work grew only
        // by the inserted neighbourhood's increments (plus lazy first
        // touches of deferred inequalities) and the frontier was
        // re-admitted rather than recomputed.
        assert_eq!(after.rows_ored, 0, "no whole-inequality multiplies");
        assert_eq!(after.bits_probed, 0);
        assert_eq!(after.evaluations, base.evaluations, "no new evaluations");
        assert!(after.reactivations > 0, "the frontier was re-admitted");
        let final_count: usize = inc.solution().chi.iter().map(|c| c.count_ones()).sum();
        assert!(final_count > 0);
    }

    use crate::failpoints;

    #[test]
    fn failpoint_errors_propagate_and_leave_the_solution_unchanged() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let mut inc = IncrementalDualSim::new(&db, soi, cfg(FixpointMode::DeltaCounting));
        let pre = inc.solution().clone();
        let deleted: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) != "d").collect();
        let db_after = db.with_triples(&remaining).unwrap();
        failpoints::disarm_all();
        failpoints::arm("pre-drain", 0);
        assert_eq!(
            inc.apply_deletions(&db_after, &deleted),
            Err(MaintainError::Failpoint { point: "pre-drain" })
        );
        failpoints::disarm_all();
        assert_eq!(inc.solution().chi, pre.chi, "rolled back, not half-applied");
        assert!(!inc.engine_is_poisoned());
        // Retrying the same batch succeeds and matches a cold solve.
        let dropped = inc.apply_deletions(&db_after, &deleted).unwrap();
        assert!(dropped > 0);
        assert!(inc.last_update_was_warm());
        assert_eq!(
            inc.solution().chi,
            solve(&db_after, &inc.soi().clone(), &cfg(FixpointMode::DeltaCounting)).chi
        );
        assert_eq!(inc.solution().stats.rollbacks, 1);
    }

    #[test]
    fn budget_exhaustion_degrades_to_a_transparent_cold_rebuild() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let config = SolverConfig {
            drain_budget: Some(0),
            ..cfg(FixpointMode::DeltaCounting)
        };
        let mut inc = IncrementalDualSim::new(&db, soi.clone(), config.clone());
        let deleted: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) != "d").collect();
        let db_after = db.with_triples(&remaining).unwrap();
        // The engine aborts on budget, poisons itself — and the update
        // is still served, by the cold rebuild.
        let dropped = inc.apply_deletions(&db_after, &deleted).unwrap();
        assert!(dropped > 0);
        assert!(!inc.last_update_was_warm(), "served cold, not warm");
        assert!(!inc.engine_is_poisoned(), "the rebuild healed the engine");
        assert_eq!(inc.solution().chi, solve(&db_after, &soi, &config).chi);
        // The degradation is observable in the carried counters.
        let stats = &inc.solution().stats;
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.budget_aborts, 1);
        assert_eq!(stats.poisonings, 1);
        // The rebuilt engine has fresh counters: later updates are warm
        // again (the cold solve ran without a budget — it is not a
        // maintenance drain).
        let mut triples = remaining.clone();
        let victim = triples.pop().unwrap();
        let db_final = db.with_triples(&triples).unwrap();
        inc.apply_deletions(&db_final, &[victim]).unwrap();
        assert_eq!(inc.solution().chi, solve(&db_final, &soi, &config).chi);
    }

    #[test]
    fn a_poisoned_engine_heals_on_the_next_update() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let config = cfg(FixpointMode::DeltaCounting);
        let mut inc = IncrementalDualSim::new(&db, soi.clone(), config.clone());
        let deleted: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> = db.triples().filter(|t| db.node_name(t.s) != "d").collect();
        let db_after = db.with_triples(&remaining).unwrap();
        // A failing rollback (both the batch and its rollback crash)
        // poisons the resident engine.
        failpoints::disarm_all();
        failpoints::arm("pre-drain", 0);
        failpoints::arm("rollback", 0);
        assert_eq!(
            inc.apply_deletions(&db_after, &deleted),
            Err(MaintainError::Failpoint { point: "pre-drain" })
        );
        failpoints::disarm_all();
        assert!(inc.engine_is_poisoned());
        // The next update heals transparently: Ok, served cold, correct.
        let dropped = inc.apply_deletions(&db_after, &deleted).unwrap();
        assert!(dropped > 0);
        assert!(!inc.last_update_was_warm());
        assert!(!inc.engine_is_poisoned());
        assert_eq!(inc.solution().chi, solve(&db_after, &soi, &config).chi);
        assert_eq!(inc.solution().stats.poisonings, 1, "carried across rebuild");
        assert_eq!(inc.solution().stats.rollbacks, 0, "the rollback failed");
    }

    use crate::DurabilityOptions;

    /// A unique scratch directory per test invocation — the container
    /// has no tempfile crate, so process id + a static counter stand in.
    fn tmpdir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dualsim-durability-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_updates_recover_bit_identical() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        for mode in MODES {
            let dir = tmpdir();
            let opts = DurabilityOptions::new(&dir);
            let mut durable =
                IncrementalDualSim::new_durable(&db0, soi.clone(), cfg(mode), &opts).unwrap();
            let mut plain = IncrementalDualSim::new(&db0, soi.clone(), cfg(mode));

            // Batch 1: delete the d-chain. Batch 2: insert it back.
            let batch: Vec<Triple> =
                db0.triples().filter(|t| db0.node_name(t.s) == "d").collect();
            let remaining: Vec<Triple> =
                db0.triples().filter(|t| db0.node_name(t.s) != "d").collect();
            let db1 = db0.with_triples(&remaining).unwrap();
            durable.apply_deletions(&db1, &batch).unwrap();
            plain.apply_deletions(&db1, &batch).unwrap();
            durable.apply_insertions(&db0, &batch).unwrap();
            plain.apply_insertions(&db0, &batch).unwrap();
            assert_eq!(durable.epoch(), 2);
            assert!(durable.is_durable() && !plain.is_durable());
            drop(durable); // "crash": only the durability directory survives

            let rec = IncrementalDualSim::recover(&opts).unwrap();
            assert_eq!(rec.report.snapshot_epoch, 0, "only the initial snapshot");
            assert_eq!(rec.report.records_replayed, 2);
            assert_eq!(rec.report.torn_bytes, 0);
            assert_eq!(rec.report.epoch, 2);
            assert_eq!(rec.sim.epoch(), 2);
            assert_eq!(rec.sim.solution().chi, plain.solution().chi, "{mode:?}");
            assert_eq!(
                rec.sim.maintenance_stats().logical(),
                plain.maintenance_stats().logical(),
                "recovered logical stats are bit-identical ({mode:?})"
            );
            assert_eq!(rec.db.num_triples(), db0.num_triples());
            // The recovered instance keeps serving durable updates.
            let mut rec_sim = rec.sim;
            rec_sim.apply_deletions(&db1, &batch).unwrap();
            assert_eq!(rec_sim.epoch(), 3);
            assert_eq!(
                rec_sim.solution().chi,
                solve(&db1, &soi, &cfg(mode)).chi,
                "{mode:?}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn recovery_starts_from_the_newest_snapshot() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        let dir = tmpdir();
        let mut opts = DurabilityOptions::new(&dir);
        opts.snapshot_every = Some(1);
        opts.meta = "branch 0 of { ?x p ?y }".to_string();
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let mut triples: Vec<Triple> = db0.triples().collect();
        for _ in 0..3 {
            let victim = triples.pop().unwrap();
            let db_after = db0.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
        }
        drop(durable);
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        assert_eq!(rec.report.snapshot_epoch, 3, "snapshot after every batch");
        assert_eq!(rec.report.records_replayed, 0);
        assert_eq!(rec.meta, "branch 0 of { ?x p ?y }", "meta round-trips");
        let db_after = db0.with_triples(&triples).unwrap();
        assert_eq!(
            rec.sim.solution().chi,
            solve(&db_after, &soi, &cfg(FixpointMode::DeltaCounting)).chi
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_retention_prunes_old_files_and_recovery_falls_back_across_retained() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        let dir = tmpdir();
        let mut opts = DurabilityOptions::new(&dir);
        opts.snapshot_every = Some(1);
        assert_eq!(opts.keep_snapshots, 2, "default retention window");
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let mut triples: Vec<Triple> = db0.triples().collect();
        for _ in 0..4 {
            let victim = triples.pop().unwrap();
            let db_after = db0.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
        }
        drop(durable);
        // Five snapshots were written (epochs 0..=4); the GC kept the
        // newest two.
        let snapshot_epochs = |dir: &std::path::Path| -> Vec<u64> {
            let mut epochs: Vec<u64> = std::fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| {
                    let name = e.unwrap().file_name().to_string_lossy().into_owned();
                    name.strip_prefix("snapshot-")?
                        .strip_suffix(".snap")?
                        .parse()
                        .ok()
                })
                .collect();
            epochs.sort_unstable();
            epochs
        };
        assert_eq!(snapshot_epochs(&dir), vec![3, 4]);
        // Corrupt the newest retained snapshot: recovery must fall back
        // across the retention window to the older retained one and
        // replay the WAL tail past it.
        let newest = dir.join(format!("snapshot-{:020}.snap", 4));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        assert_eq!(rec.report.snapshots_skipped, 1);
        assert_eq!(rec.report.snapshot_epoch, 3);
        assert_eq!(rec.report.records_replayed, 1);
        assert_eq!(rec.report.epoch, 4);
        let db_after = db0.with_triples(&triples).unwrap();
        assert_eq!(
            rec.sim.solution().chi,
            solve(&db_after, &soi, &cfg(FixpointMode::DeltaCounting)).chi
        );
        std::fs::remove_dir_all(&dir).ok();

        // keep_snapshots = 0 disables pruning entirely.
        let dir = tmpdir();
        let mut opts = DurabilityOptions::new(&dir);
        opts.snapshot_every = Some(1);
        opts.keep_snapshots = 0;
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let mut triples: Vec<Triple> = db0.triples().collect();
        for _ in 0..3 {
            let victim = triples.pop().unwrap();
            let db_after = db0.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
        }
        drop(durable);
        assert_eq!(snapshot_epochs(&dir), vec![0, 1, 2, 3], "all kept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_torn_wal_tail_is_truncated_to_the_last_committed_record() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        let dir = tmpdir();
        let opts = DurabilityOptions::new(&dir);
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let batch: Vec<Triple> = db0.triples().filter(|t| db0.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> =
            db0.triples().filter(|t| db0.node_name(t.s) != "d").collect();
        let db1 = db0.with_triples(&remaining).unwrap();
        durable.apply_deletions(&db1, &batch).unwrap();
        drop(durable);
        // A crash mid-append leaves a torn frame behind the committed
        // records; recovery must land on the last committed epoch.
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        wal.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(wal);
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        assert_eq!(rec.report.torn_bytes, 3);
        assert_eq!(rec.report.records_replayed, 1);
        assert_eq!(rec.report.epoch, 1);
        assert_eq!(
            rec.sim.solution().chi,
            solve(&db1, &soi, &cfg(FixpointMode::DeltaCounting)).chi
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_failed_wal_append_rolls_back_the_batch() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        let dir = tmpdir();
        let opts = DurabilityOptions::new(&dir);
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let pre = durable.solution().clone();
        let batch: Vec<Triple> = db0.triples().filter(|t| db0.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> =
            db0.triples().filter(|t| db0.node_name(t.s) != "d").collect();
        let db1 = db0.with_triples(&remaining).unwrap();
        failpoints::disarm_all();
        failpoints::arm("wal-append", 0);
        assert_eq!(
            durable.apply_deletions(&db1, &batch),
            Err(MaintainError::Failpoint { point: "wal-append" })
        );
        failpoints::disarm_all();
        assert_eq!(durable.solution().chi, pre.chi, "rolled back with the log");
        assert_eq!(durable.epoch(), 0, "the batch never committed");
        assert!(!durable.engine_is_poisoned());
        // Retrying succeeds, and the WAL holds exactly one record.
        durable.apply_deletions(&db1, &batch).unwrap();
        assert_eq!(durable.epoch(), 1);
        drop(durable);
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        assert_eq!(rec.report.records_replayed, 1);
        assert_eq!(
            rec.sim.solution().chi,
            solve(&db1, &soi, &cfg(FixpointMode::DeltaCounting)).chi
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_failed_snapshot_leaves_the_batch_committed_and_durable() {
        let db0 = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db0, &q).remove(0);
        let dir = tmpdir();
        let mut opts = DurabilityOptions::new(&dir);
        opts.snapshot_every = Some(1);
        let mut durable = IncrementalDualSim::new_durable(
            &db0,
            soi.clone(),
            cfg(FixpointMode::DeltaCounting),
            &opts,
        )
        .unwrap();
        let batch: Vec<Triple> = db0.triples().filter(|t| db0.node_name(t.s) == "d").collect();
        let remaining: Vec<Triple> =
            db0.triples().filter(|t| db0.node_name(t.s) != "d").collect();
        let db1 = db0.with_triples(&remaining).unwrap();
        failpoints::disarm_all();
        failpoints::arm("snapshot-write", 0);
        // The documented exception: the snapshot error surfaces, but
        // the batch is already in the WAL and the epoch advanced.
        assert_eq!(
            durable.apply_deletions(&db1, &batch),
            Err(MaintainError::Failpoint {
                point: "snapshot-write"
            })
        );
        failpoints::disarm_all();
        assert_eq!(durable.epoch(), 1, "committed before the snapshot failed");
        drop(durable);
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        assert_eq!(rec.report.snapshot_epoch, 0, "fell back to the initial snapshot");
        assert_eq!(rec.report.records_replayed, 1);
        assert_eq!(
            rec.sim.solution().chi,
            solve(&db1, &soi, &cfg(FixpointMode::DeltaCounting)).chi
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_vocabulary_updates_propagate_in_delta_mode() {
        let db = db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let mut inc = IncrementalDualSim::new(&db, soi, cfg(FixpointMode::DeltaCounting));
        let pre = inc.solution().clone();
        let alien = Triple::new(db.num_nodes() as u32, 0, 0);
        assert_eq!(
            inc.apply_insertions(&db, &[alien]),
            Err(MaintainError::OutOfVocabulary { triple: alien })
        );
        assert_eq!(inc.solution().chi, pre.chi);
        assert_eq!(inc.solution().stats, pre.stats, "not even an epoch opened");
    }
}
