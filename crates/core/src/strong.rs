//! Strong simulation (Ma et al. \[20\]) on top of the SOI machinery.
//!
//! Dual simulation deliberately trades topology for speed: the paper's
//! related-work section notes that "performance improvements by dual
//! simulation come with a loss of topology" and Sect. 4.1 exhibits the
//! Fig. 4 node p4 that survives dual simulation without belonging to any
//! match. *Strong* simulation — the headline notion of Ma et al. —
//! restores locality: a candidate only counts if it participates in a
//! dual simulation **inside a ball** of radius `d_Q` (the pattern
//! diameter) around some match center.
//!
//! This module implements strong simulation for connected BGP patterns
//! by reusing the fixpoint solver on ball-induced subgraphs, giving the
//! repository the full simulation spectrum:
//!
//! ```text
//! matches ⊆ strong simulation ⊆ dual simulation ⊆ forward simulation
//! ```
//!
//! (each inclusion property-tested; see `tests/soundness_props.rs` and
//! the unit tests below).

use crate::{solve, Soi, SolverConfig};
use dualsim_bitmatrix::{BitVec, ChiVec};
use dualsim_graph::{GraphDb, Triple};
use std::collections::VecDeque;

/// Work counters of one strong-simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrongStats {
    /// Ball centers examined (candidates of the designated center
    /// variable in the global dual simulation).
    pub balls: usize,
    /// Balls whose local dual simulation retained the center.
    pub matching_balls: usize,
    /// Total nodes across all extracted balls.
    pub ball_nodes: usize,
}

/// The result of strong simulation: per SOI variable, the union of the
/// ball-local dual simulations (restricted to balls whose center
/// survives), plus statistics.
#[derive(Debug, Clone)]
pub struct StrongSimulation {
    /// χ per SOI variable, as in [`crate::Solution`].
    pub chi: Vec<BitVec>,
    /// Work counters.
    pub stats: StrongStats,
}

/// Computes strong simulation between the BGP pattern of `soi` and `db`.
///
/// Procedure (Ma et al., adapted to the SOI framework):
///
/// 1. compute the global largest dual simulation (a cheap upper bound —
///    every ball-local simulation is contained in it);
/// 2. let `d_Q` be the diameter of the pattern graph (undirected);
/// 3. for every candidate `w` of the first pattern variable, extract the
///    ball `B(w, d_Q)` (undirected, over all labels), induce the
///    subgraph, and compute the largest dual simulation of the pattern
///    *inside the ball*, seeded by the global solution;
/// 4. if `w` itself survives as a candidate of the center variable, the
///    whole ball-local simulation contributes to the result.
///
/// # Panics
/// Panics if `soi` is not a plain BGP system or if the pattern graph is
/// not connected (strong simulation's ball construction requires a
/// connected pattern; disconnected patterns should be processed per
/// connected component).
pub fn strong_simulation(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> StrongSimulation {
    assert!(
        soi.is_plain_bgp(),
        "strong simulation is defined for plain BGP patterns"
    );
    // Documented precondition (like the `is_plain_bgp` assert above):
    // strong simulation is defined over connected, non-empty patterns.
    #[allow(clippy::expect_used)]
    let diameter =
        pattern_diameter(soi).expect("strong simulation requires a connected, non-empty pattern");
    let n = db.num_nodes();
    let mut stats = StrongStats::default();

    // Global dual simulation as an upper bound and candidate source.
    let global_cfg = SolverConfig {
        early_exit: true,
        ..config.clone()
    };
    let global = solve(db, soi, &global_cfg);
    let mut chi: Vec<BitVec> = (0..soi.vars.len()).map(|_| BitVec::zeros(n)).collect();
    if global.is_certainly_empty() || soi.vars.is_empty() {
        return StrongSimulation { chi, stats };
    }

    // Center variable: the pattern variable with the fewest global
    // candidates (fewest balls to inspect).
    // Structural invariant: the empty-vars case returned above.
    #[allow(clippy::expect_used)]
    let center_var = (0..soi.vars.len())
        .min_by_key(|&v| global.chi[v].count_ones())
        .expect("at least one variable");

    for w in global.chi[center_var].iter_ones() {
        stats.balls += 1;
        let ball = extract_ball(db, w as u32, diameter);
        stats.ball_nodes += ball.nodes.count_ones();
        // Solve the same SOI against the ball-induced subgraph, seeding
        // χ with the global solution restricted to the ball (sound: the
        // ball-local largest simulation is contained in it).
        let local = solve_in_ball(db, soi, &global.chi, &ball, config);
        if local[center_var].get(w) {
            stats.matching_balls += 1;
            for (acc, loc) in chi.iter_mut().zip(local.iter()) {
                acc.or_assign(loc);
            }
        }
    }
    StrongSimulation { chi, stats }
}

/// Diameter of the pattern graph over variables/constants (undirected);
/// `None` if the pattern is empty or disconnected.
fn pattern_diameter(soi: &Soi) -> Option<usize> {
    let n = soi.vars.len();
    if n == 0 || soi.edges.is_empty() {
        return None;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &soi.edges {
        adj[e.src].push(e.dst);
        adj[e.dst].push(e.src);
    }
    let mut diameter = 0usize;
    for start in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        // Structural invariant: `dist` has one entry per variable and
        // the empty pattern returned `None` above.
        #[allow(clippy::expect_used)]
        let ecc = *dist.iter().max().expect("non-empty");
        if ecc == usize::MAX {
            return None; // disconnected
        }
        diameter = diameter.max(ecc);
    }
    Some(diameter)
}

/// A ball: the node set within undirected distance `radius` of a center.
struct Ball {
    nodes: BitVec,
}

fn extract_ball(db: &GraphDb, center: u32, radius: usize) -> Ball {
    let n = db.num_nodes();
    let mut nodes = BitVec::zeros(n);
    nodes.set(center as usize);
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for label in 0..db.num_labels() as u32 {
                for &u in db.out_neighbors(v, label) {
                    if !nodes.get(u as usize) {
                        nodes.set(u as usize);
                        next.push(u);
                    }
                }
                for &u in db.in_neighbors(v, label) {
                    if !nodes.get(u as usize) {
                        nodes.set(u as usize);
                        next.push(u);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ball { nodes }
}

/// Largest dual simulation of the pattern within the ball-induced
/// subgraph, computed by the naive stable refinement over the ball's
/// (small) node set, seeded from the global solution.
fn solve_in_ball(
    db: &GraphDb,
    soi: &Soi,
    global_chi: &[ChiVec],
    ball: &Ball,
    _config: &SolverConfig,
) -> Vec<BitVec> {
    // Ball-local refinement works densely: the ball node set is small
    // and probed per bit, so the global χ (whatever its backend) is
    // expanded once per ball.
    let mut chi: Vec<BitVec> = global_chi.iter().map(ChiVec::to_bitvec).collect();
    for c in chi.iter_mut() {
        c.and_assign(&ball.nodes);
    }
    // Edges of the induced subgraph are exactly the database edges with
    // both endpoints in the ball, so adjacency can be probed through the
    // full database filtered by ball membership.
    loop {
        let mut changed = false;
        for e in &soi.edges {
            let Some(a) = e.label else {
                changed |= chi[e.src].any_set() || chi[e.dst].any_set();
                chi[e.src].clear_all();
                chi[e.dst].clear_all();
                continue;
            };
            let drop_src: Vec<usize> = chi[e.src]
                .iter_ones()
                .filter(|&v| {
                    !db.out_neighbors(v as u32, a)
                        .iter()
                        .any(|&o| ball.nodes.get(o as usize) && chi[e.dst].get(o as usize))
                })
                .collect();
            for v in drop_src {
                chi[e.src].clear(v);
                changed = true;
            }
            let drop_dst: Vec<usize> = chi[e.dst]
                .iter_ones()
                .filter(|&w| {
                    !db.in_neighbors(w as u32, a)
                        .iter()
                        .any(|&s| ball.nodes.get(s as usize) && chi[e.src].get(s as usize))
                })
                .collect();
            for w in drop_dst {
                chi[e.dst].clear(w);
                changed = true;
            }
        }
        if !changed {
            return chi;
        }
    }
}

/// The triples admitted by a strong simulation (analogous to the pruning
/// extraction of Sect. 5.2, but against the strong χ).
pub fn strong_kept_triples(db: &GraphDb, soi: &Soi, strong: &StrongSimulation) -> Vec<Triple> {
    let mut kept = Vec::new();
    for e in &soi.edges {
        let Some(a) = e.label else { continue };
        for s in strong.chi[e.src].iter_ones() {
            for &o in db.out_neighbors(s as u32, a) {
                if strong.chi[e.dst].get(o as usize) {
                    kept.push(Triple::new(s as u32, a, o));
                }
            }
        }
    }
    kept.sort_unstable();
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_sois;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    /// The Fig. 4(b) database K.
    fn fig4_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("p1", "knows", "p2").unwrap();
        b.add_triple("p2", "knows", "p1").unwrap();
        b.add_triple("p2", "knows", "p3").unwrap();
        b.add_triple("p3", "knows", "p2").unwrap();
        b.add_triple("p3", "knows", "p4").unwrap();
        b.add_triple("p4", "knows", "p1").unwrap();
        b.finish()
    }

    #[test]
    fn strong_simulation_discriminates_p4() {
        // Dual simulation keeps p4 (Sect. 4.1); strong simulation's
        // locality restores Ma et al.'s intended behaviour.
        let db = fig4_db();
        let q = parse("{ ?v knows ?w . ?w knows ?v }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = SolverConfig::default();
        let dual = solve(&db, &soi, &cfg);
        let p4 = db.node_id("p4").unwrap() as usize;
        let v = soi.vars_for("v")[0];
        assert!(dual.chi[v].get(p4), "dual simulation keeps p4");
        let strong = strong_simulation(&db, &soi, &cfg);
        assert!(!strong.chi[v].get(p4), "strong simulation removes p4");
        // The 2-cycle members survive.
        for name in ["p1", "p2", "p3"] {
            assert!(
                strong.chi[v].get(db.node_id(name).unwrap() as usize),
                "{name}"
            );
        }
    }

    #[test]
    fn strong_is_contained_in_dual() {
        let db = fig4_db();
        let q = parse("{ ?v knows ?w . ?w knows ?v }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = SolverConfig::default();
        let dual = solve(&db, &soi, &cfg);
        let strong = strong_simulation(&db, &soi, &cfg);
        for (s, d) in strong.chi.iter().zip(dual.chi.iter()) {
            assert!(d.covers_dense(s), "strong ⊆ dual");
        }
        assert!(strong.stats.balls >= strong.stats.matching_balls);
    }

    #[test]
    fn strong_contains_every_match() {
        use dualsim_engine::{Engine, NestedLoopEngine};
        let db = fig4_db();
        let q = parse("{ ?v knows ?w . ?w knows ?v }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let strong = strong_simulation(&db, &soi, &SolverConfig::default());
        let results = NestedLoopEngine.evaluate(&db, &q);
        let v_idx = soi.vars_for("v")[0];
        for row in 0..results.len() {
            let node = results.binding(row, "v").unwrap();
            assert!(strong.chi[v_idx].get(node as usize));
        }
    }

    #[test]
    fn strong_kept_triples_drop_p4_edges() {
        let db = fig4_db();
        let q = parse("{ ?v knows ?w . ?w knows ?v }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let strong = strong_simulation(&db, &soi, &SolverConfig::default());
        let kept = strong_kept_triples(&db, &soi, &strong);
        let p4 = db.node_id("p4").unwrap();
        assert!(kept.iter().all(|t| t.s != p4 && t.o != p4));
        assert_eq!(kept.len(), 4, "both 2-cycles");
    }

    #[test]
    fn empty_global_simulation_short_circuits() {
        let db = fig4_db();
        let q = parse("{ ?v nolabel ?w . ?w nolabel ?v }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let strong = strong_simulation(&db, &soi, &SolverConfig::default());
        assert!(strong.chi.iter().all(|c| c.none_set()));
        assert_eq!(strong.stats.balls, 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_patterns_are_rejected() {
        let db = fig4_db();
        let q = parse("{ ?a knows ?b . ?c knows ?d }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let _ = strong_simulation(&db, &soi, &SolverConfig::default());
    }

    #[test]
    fn diameter_computation() {
        let db = fig4_db();
        let chain = build_sois(&db, &parse("{ ?a knows ?b . ?b knows ?c }").unwrap()).remove(0);
        assert_eq!(pattern_diameter(&chain), Some(2));
        let cycle = build_sois(&db, &parse("{ ?v knows ?w . ?w knows ?v }").unwrap()).remove(0);
        assert_eq!(pattern_diameter(&cycle), Some(1));
    }
}
