//! Direct validation of candidate relations against Def. 2.
//!
//! Used by the test suite to certify that every algorithm in this crate
//! (SOI solver, Ma et al., HHK) returns an actual dual simulation, and
//! that claimed-largest solutions really are maximal.

use crate::{PatternEdge, Soi};
use dualsim_bitmatrix::{BitVec, ChiRead, RowSelector};
use dualsim_graph::GraphDb;

/// Checks whether the relation `S = {(v, d) | d ∈ chi[v]}` is a dual
/// simulation between the pattern graph (the edges of `soi`) and `db`
/// per Def. 2, i.e. for every pattern edge `(v, a, w)`:
///
/// * every `v' ∈ χ(v)` has an `a`-successor in `χ(w)` (condition (i));
/// * every `w' ∈ χ(w)` has an `a`-predecessor in `χ(v)` (condition (ii)).
///
/// A pattern edge whose label is absent from the database admits no
/// candidates at all on either side.
///
/// Generic over the χ representation ([`ChiRead`] + [`RowSelector`]):
/// the solver's backend-abstracted `ChiVec` rows and the baselines'
/// plain dense rows are certified by the same checker.
pub fn is_dual_simulation<C: ChiRead + RowSelector>(db: &GraphDb, soi: &Soi, chi: &[C]) -> bool {
    let mut scratch = BitVec::zeros(db.num_nodes());
    soi.edges
        .iter()
        .all(|e| edge_respected(db, e, chi, true, &mut scratch))
}

/// Checks condition (i) only — plain forward simulation, the notion the
/// [`crate::SimulationKind::Forward`] systems characterize.
pub fn is_forward_simulation<C: ChiRead + RowSelector>(
    db: &GraphDb,
    soi: &Soi,
    chi: &[C],
) -> bool {
    let mut scratch = BitVec::zeros(db.num_nodes());
    soi.edges
        .iter()
        .all(|e| edge_respected(db, e, chi, false, &mut scratch))
}

/// One pattern edge `(src, a, dst)`, checked as two fused
/// product-plus-subset passes ([`dualsim_bitmatrix::BitMatrix::multiply_subset_into`])
/// instead of per-candidate neighbor probes:
///
/// * condition (i) — every `v' ∈ χ(src)` has an `a`-successor in
///   `χ(dst)` — holds iff `χ(src) ⊆ B^a ×b χ(dst)` (row `w'` of the
///   backward matrix is exactly the `a`-predecessor set of `w'`, so the
///   product is the set of nodes with *some* `a`-successor in `χ(dst)`);
/// * condition (ii) symmetrically iff `χ(dst) ⊆ F^a ×b χ(src)`.
///
/// The violation test runs in the same cache-hot pass as the product
/// OR, so a violating candidate is detected without a second scan.
fn edge_respected<C: ChiRead + RowSelector>(
    db: &GraphDb,
    e: &PatternEdge,
    chi: &[C],
    dual: bool,
    scratch: &mut BitVec,
) -> bool {
    let Some(a) = e.label else {
        return chi[e.src].none_set() && (!dual || chi[e.dst].none_set());
    };
    let (_, fwd_ok) = db
        .backward(a)
        .multiply_subset_into(&chi[e.dst], scratch, &chi[e.src]);
    if !dual {
        return fwd_ok;
    }
    let (_, bwd_ok) = db
        .forward(a)
        .multiply_subset_into(&chi[e.src], scratch, &chi[e.dst]);
    fwd_ok && bwd_ok
}

/// Checks that `chi` also respects the constant pinnings and subset
/// inequalities of the system, i.e. is a valid assignment for the whole
/// SOI and not just for the pattern edges. Honours the system's
/// [`crate::SimulationKind`].
pub fn is_valid_assignment<C: ChiRead + RowSelector>(db: &GraphDb, soi: &Soi, chi: &[C]) -> bool {
    let sim_ok = match soi.kind {
        crate::SimulationKind::Dual => is_dual_simulation(db, soi, chi),
        crate::SimulationKind::Forward => is_forward_simulation(db, soi, chi),
    };
    if !sim_ok {
        return false;
    }
    for (idx, var) in soi.vars.iter().enumerate() {
        if let Some(pin) = var.pinned {
            let ok = match pin {
                Some(node) => chi[idx].all_ones(|d| d == node as usize),
                None => chi[idx].none_set(),
            };
            if !ok {
                return false;
            }
        }
    }
    soi.ineqs.iter().all(|ineq| match *ineq {
        crate::Inequality::Subset { sub, sup } => chi[sub].is_subset_of(&chi[sup]),
        crate::Inequality::Edge { .. } => true, // covered by Def. 2 above
    })
}

/// Computes the largest solution by the slowest obviously-correct means:
/// start from the full relation (respecting constant pinnings) and delete
/// violating pairs until the Def.-2 conditions and all subset
/// inequalities hold. This is the reference oracle the fast algorithms
/// are property-tested against; it is deliberately written straight from
/// the definition with no shared code.
pub fn naive_largest_solution(db: &GraphDb, soi: &Soi) -> Vec<BitVec> {
    let n = db.num_nodes();
    let mut chi: Vec<BitVec> = soi
        .vars
        .iter()
        .map(|var| match var.pinned {
            Some(Some(node)) => BitVec::from_indices(n, &[node]),
            Some(None) => BitVec::zeros(n),
            None => BitVec::ones(n),
        })
        .collect();
    let dual = soi.kind == crate::SimulationKind::Dual;
    loop {
        let mut changed = false;
        for e in &soi.edges {
            let Some(a) = e.label else {
                changed |= chi[e.src].any_set() || (dual && chi[e.dst].any_set());
                chi[e.src].clear_all();
                if dual {
                    chi[e.dst].clear_all();
                }
                continue;
            };
            let drop_src: Vec<usize> = chi[e.src]
                .iter_ones()
                .filter(|&v| !chi[e.dst].intersects_indices(db.out_neighbors(v as u32, a)))
                .collect();
            for v in drop_src {
                chi[e.src].clear(v);
                changed = true;
            }
            if !dual {
                continue;
            }
            let drop_dst: Vec<usize> = chi[e.dst]
                .iter_ones()
                .filter(|&w| !chi[e.src].intersects_indices(db.in_neighbors(w as u32, a)))
                .collect();
            for w in drop_dst {
                chi[e.dst].clear(w);
                changed = true;
            }
        }
        for ineq in &soi.ineqs {
            if let crate::Inequality::Subset { sub, sup } = *ineq {
                let sup_chi = chi[sup].clone();
                changed |= chi[sub].and_assign(&sup_chi);
            }
        }
        if !changed {
            return chi;
        }
    }
}

/// `true` iff `chi` is exactly the largest solution of the system —
/// validity plus maximality, certified against the reference oracle
/// (the oracle is dense; [`ChiRead`]'s `PartialEq<BitVec>` bound
/// compares any χ representation against it semantically).
pub fn is_largest_solution<C: ChiRead + RowSelector>(db: &GraphDb, soi: &Soi, chi: &[C]) -> bool {
    is_valid_assignment(db, soi, chi) && chi == naive_largest_solution(db, soi).as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_sois, solve, SolverConfig};
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn db_and_soi(text: &str) -> (GraphDb, Soi) {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("c", "q", "a").unwrap();
        b.add_triple("b", "q", "b").unwrap();
        let db = b.finish();
        let soi = build_sois(&db, &parse(text).unwrap()).remove(0);
        (db, soi)
    }
    use dualsim_graph::GraphDb;

    #[test]
    fn solver_output_is_a_dual_simulation() {
        let (db, soi) = db_and_soi("{ ?x p ?y . ?y q ?z }");
        let sol = solve(&db, &soi, &SolverConfig::default());
        assert!(is_dual_simulation(&db, &soi, &sol.chi));
        assert!(is_valid_assignment(&db, &soi, &sol.chi));
    }

    #[test]
    fn solver_output_is_the_largest_solution() {
        let (db, soi) = db_and_soi("{ ?x p ?y . ?y q ?z }");
        let cfg = SolverConfig {
            early_exit: false,
            ..SolverConfig::default()
        };
        let sol = solve(&db, &soi, &cfg);
        assert!(is_largest_solution(&db, &soi, &sol.chi));
    }

    #[test]
    fn too_large_relations_are_rejected() {
        let (db, soi) = db_and_soi("{ ?x p ?y . ?y q ?z }");
        let n = db.num_nodes();
        let all: Vec<_> = (0..soi.vars.len())
            .map(|_| dualsim_bitmatrix::BitVec::ones(n))
            .collect();
        assert!(!is_dual_simulation(&db, &soi, &all));
    }

    #[test]
    fn empty_relation_is_a_dual_simulation_but_not_largest() {
        // Def. 2's trivial case: S = ∅ certifies any two graphs, yet it
        // is not the largest solution here because p-edges exist.
        let (db, soi) = db_and_soi("{ ?x p ?y }");
        let n = db.num_nodes();
        let empty: Vec<_> = (0..soi.vars.len())
            .map(|_| dualsim_bitmatrix::BitVec::zeros(n))
            .collect();
        assert!(is_dual_simulation(&db, &soi, &empty));
        assert!(!is_largest_solution(&db, &soi, &empty));
    }
}
