//! Construction of the system of inequalities (SOI) from S-queries.
//!
//! For a BGP, every variable becomes an SOI variable and every triple
//! pattern `(v, a, w)` contributes the two inequalities of Eq. (11):
//!
//! ```text
//! w ≤ v ×b F^a      and      v ≤ w ×b B^a
//! ```
//!
//! `AND` and `OPTIONAL` combine sub-SOIs per Lemmas 3–5: variable
//! occurrences that are *mandatory* on both sides are unified; an
//! occurrence that is optional on one side but mandatory on the other is
//! renamed to a fresh surrogate `v_Q2` tied to its syntactically closest
//! mandatory occurrence by a subset inequality `v_Q2 ≤ v` (Eqs. (14)/(15));
//! optional sibling occurrences stay independent (Sect. 4.4). Constants
//! pin their variable to a singleton, the Sect.-4.5 alteration of Eq. (12).

use dualsim_graph::{GraphDb, LabelId, NodeId, NodeKind};
use dualsim_query::{Query, Term, TriplePattern};
use std::collections::BTreeMap;

/// One variable of the system of inequalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoiVar {
    /// Debug name: the query variable, possibly suffixed for renamed
    /// optional occurrences (e.g. `v3@opt1`), or the constant's text.
    pub name: String,
    /// The query variable this SOI variable stands for; `None` for
    /// constant-pinned helper variables.
    pub origin: Option<String>,
    /// `true` iff the variable belongs to the mandatory skeleton of the
    /// query (not created under any `OPTIONAL` right operand). If the
    /// solution of a mandatory variable becomes empty, the query has no
    /// matches at all and the whole database can be pruned.
    pub mandatory: bool,
    /// For constants: the database node this variable is pinned to
    /// (`None` inside if the constant does not occur in the database,
    /// which empties the variable at initialization).
    pub pinned: Option<Option<NodeId>>,
}

/// A pattern edge `(src, a, dst)`, kept for the pruning step: a database
/// triple survives iff some pattern edge admits it (Sect. 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEdge {
    /// SOI variable in subject position.
    pub src: usize,
    /// Edge label, `None` if the predicate does not occur in the
    /// database alphabet (the edge then admits no triples).
    pub label: Option<LabelId>,
    /// SOI variable in object position.
    pub dst: usize,
}

/// One inequality of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inequality {
    /// `target ≤ source ×b M` with `M = F^label` (if `forward`) or
    /// `B^label` — Eq. (11). A `label` of `None` denotes the empty
    /// matrix (predicate absent from the database).
    Edge {
        /// Variable being constrained.
        target: usize,
        /// Variable whose χ selects the matrix rows.
        source: usize,
        /// Edge label.
        label: Option<LabelId>,
        /// `true` for `F^a`, `false` for `B^a`.
        forward: bool,
    },
    /// `sub ≤ sup` — the optional-variable dependency of Eqs. (14)/(15).
    Subset {
        /// The renamed optional occurrence.
        sub: usize,
        /// Its syntactically closest mandatory occurrence.
        sup: usize,
    },
}

/// Which simulation the system characterizes.
///
/// The paper's contribution is **dual** simulation (both Def. 2
/// conditions). Plain **forward** simulation — condition (i) only, the
/// notion used by simulation-based systems like Panda \[31\] — drops the
/// backward inequalities; it is strictly weaker, so its pruning keeps at
/// least as many triples ("we rely on dual simulation being more
/// effective in pruning unnecessary triples", Sect. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimulationKind {
    /// Both Def. 2 conditions (the paper's setting).
    #[default]
    Dual,
    /// Condition (i) only: candidates of `v` must have matching
    /// successors; objects are unconstrained by incoming edges.
    Forward,
}

/// The system of inequalities of one union-free query (Sect. 3.2/4).
#[derive(Debug, Clone)]
pub struct Soi {
    /// The variables `Var` of the system.
    pub vars: Vec<SoiVar>,
    /// The inequalities `Eq` of the system.
    pub ineqs: Vec<Inequality>,
    /// All pattern edges, for pruning.
    pub edges: Vec<PatternEdge>,
    /// Top-level exposure: for every query variable, the SOI variables
    /// whose solutions together form the solution for that variable
    /// (a single mandatory occurrence, or the independent optional
    /// surrogates — cf. the `x_P2`/`x_P3` discussion in Sect. 4.4).
    pub scope: BTreeMap<String, Vec<usize>>,
    /// Simulation variant this system encodes.
    pub kind: SimulationKind,
}

impl Soi {
    /// `true` iff the system stems from a plain BGP: no subset
    /// inequalities and no optional variables. The baseline algorithms
    /// (Ma et al., HHK) only accept such systems.
    pub fn is_plain_bgp(&self) -> bool {
        self.vars.iter().all(|v| v.mandatory)
            && self
                .ineqs
                .iter()
                .all(|i| matches!(i, Inequality::Edge { .. }))
    }

    /// Number of SOI variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The SOI variables exposed for a query variable.
    pub fn vars_for(&self, query_var: &str) -> &[usize] {
        self.scope.get(query_var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` iff the pattern graph (variables plus constants, edges
    /// undirected) is connected and non-empty — the precondition of
    /// strong simulation's ball construction.
    pub fn pattern_is_connected(&self) -> bool {
        let n = self.vars.len();
        if n == 0 || self.edges.is_empty() {
            return false;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.src].push(e.dst);
            adj[e.dst].push(e.src);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    stack.push(u);
                }
            }
        }
        reached == n
    }
}

/// Builds one SOI per union-free branch of `query` (Prop. 3 splits
/// `UNION` first). Labels and constants are resolved against `db`.
pub fn build_sois(db: &GraphDb, query: &Query) -> Vec<Soi> {
    build_sois_with(db, query, SimulationKind::Dual)
}

/// Like [`build_sois`] with an explicit [`SimulationKind`]. With
/// [`SimulationKind::Forward`] each pattern edge contributes only the
/// condition-(i) inequality `v ≤ w ×b B^a` (candidates of the subject
/// must reach a candidate of the object).
pub fn build_sois_with(db: &GraphDb, query: &Query, kind: SimulationKind) -> Vec<Soi> {
    query
        .union_normal_form()
        .iter()
        .map(|branch| {
            let mut soi = build_union_free(db, branch);
            if kind == SimulationKind::Forward {
                soi.ineqs.retain(|ineq| match ineq {
                    // Keep subset dependencies and exactly the
                    // successor-existence inequalities. `forward: false`
                    // is the `s ≤ o ×b B^a` direction, which encodes
                    // Def. 2(i) (see Prop. 2's proof).
                    Inequality::Edge { forward, .. } => !*forward,
                    Inequality::Subset { .. } => true,
                });
                soi.kind = SimulationKind::Forward;
            }
            soi
        })
        .collect()
}

/// Exposure of one query variable by a sub-SOI.
///
/// Invariant: if `mandatory` is `Some`, `optional` is empty — every
/// optional occurrence is linked (`≤`) to its closest mandatory
/// occurrence the moment the two meet in a combination step.
#[derive(Debug, Clone, Default)]
struct Exposure {
    mandatory: Option<usize>,
    optional: Vec<usize>,
}

impl Exposure {
    fn exposed(&self) -> Vec<usize> {
        match self.mandatory {
            Some(m) => vec![m],
            None => self.optional.clone(),
        }
    }
}

type Scope = BTreeMap<String, Exposure>;

struct Builder<'a> {
    db: &'a GraphDb,
    vars: Vec<SoiVar>,
    /// Union-find parent links: unification of mandatory occurrences
    /// (Lemma 3) merges SOI variables.
    parent: Vec<usize>,
    ineqs: Vec<Inequality>,
    edges: Vec<PatternEdge>,
}

impl<'a> Builder<'a> {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
            self.vars[ra].mandatory |= self.vars[rb].mandatory;
            // Unified variables must agree on pinning; two distinct
            // constants can never unify because constants are never
            // exposed as query variables.
            debug_assert!(self.vars[rb].pinned.is_none() || self.vars[ra].pinned.is_none());
            if self.vars[ra].pinned.is_none() {
                self.vars[ra].pinned = self.vars[rb].pinned.take();
            }
        }
        ra
    }

    fn fresh(&mut self, name: String, origin: Option<String>, mandatory: bool) -> usize {
        let idx = self.vars.len();
        self.vars.push(SoiVar {
            name,
            origin,
            mandatory,
            pinned: None,
        });
        self.parent.push(idx);
        idx
    }

    fn fresh_constant(&mut self, term: &Term, mandatory: bool) -> usize {
        let (name, node) = match term {
            Term::Iri(iri) => (iri.clone(), self.db.node_id(iri)),
            Term::Literal(l) => {
                let node = self
                    .db
                    .node_id(l)
                    .filter(|&n| self.db.node_kind(n) == NodeKind::Literal);
                (format!("\"{l}\""), node)
            }
            Term::Var(_) => unreachable!("constants only"),
        };
        let idx = self.fresh(name, None, mandatory);
        self.vars[idx].pinned = Some(node);
        idx
    }

    /// Builds the sub-SOI of `q`; `in_optional` records whether `q` sits
    /// under the right operand of some `OPTIONAL` (for the mandatory
    /// flag used by the early-exit rule).
    fn build(&mut self, q: &Query, in_optional: bool) -> Scope {
        match q {
            Query::Bgp(tps) => self.build_bgp(tps, in_optional),
            Query::And(a, b) => {
                let sa = self.build(a, in_optional);
                let sb = self.build(b, in_optional);
                self.combine_and(sa, sb)
            }
            Query::Optional(a, b) => {
                let sa = self.build(a, in_optional);
                let sb = self.build(b, true);
                self.combine_optional(sa, sb)
            }
            Query::Union(..) => {
                unreachable!("UNION must be removed by union_normal_form before SOI construction")
            }
        }
    }

    /// Resolves (or creates) the SOI variable of a term within one BGP.
    fn resolve_term(
        &mut self,
        local: &mut BTreeMap<Term, usize>,
        scope: &mut Scope,
        term: &Term,
        mandatory: bool,
    ) -> usize {
        if let Some(&idx) = local.get(term) {
            return idx;
        }
        let idx = match term {
            Term::Var(v) => {
                let idx = self.fresh(v.clone(), Some(v.clone()), mandatory);
                scope.insert(
                    v.clone(),
                    Exposure {
                        mandatory: Some(idx),
                        optional: Vec::new(),
                    },
                );
                idx
            }
            constant => self.fresh_constant(constant, mandatory),
        };
        local.insert(term.clone(), idx);
        idx
    }

    fn build_bgp(&mut self, tps: &[TriplePattern], in_optional: bool) -> Scope {
        let mandatory = !in_optional;
        let mut local: BTreeMap<Term, usize> = BTreeMap::new();
        let mut scope = Scope::new();
        for tp in tps {
            let s = self.resolve_term(&mut local, &mut scope, &tp.s, mandatory);
            let o = self.resolve_term(&mut local, &mut scope, &tp.o, mandatory);
            let label = self.db.label_id(&tp.p);
            self.edges.push(PatternEdge {
                src: s,
                label,
                dst: o,
            });
            // Eq. (11): o ≤ s ×b F^a and s ≤ o ×b B^a.
            self.ineqs.push(Inequality::Edge {
                target: o,
                source: s,
                label,
                forward: true,
            });
            self.ineqs.push(Inequality::Edge {
                target: s,
                source: o,
                label,
                forward: false,
            });
        }
        scope
    }

    /// Lemma 3 / Lemma 5: conjunction unifies mandatory occurrences and
    /// ties optional occurrences to a mandatory sibling if one exists.
    fn combine_and(&mut self, mut sa: Scope, sb: Scope) -> Scope {
        for (var, eb) in sb {
            match sa.remove(&var) {
                None => {
                    sa.insert(var, eb);
                }
                Some(ea) => {
                    let merged = match (ea.mandatory, eb.mandatory) {
                        (Some(ma), Some(mb)) => {
                            let root = self.union(ma, mb);
                            Exposure {
                                mandatory: Some(root),
                                optional: Vec::new(),
                            }
                        }
                        (Some(m), None) => {
                            self.link_optionals(&var, &eb.optional, m);
                            Exposure {
                                mandatory: Some(m),
                                optional: Vec::new(),
                            }
                        }
                        (None, Some(m)) => {
                            self.link_optionals(&var, &ea.optional, m);
                            Exposure {
                                mandatory: Some(m),
                                optional: Vec::new(),
                            }
                        }
                        (None, None) => {
                            // Optional siblings stay independent
                            // (Sect. 4.4: x_P2 and x_P3 carry no
                            // interdependency).
                            let mut optional = ea.optional;
                            optional.extend(eb.optional);
                            Exposure {
                                mandatory: None,
                                optional,
                            }
                        }
                    };
                    sa.insert(var, merged);
                }
            }
        }
        sa
    }

    /// Lemma 4 and the Sect. 4.4 general case: occurrences inside the
    /// optional operand are renamed surrogates; if the mandatory operand
    /// binds the variable, each surrogate is tied to it by `v_Q2 ≤ v`.
    fn combine_optional(&mut self, mut sa: Scope, sb: Scope) -> Scope {
        for (var, eb) in sb {
            match sa.remove(&var) {
                None => {
                    // The variable only occurs in the optional part: it is
                    // optional for the combined query (mand(Q1 OPT Q2) =
                    // mand(Q1)), so demote a mandatory occurrence of the
                    // sub-query to an exposed optional surrogate.
                    sa.insert(
                        var,
                        Exposure {
                            mandatory: None,
                            optional: eb.exposed(),
                        },
                    );
                }
                Some(ea) => {
                    let merged = match ea.mandatory {
                        Some(m) => {
                            // Closest mandatory occurrence: every exposed
                            // node of the optional side becomes ≤ m.
                            self.link_optionals(&var, &eb.exposed(), m);
                            Exposure {
                                mandatory: Some(m),
                                optional: Vec::new(),
                            }
                        }
                        None => {
                            // Both occurrences are optional: keep them
                            // independent but exposed for a farther-out
                            // mandatory occurrence.
                            let mut optional = ea.optional;
                            optional.extend(eb.exposed());
                            Exposure {
                                mandatory: None,
                                optional,
                            }
                        }
                    };
                    sa.insert(var, merged);
                }
            }
        }
        sa
    }

    fn link_optionals(&mut self, var: &str, optionals: &[usize], mandatory: usize) {
        for &o in optionals {
            self.ineqs.push(Inequality::Subset {
                sub: o,
                sup: mandatory,
            });
            // Rename for debuggability: mark the surrogate.
            if !self.vars[o].name.contains('@') {
                self.vars[o].name = format!("{var}@opt{o}");
            }
        }
    }

    /// Resolves union-find roots and compacts variable indices.
    fn finish(mut self, scope: Scope) -> Soi {
        let n = self.vars.len();
        let root_of: Vec<usize> = (0..n).map(|i| self.find(i)).collect();
        let mut dense = vec![usize::MAX; n];
        let mut vars = Vec::new();
        for &r in &root_of {
            if dense[r] == usize::MAX {
                dense[r] = vars.len();
                vars.push(self.vars[r].clone());
            }
        }
        let map = |i: usize| dense[root_of[i]];
        let mut ineqs = Vec::with_capacity(self.ineqs.len());
        for ineq in &self.ineqs {
            let mapped = match *ineq {
                Inequality::Edge {
                    target,
                    source,
                    label,
                    forward,
                } => Inequality::Edge {
                    target: map(target),
                    source: map(source),
                    label,
                    forward,
                },
                Inequality::Subset { sub, sup } => {
                    let (sub, sup) = (map(sub), map(sup));
                    if sub == sup {
                        continue; // trivially satisfied
                    }
                    Inequality::Subset { sub, sup }
                }
            };
            if !ineqs.contains(&mapped) {
                ineqs.push(mapped);
            }
        }
        let mut edges: Vec<PatternEdge> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            let mapped = PatternEdge {
                src: map(e.src),
                label: e.label,
                dst: map(e.dst),
            };
            if !edges.contains(&mapped) {
                edges.push(mapped);
            }
        }
        let scope = scope
            .into_iter()
            .map(|(var, exp)| {
                let mut nodes: Vec<usize> = exp.exposed().into_iter().map(map).collect();
                nodes.sort_unstable();
                nodes.dedup();
                (var, nodes)
            })
            .collect();
        Soi {
            vars,
            ineqs,
            edges,
            scope,
            kind: SimulationKind::Dual,
        }
    }
}

fn build_union_free(db: &GraphDb, query: &Query) -> Soi {
    debug_assert!(query.is_union_free());
    let mut builder = Builder {
        db,
        vars: Vec::new(),
        parent: Vec::new(),
        ineqs: Vec::new(),
        edges: Vec::new(),
    };
    let scope = builder.build(query, false);
    builder.finish(scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::{parse, tp};

    fn tiny_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("n1", "a", "n2").unwrap();
        b.add_triple("n1", "b", "n3").unwrap();
        b.add_triple("n3", "c", "n4").unwrap();
        b.add_triple("n2", "directed", "n5").unwrap();
        b.add_triple("n2", "worked_with", "n6").unwrap();
        b.finish()
    }

    fn soi_of(text: &str) -> Soi {
        let db = tiny_db();
        let sois = build_sois(&db, &parse(text).unwrap());
        assert_eq!(sois.len(), 1);
        sois.into_iter().next().unwrap()
    }

    #[test]
    fn bgp_produces_two_inequalities_per_edge() {
        // Query (X1): two pattern edges → four Edge inequalities, three
        // variables (director shared), Fig. 3 analogue.
        let soi = soi_of("{ ?d directed ?m . ?d worked_with ?c }");
        assert_eq!(soi.num_vars(), 3);
        assert_eq!(soi.ineqs.len(), 4);
        assert_eq!(soi.edges.len(), 2);
        assert!(soi.is_plain_bgp());
        assert_eq!(soi.vars_for("d").len(), 1);
    }

    #[test]
    fn shared_variables_across_and_are_unified() {
        // Lemma 3: the two BGPs of Fig. 4(a), G1 = {(v,knows,w)} and
        // G2 = {(w,knows,v)}, unified over shared variables.
        let db = tiny_db();
        let q = dualsim_query::Query::bgp(vec![tp("?v", "a", "?w")])
            .and(dualsim_query::Query::bgp(vec![tp("?w", "a", "?v")]));
        let soi = &build_sois(&db, &q)[0];
        assert_eq!(soi.num_vars(), 2, "v and w must be shared");
        assert_eq!(soi.ineqs.len(), 4);
        assert!(soi.is_plain_bgp());
    }

    #[test]
    fn optional_introduces_surrogate_and_subset() {
        // Query (X2): ?d is mandatory (directed) and optional
        // (worked_with); the optional occurrence becomes ?d@… ≤ ?d.
        let soi = soi_of("{ ?d directed ?m OPTIONAL { ?d worked_with ?c } }");
        assert_eq!(soi.num_vars(), 4, "d, m, d-surrogate, c");
        let subsets: Vec<_> = soi
            .ineqs
            .iter()
            .filter(|i| matches!(i, Inequality::Subset { .. }))
            .collect();
        assert_eq!(subsets.len(), 1);
        // The exposed solution variable for d is the mandatory occurrence.
        assert_eq!(soi.vars_for("d").len(), 1);
        let d = soi.vars_for("d")[0];
        assert!(soi.vars[d].mandatory);
        // c is optional-only.
        let c = soi.vars_for("c")[0];
        assert!(!soi.vars[c].mandatory);
    }

    #[test]
    fn x3_renames_v3_and_keeps_both_occurrences() {
        // (X3): ({(v1,a,v2)} OPT {(v3,b,v2)}) AND {(v3,c,v4)} — v3 occurs
        // optional first, mandatory second; Lemma 5 adds v3' ≤ v3.
        let soi = soi_of("{ { ?v1 a ?v2 OPTIONAL { ?v3 b ?v2 } } { ?v3 c ?v4 } }");
        // v1, v2, v2-surrogate, v3-opt, v3, v4.
        assert_eq!(soi.num_vars(), 6);
        let subsets: Vec<_> = soi
            .ineqs
            .iter()
            .filter_map(|i| match i {
                Inequality::Subset { sub, sup } => Some((*sub, *sup)),
                _ => None,
            })
            .collect();
        assert_eq!(subsets.len(), 2, "v2o ≤ v2m and v3o ≤ v3m");
        for (sub, sup) in subsets {
            assert!(!soi.vars[sub].mandatory);
            assert!(soi.vars[sup].mandatory);
        }
        // The exposed v3 is the mandatory one from the AND's right clause.
        let v3 = soi.vars_for("v3")[0];
        assert!(soi.vars[v3].mandatory);
    }

    #[test]
    fn nested_optionals_link_to_syntactically_closest() {
        // R = R1 OPT (R2 OPT R3) with z in R2 and R3 (Sect. 4.4): the R3
        // occurrence links to the R2 occurrence, which (z ∉ vars(R1))
        // stays an exposed optional surrogate.
        let soi = soi_of("{ ?x a ?y OPTIONAL { ?z b ?x OPTIONAL { ?z c ?w } } }");
        let subsets = soi
            .ineqs
            .iter()
            .filter(|i| matches!(i, Inequality::Subset { .. }))
            .count();
        // x gets xR2 ≤ x (x occurs in R2 and mand(R1)); z gets zR3 ≤ zR2.
        assert_eq!(subsets, 2);
        // z is exposed through its (optional) R2 occurrence only — the
        // R3 occurrence is subsumed via zR3 ≤ zR2.
        assert_eq!(soi.vars_for("z").len(), 1);
    }

    #[test]
    fn sibling_optionals_stay_independent() {
        // P = (P1 OPT P2) OPT P3 with x in P2 and P3 but not P1: both
        // surrogates are exposed, no interdependency (Sect. 4.4).
        let soi = soi_of("{ ?y a ?u OPTIONAL { ?x b ?y } OPTIONAL { ?x c ?y } }");
        assert_eq!(
            soi.vars_for("x").len(),
            2,
            "x_P2 and x_P3 must both be exposed"
        );
        // Only the two y-surrogate links exist; none between the x's.
        let subsets: Vec<(usize, usize)> = soi
            .ineqs
            .iter()
            .filter_map(|i| match i {
                Inequality::Subset { sub, sup } => Some((*sub, *sup)),
                _ => None,
            })
            .collect();
        assert_eq!(subsets.len(), 2);
        let y = soi.vars_for("y")[0];
        assert!(subsets.iter().all(|&(_, sup)| sup == y));
    }

    #[test]
    fn constants_are_pinned() {
        let soi = soi_of("{ ?m directed n5 . ?m a ?x }");
        let pinned: Vec<_> = soi.vars.iter().filter(|v| v.pinned.is_some()).collect();
        assert_eq!(pinned.len(), 1);
        let db = tiny_db();
        assert_eq!(pinned[0].pinned, Some(db.node_id("n5")));
        assert_eq!(pinned[0].origin, None);
    }

    #[test]
    fn unknown_constants_pin_to_nothing() {
        let soi = soi_of("{ ?m directed unknown_node }");
        let pinned: Vec<_> = soi.vars.iter().filter(|v| v.pinned.is_some()).collect();
        assert_eq!(pinned[0].pinned, Some(None));
    }

    #[test]
    fn unknown_labels_are_none() {
        let soi = soi_of("{ ?x no_such_label ?y }");
        assert!(matches!(soi.ineqs[0], Inequality::Edge { label: None, .. }));
        assert!(soi.edges[0].label.is_none());
    }

    #[test]
    fn union_splits_into_branches() {
        let db = tiny_db();
        let q = parse("{ { ?x a ?y } UNION { ?x b ?y } }").unwrap();
        let sois = build_sois(&db, &q);
        assert_eq!(sois.len(), 2);
        assert!(sois.iter().all(|s| s.num_vars() == 2));
    }

    #[test]
    fn repeated_variable_in_one_pattern_is_one_soi_var() {
        // Self-loop pattern (v, a, v).
        let soi = soi_of("{ ?v a ?v }");
        assert_eq!(soi.num_vars(), 1);
        assert_eq!(soi.ineqs.len(), 2);
    }

    #[test]
    fn duplicate_inequalities_are_deduplicated() {
        let soi = soi_of("{ ?v a ?w . ?v a ?w }");
        assert_eq!(soi.ineqs.len(), 2);
    }
}
