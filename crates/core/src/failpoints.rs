//! Deterministic failpoint injection for the maintenance chaos harness.
//!
//! A *failpoint* is a named site inside the delta engine's maintenance
//! path (`pre-drain`, `mid-round`, `post-cull`, `counter-increment`,
//! `rollback`) where the chaos tests can inject a fault: arming a point
//! with [`arm`] makes the Nth pass through that site return
//! [`MaintainError::Failpoint`] instead of proceeding, which the epoch
//! machinery treats exactly like any mid-flight error — the batch rolls
//! back. The special `rollback` point fires *inside* `abort_epoch` and
//! models a failing rollback, which poisons the engine.
//!
//! The registry is **thread-local and deterministic**: no clocks, no
//! randomness, no cross-thread state. All sites live on the coordinator
//! thread (drain shards never consult the registry), so arming from a
//! test and driving maintenance on the same thread is race-free by
//! construction. When nothing is armed the per-site cost is one
//! thread-local flag read.
//!
//! This module exists for the chaos proptests, the CI chaos smoke, and
//! `experiments incremental --chaos`; production callers never arm
//! anything and pay (almost) nothing.

use crate::errors::MaintainError;
use std::cell::{Cell, RefCell};

thread_local! {
    /// Fast path: `true` iff any point is armed on this thread.
    static ANY_ARMED: Cell<bool> = const { Cell::new(false) };
    /// Armed points: `(site name, remaining passes before firing)`.
    /// A countdown of 0 fires on the next pass through the site.
    static ARMED: RefCell<Vec<(&'static str, u32)>> = const { RefCell::new(Vec::new()) };
}

/// The failpoint site names the delta engine exposes, in the order a
/// maintenance batch passes them. Useful for chaos harnesses that
/// iterate every crash site.
pub const SITES: [&str; 5] = [
    "counter-increment",
    "pre-drain",
    "mid-round",
    "post-cull",
    "rollback",
];

/// The failpoint site names of the durability layer, in the order a
/// committed batch passes them: the WAL append (before any byte is
/// written, mid-record to model a torn write, before the fsync) and
/// the snapshot path (before the temp write, mid-payload, before its
/// fsync, before the atomic rename).
pub const DURABILITY_SITES: [&str; 7] = [
    "wal-append",
    "wal-tear",
    "wal-fsync",
    "snapshot-write",
    "snapshot-tear",
    "snapshot-fsync",
    "snapshot-rename",
];

/// The failpoint site of the multi-query session layer: checked at the
/// top of each registered query's share of a fan-out, *before* any of
/// that query's engines are touched — a session-fanout kill degrades
/// the query without even starting (and so without rolling back) its
/// batch.
pub const SESSION_SITES: [&str; 1] = ["session-fanout"];

/// Every registered failpoint site — the engine's maintenance sites
/// ([`SITES`]) followed by the durability layer's ([`DURABILITY_SITES`])
/// and the session layer's ([`SESSION_SITES`]). Chaos harnesses iterate
/// this instead of hard-coding a site list, so a site added to any
/// layer is automatically crash-tested.
pub fn registered_sites() -> Vec<&'static str> {
    SITES
        .iter()
        .chain(DURABILITY_SITES.iter())
        .chain(SESSION_SITES.iter())
        .copied()
        .collect()
}

/// Arms `point` to fire after `countdown` additional passes through the
/// site (0 = fire on the very next pass). Re-arming an already-armed
/// point replaces its countdown. The point disarms itself when it
/// fires.
pub fn arm(point: &'static str, countdown: u32) {
    ARMED.with(|armed| {
        let mut armed = armed.borrow_mut();
        if let Some(entry) = armed.iter_mut().find(|(name, _)| *name == point) {
            entry.1 = countdown;
        } else {
            armed.push((point, countdown));
        }
    });
    ANY_ARMED.with(|f| f.set(true));
}

/// Disarms every point on this thread. Chaos tests call this between
/// cases so a point armed for one scenario cannot leak into the next.
pub fn disarm_all() {
    ARMED.with(|armed| armed.borrow_mut().clear());
    ANY_ARMED.with(|f| f.set(false));
}

/// `true` iff any point is currently armed on this thread.
pub fn any_armed() -> bool {
    ANY_ARMED.with(|f| f.get())
}

/// The engine-side check: returns `Err(MaintainError::Failpoint)` iff
/// `point` is armed and its countdown has elapsed, decrementing the
/// countdown otherwise. Sites call this on the coordinator thread only.
#[inline]
pub fn check(point: &'static str) -> Result<(), MaintainError> {
    if !ANY_ARMED.with(|f| f.get()) {
        return Ok(());
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &'static str) -> Result<(), MaintainError> {
    ARMED.with(|armed| {
        let mut armed = armed.borrow_mut();
        let Some(pos) = armed.iter().position(|(name, _)| *name == point) else {
            return Ok(());
        };
        if armed[pos].1 == 0 {
            armed.swap_remove(pos);
            if armed.is_empty() {
                ANY_ARMED.with(|f| f.set(false));
            }
            Err(MaintainError::Failpoint { point })
        } else {
            armed[pos].1 -= 1;
            Ok(())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass_through() {
        disarm_all();
        assert!(!any_armed());
        assert_eq!(check("pre-drain"), Ok(()));
    }

    #[test]
    fn countdown_fires_on_the_nth_pass_then_disarms() {
        disarm_all();
        arm("mid-round", 2);
        assert_eq!(check("mid-round"), Ok(()));
        assert_eq!(check("pre-drain"), Ok(()), "other sites are unaffected");
        assert_eq!(check("mid-round"), Ok(()));
        assert_eq!(
            check("mid-round"),
            Err(MaintainError::Failpoint { point: "mid-round" })
        );
        assert!(!any_armed(), "a fired point disarms itself");
        assert_eq!(check("mid-round"), Ok(()));
    }

    #[test]
    fn registered_sites_cover_both_layers_without_duplicates() {
        let sites = registered_sites();
        assert_eq!(
            sites.len(),
            SITES.len() + DURABILITY_SITES.len() + SESSION_SITES.len()
        );
        for s in SITES {
            assert!(sites.contains(&s), "{s} missing from registered_sites");
        }
        for s in DURABILITY_SITES {
            assert!(sites.contains(&s), "{s} missing from registered_sites");
        }
        for s in SESSION_SITES {
            assert!(sites.contains(&s), "{s} missing from registered_sites");
        }
        let mut dedup = sites.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sites.len(), "site names must be unique");
    }

    #[test]
    fn rearming_replaces_the_countdown() {
        disarm_all();
        arm("post-cull", 5);
        arm("post-cull", 0);
        assert_eq!(
            check("post-cull"),
            Err(MaintainError::Failpoint { point: "post-cull" })
        );
        disarm_all();
    }
}
