//! An HHK-style dual-simulation algorithm (Henzinger, Henzinger & Kopke
//! \[17\]), adapted to the labeled pattern/data-graph setting of
//! Sect. 3.3.
//!
//! The crux of HHK is the bookkeeping that avoids re-scanning stable
//! candidates: for every pattern edge `(v, a, w)` the algorithm maintains
//! per data node the number of `a`-successors still simulating `w` (and
//! symmetrically predecessors simulating `v`). When a candidate is
//! removed, only the affected counters are decremented, and candidates
//! whose counter reaches zero are removed in turn. This realizes the
//! removal-set maintenance the paper's complexity discussion attributes
//! to HHK; the paper's hypothesis (§3.3) is that in the labeled graph
//! query setting this bookkeeping does not beat the Ma et al. sweep by a
//! wide margin — the ablation benchmark `ablation_baselines` measures it.

use crate::Soi;
use dualsim_bitmatrix::BitVec;
use dualsim_graph::GraphDb;

/// Work counters of one HHK run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HhkStats {
    /// Candidates removed over the whole run.
    pub removals: usize,
    /// Counter decrements performed.
    pub counter_updates: usize,
}

/// Computes the largest dual simulation between the BGP pattern of `soi`
/// and `db` with counter-based removal propagation.
///
/// # Panics
/// Panics if `soi` is not a plain BGP system.
pub fn dual_simulation_hhk(db: &GraphDb, soi: &Soi) -> (Vec<BitVec>, HhkStats) {
    assert!(
        soi.is_plain_bgp(),
        "the HHK baseline only handles plain BGP systems"
    );
    let n = db.num_nodes();
    let mut stats = HhkStats::default();

    // Initial candidates: summary-filtered like Eq. (13) — HHK
    // initializes simulators from local successor structure.
    let mut sim: Vec<BitVec> = soi
        .vars
        .iter()
        .map(|var| match var.pinned {
            Some(Some(node)) => BitVec::from_indices(n, &[node]),
            Some(None) => BitVec::zeros(n),
            None => BitVec::ones(n),
        })
        .collect();
    for e in &soi.edges {
        match e.label {
            Some(a) => {
                sim[e.src].and_assign(db.f_summary(a));
                sim[e.dst].and_assign(db.b_summary(a));
            }
            None => {
                sim[e.src].clear_all();
                sim[e.dst].clear_all();
            }
        }
    }

    // Per pattern edge: fwd_count[u] = |F^a(u) ∩ sim(dst)| governs u's
    // membership in sim(src); bwd_count[o] = |B^a(o) ∩ sim(src)| governs
    // o's membership in sim(dst).
    let mut fwd_counts: Vec<Vec<u32>> = Vec::with_capacity(soi.edges.len());
    let mut bwd_counts: Vec<Vec<u32>> = Vec::with_capacity(soi.edges.len());
    for e in &soi.edges {
        let (mut fc, mut bc) = (vec![0u32; n], vec![0u32; n]);
        if let Some(a) = e.label {
            for (u, o) in db.label_pairs(a) {
                if sim[e.dst].get(o as usize) {
                    fc[u as usize] += 1;
                }
                if sim[e.src].get(u as usize) {
                    bc[o as usize] += 1;
                }
            }
        }
        fwd_counts.push(fc);
        bwd_counts.push(bc);
    }

    // Seed the work list with initially inconsistent candidates.
    let mut queue: Vec<(usize, u32)> = Vec::new();
    for (ei, e) in soi.edges.iter().enumerate() {
        if e.label.is_none() {
            continue;
        }
        let drops: Vec<u32> = sim[e.src]
            .iter_ones()
            .filter(|&u| fwd_counts[ei][u] == 0)
            .map(|u| u as u32)
            .collect();
        for u in drops {
            if sim[e.src].get(u as usize) {
                sim[e.src].clear(u as usize);
                queue.push((e.src, u));
            }
        }
        let drops: Vec<u32> = sim[e.dst]
            .iter_ones()
            .filter(|&o| bwd_counts[ei][o] == 0)
            .map(|o| o as u32)
            .collect();
        for o in drops {
            if sim[e.dst].get(o as usize) {
                sim[e.dst].clear(o as usize);
                queue.push((e.dst, o));
            }
        }
    }

    // Propagate removals through the counters.
    while let Some((pvar, d)) = queue.pop() {
        stats.removals += 1;
        for (ei, e) in soi.edges.iter().enumerate() {
            let Some(a) = e.label else { continue };
            // d left sim(dst): every a-predecessor of d loses one
            // supporting successor for its sim(src) membership.
            if e.dst == pvar {
                for &u in db.in_neighbors(d, a) {
                    stats.counter_updates += 1;
                    let c = &mut fwd_counts[ei][u as usize];
                    *c = c.saturating_sub(1);
                    if *c == 0 && sim[e.src].get(u as usize) {
                        sim[e.src].clear(u as usize);
                        queue.push((e.src, u));
                    }
                }
            }
            // d left sim(src): every a-successor of d loses one
            // supporting predecessor for its sim(dst) membership.
            if e.src == pvar {
                for &o in db.out_neighbors(d, a) {
                    stats.counter_updates += 1;
                    let c = &mut bwd_counts[ei][o as usize];
                    *c = c.saturating_sub(1);
                    if *c == 0 && sim[e.dst].get(o as usize) {
                        sim[e.dst].clear(o as usize);
                        queue.push((e.dst, o));
                    }
                }
            }
        }
    }

    (sim, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::dual_simulation_ma;
    use crate::check::is_largest_solution;
    use crate::{build_sois, solve, SolverConfig};
    use dualsim_graph::{GraphDb, GraphDbBuilder};
    use dualsim_query::parse;

    fn sample_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("c", "p", "a").unwrap();
        b.add_triple("a", "q", "c").unwrap();
        b.add_triple("d", "p", "d").unwrap();
        b.add_triple("e", "q", "a").unwrap();
        b.finish()
    }

    #[test]
    fn hhk_computes_the_largest_solution() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y }",
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x p ?x }",
            "{ ?x q ?y . ?y p ?z }",
        ] {
            let soi = build_sois(&db, &parse(text).unwrap()).remove(0);
            let (chi, _) = dual_simulation_hhk(&db, &soi);
            assert!(is_largest_solution(&db, &soi, &chi), "query {text}");
        }
    }

    #[test]
    fn hhk_agrees_with_ma_and_the_solver() {
        let db = sample_db();
        let cfg = SolverConfig {
            early_exit: false,
            ..SolverConfig::default()
        };
        for text in ["{ ?x p ?y . ?y q ?z }", "{ ?x p ?y . ?y p ?x }"] {
            let soi = build_sois(&db, &parse(text).unwrap()).remove(0);
            let (hhk_chi, _) = dual_simulation_hhk(&db, &soi);
            let (ma_chi, _) = dual_simulation_ma(&db, &soi);
            let sol = solve(&db, &soi, &cfg);
            assert_eq!(hhk_chi, ma_chi, "query {text}");
            assert_eq!(hhk_chi, sol.chi, "query {text}");
        }
    }

    #[test]
    fn hhk_handles_unknown_labels() {
        let db = sample_db();
        let soi = build_sois(&db, &parse("{ ?x nolabel ?y . ?x p ?z }").unwrap()).remove(0);
        let (chi, _) = dual_simulation_hhk(&db, &soi);
        // x and y die from the unknown label; z follows because its
        // p-predecessors must simulate x.
        assert!(chi.iter().all(|c| c.none_set()));
    }

    #[test]
    fn hhk_counts_removals() {
        let db = sample_db();
        let soi = build_sois(&db, &parse("{ ?x p ?y . ?y q ?z }").unwrap()).remove(0);
        let (_, stats) = dual_simulation_hhk(&db, &soi);
        assert!(stats.removals > 0);
    }
}
