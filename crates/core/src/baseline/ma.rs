//! The dual-simulation algorithm of Ma et al. \[20\], adjusted to
//! edge-labeled graphs (Sect. 3.3 of the paper).
//!
//! The algorithm follows the *single passive strategy* the paper
//! criticizes: starting from the full candidate relation `S₀ = V₁ × V₂`,
//! it repeatedly sweeps over **all** pattern edges and **all** current
//! candidates, removing every candidate that violates Def. 2, until a
//! whole sweep makes no change. No work list, no stability tracking, no
//! bit-parallel products — per-candidate adjacency scans only. This is
//! the comparison subject of Table 2.

use crate::Soi;
use dualsim_bitmatrix::BitVec;
use dualsim_graph::GraphDb;

/// Work counters of one Ma et al. run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaStats {
    /// Full sweeps over the pattern edges (the final sweep that detects
    /// stability included).
    pub passes: usize,
    /// Candidate membership checks (the inner `F^a(v') ∩ sim(w) ≠ ∅`
    /// scans).
    pub checks: usize,
    /// Candidates removed.
    pub removals: usize,
}

/// Computes the largest dual simulation between the BGP pattern of `soi`
/// and `db` with the naive fixpoint of Ma et al.
///
/// Constant pinnings are honoured so that results stay comparable with
/// the SOI solver on queries that mention constants.
///
/// # Panics
/// Panics if `soi` is not a plain BGP system (`OPTIONAL` handling is the
/// paper's contribution and has no Ma et al. counterpart).
pub fn dual_simulation_ma(db: &GraphDb, soi: &Soi) -> (Vec<BitVec>, MaStats) {
    assert!(
        soi.is_plain_bgp(),
        "the Ma et al. baseline only handles plain BGP systems"
    );
    let n = db.num_nodes();
    let mut stats = MaStats::default();
    // S₀ = V₁ × V₂ (constants restricted up front).
    let mut sim: Vec<Vec<bool>> = soi
        .vars
        .iter()
        .map(|var| match var.pinned {
            Some(Some(node)) => {
                let mut row = vec![false; n];
                row[node as usize] = true;
                row
            }
            Some(None) => vec![false; n],
            None => vec![true; n],
        })
        .collect();

    loop {
        stats.passes += 1;
        let mut changed = false;
        for e in &soi.edges {
            let Some(a) = e.label else {
                for idx in [e.src, e.dst] {
                    for slot in sim[idx].iter_mut() {
                        if *slot {
                            *slot = false;
                            stats.removals += 1;
                            changed = true;
                        }
                    }
                }
                continue;
            };
            // Def. 2(i): v' must have an a-successor simulating the
            // pattern edge's object.
            for v in 0..n {
                if !sim[e.src][v] {
                    continue;
                }
                stats.checks += 1;
                let ok = db
                    .out_neighbors(v as u32, a)
                    .iter()
                    .any(|&o| sim[e.dst][o as usize]);
                if !ok {
                    sim[e.src][v] = false;
                    stats.removals += 1;
                    changed = true;
                }
            }
            // Def. 2(ii): w' must have an a-predecessor simulating the
            // pattern edge's subject.
            for w in 0..n {
                if !sim[e.dst][w] {
                    continue;
                }
                stats.checks += 1;
                let ok = db
                    .in_neighbors(w as u32, a)
                    .iter()
                    .any(|&u| sim[e.src][u as usize]);
                if !ok {
                    sim[e.dst][w] = false;
                    stats.removals += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let chi = sim
        .into_iter()
        .map(|row| {
            let idx: Vec<u32> = row
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as u32))
                .collect();
            BitVec::from_indices(n, &idx)
        })
        .collect();
    (chi, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_largest_solution;
    use crate::{build_sois, solve, EvalStrategy, IneqOrdering, InitMode, SolverConfig};
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn sample_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("c", "p", "a").unwrap();
        b.add_triple("a", "q", "c").unwrap();
        b.add_triple("d", "p", "d").unwrap();
        b.finish()
    }
    use dualsim_graph::GraphDb;

    #[test]
    fn ma_computes_the_largest_solution() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y }",
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x p ?x }",
        ] {
            let soi = build_sois(&db, &parse(text).unwrap()).remove(0);
            let (chi, _) = dual_simulation_ma(&db, &soi);
            assert!(is_largest_solution(&db, &soi, &chi), "query {text}");
        }
    }

    #[test]
    fn ma_agrees_with_the_soi_solver() {
        let db = sample_db();
        let cfg = SolverConfig {
            strategy: EvalStrategy::Adaptive,
            ordering: IneqOrdering::SparsityFirst,
            init: InitMode::Summaries,
            early_exit: false,
            ..SolverConfig::default()
        };
        for text in [
            "{ ?x p ?y . ?y p ?z }",
            "{ ?x p ?y . ?x q ?z }",
            "{ ?x p ?y . ?y p ?x }",
        ] {
            let soi = build_sois(&db, &parse(text).unwrap()).remove(0);
            let (ma_chi, _) = dual_simulation_ma(&db, &soi);
            let sol = solve(&db, &soi, &cfg);
            assert_eq!(ma_chi, sol.chi, "query {text}");
        }
    }

    #[test]
    fn ma_respects_constants() {
        let db = sample_db();
        let soi = build_sois(&db, &parse("{ ?x p b }").unwrap()).remove(0);
        let (chi, _) = dual_simulation_ma(&db, &soi);
        let x = soi.vars_for("x")[0];
        assert_eq!(chi[x].to_indices(), vec![db.node_id("a").unwrap()]);
    }

    #[test]
    fn ma_counts_work() {
        let db = sample_db();
        let soi = build_sois(&db, &parse("{ ?x p ?y . ?y q ?z }").unwrap()).remove(0);
        let (_, stats) = dual_simulation_ma(&db, &soi);
        assert!(
            stats.passes >= 2,
            "at least one changing and one stable pass"
        );
        assert!(stats.checks > 0);
    }

    #[test]
    #[should_panic(expected = "plain BGP")]
    fn ma_rejects_optional_systems() {
        let db = sample_db();
        let soi = build_sois(&db, &parse("{ ?x p ?y OPTIONAL { ?x q ?z } }").unwrap()).remove(0);
        let _ = dual_simulation_ma(&db, &soi);
    }
}
