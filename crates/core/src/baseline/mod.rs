//! Baseline dual-simulation algorithms the paper compares against
//! (Sect. 3.3 / Table 2).
//!
//! Both baselines accept the same [`crate::Soi`] representation as the
//! fast solver but only for plain BGP systems (no optional variables):
//! the published algorithms operate on pattern graphs, not on SPARQL
//! operators.

mod hhk;
mod ma;

pub use hhk::{dual_simulation_hhk, HhkStats};
pub use ma::{dual_simulation_ma, MaStats};
