//! Dual simulation processing as a system of inequalities (SOI).
//!
//! This crate is the primary contribution of *Fast Dual Simulation
//! Processing of Graph Database Queries* (Mennicke et al., ICDE 2019):
//!
//! * [`Soi`] — the system-of-inequalities representation of a union-free
//!   S-query (Sect. 3.2 for BGPs; Sect. 4 for `AND`/`OPTIONAL`, including
//!   the optional-variable renaming of Lemmas 4/5 and the
//!   syntactically-closest rule of Sect. 4.4, and the Eq.-(12) alteration
//!   for constants of Sect. 4.5);
//! * [`solve`] — the fixpoint solver of Sect. 3.2 with the dynamically
//!   interchangeable evaluation strategies of Sect. 3.3 (row-wise vs.
//!   column-wise `×b`, sparsity-driven inequality ordering), configured
//!   by [`SolverConfig`]; two convergence engines are available
//!   ([`FixpointMode`]): whole-inequality re-evaluation and
//!   delta-counting removal propagation — with lazy per-inequality
//!   counter seeding and a round-based worklist drain that optionally
//!   shards across scoped threads ([`DrainStrategy`]) — which also
//!   powers truly incremental deletion maintenance in
//!   [`IncrementalDualSim`]; χ storage is pluggable per solve
//!   ([`ChiBackend`]: dense bit vectors or run-length encoded ones,
//!   with bit-identical solutions and logical work counters);
//! * [`baseline`] — the comparison algorithms: the passive dual-simulation
//!   algorithm of Ma et al. \[20\] and an HHK-style \[17\] worklist
//!   algorithm with removal counters, both adjusted to labeled graphs;
//! * [`prune`] — per-query database pruning (Sect. 5.2): only triples
//!   that can participate in some dual simulation survive, which by the
//!   soundness theorems (Thm. 1/2) preserves every SPARQL match;
//! * [`check::is_dual_simulation`] — a direct Def.-2 checker used by the
//!   test suite to validate every algorithm against the definition.
//!
//! ```
//! use dualsim_graph::GraphDbBuilder;
//! use dualsim_query::parse;
//! use dualsim_core::{prune, SolverConfig};
//!
//! let mut b = GraphDbBuilder::new();
//! b.add_triple("B. De Palma", "directed", "Mission: Impossible").unwrap();
//! b.add_triple("B. De Palma", "worked_with", "D. Koepp").unwrap();
//! b.add_triple("T. Young", "directed", "Thunderball").unwrap();
//! let db = b.finish();
//!
//! let q = parse("SELECT * WHERE { ?d directed ?m . ?d worked_with ?c }").unwrap();
//! let report = prune(&db, &q, &SolverConfig::default());
//! // T. Young has no worked_with edge, so only De Palma's triples remain.
//! assert_eq!(report.kept_triples.len(), 2);
//! ```

#![warn(missing_docs)]
// Robustness gate: library code must not panic on reachable input
// paths — maintenance errors flow through `MaintainError` and the
// epoch rollback instead. Structural invariants (scoped-thread joins,
// peeked-iterator advances) carry scoped `expect` allows with a
// justification at the site. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod check;
mod delta;
mod durability;
mod errors;
pub mod failpoints;
mod incremental;
mod plan;
mod pruning;
mod quotient;
mod session;
mod soi;
mod solver;
mod strong;

#[cfg(test)]
mod proptests;

pub use durability::{DurabilityOptions, Recovered, RecoveryReport};
pub use errors::{MaintainError, SessionError};
pub use incremental::IncrementalDualSim;
pub use session::{
    BatchReport, HealPath, QueryHealth, QueryOutcome, QueryRecovery, QuerySession,
    SessionDurability, SessionOptions, SessionRecovery, SessionStats,
};
pub use pruning::{
    prune, prune_with, prune_with_threads, solve_query, solve_query_with, PruneReport,
};
pub use plan::SolvePlan;
pub use quotient::QuotientIndex;
pub use soi::{build_sois, build_sois_with, Inequality, PatternEdge, SimulationKind, Soi, SoiVar};
pub use dualsim_bitmatrix::{ChiBackend, ChiVec, KernelBackend, SlabBackend};
pub use solver::{
    solve, solve_from, DrainStrategy, EvalStrategy, FixpointMode, IneqOrdering, InitMode, Solution,
    SolveStats, SolverConfig,
};
pub use strong::{strong_kept_triples, strong_simulation, StrongSimulation, StrongStats};
