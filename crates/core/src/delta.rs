//! The delta-counting fixpoint engine ([`FixpointMode::DeltaCounting`]).
//!
//! The Sect. 3.2 algorithm re-evaluates an *entire* inequality whenever
//! its right-hand-side variable shrank: `×b` re-ORs every CSR row
//! selected by χ(source), even when only a handful of bits were just
//! cleared. This engine instead maintains, for every edge inequality
//! `target ≤ source ×b M`, a **support counter** per candidate node —
//!
//! ```text
//! support[i][w] = |column w of M ∩ χ(source)|
//!               = |{u ∈ χ(source) : M(u, w) = 1}|
//! ```
//!
//! — held in a [`CounterSlab`]. The inequality is satisfied for `w` iff
//! `support[i][w] > 0`, so when bit `u` is cleared from χ(source) the
//! engine walks only `M.row(u)`, decrements the counters of the affected
//! targets, and enqueues every node whose support hits zero for removal
//! from χ(target). Removals cascade through a worklist of
//! `(variable, node)` deltas until it drains: O(degree of the removed
//! node) per removal instead of a whole-inequality re-evaluation. This
//! is the counting bookkeeping of HHK-style simulation algorithms (cf.
//! [`crate::baseline::dual_simulation_hhk`]) lifted to the general SOI
//! setting — subset inequalities, surrogates, constants, forward-only
//! systems and warm starts included.
//!
//! Engineering twists on top of the PR-2 engine:
//!
//! * **Lazy counter seeding.** An edge inequality whose seeded χ
//!   *provably* satisfies it — χ(source) covers every non-empty row of
//!   `M` (so the product is the full column summary) and χ(target) lies
//!   within that summary — defers its `count_into` seeding entirely.
//!   The slab is seeded on *first touch*: the first removal of a source
//!   candidate, or the first retraction reaching the inequality. Cold
//!   solves that never violate an inequality never pay its
//!   `counter_inits` (`seeds_deferred` / `lazy_seeds` in
//!   [`SolveStats`]).
//! * **Sharded draining.** The worklist is drained in *rounds*: each
//!   round freezes χ, shards the pending removals by inequality (the
//!   counter slabs are disjoint per inequality, the same disjointness
//!   `prune_with_threads` exploits for edge units), computes every
//!   shard's decrements and removal proposals independently, and merges
//!   the proposals into χ in inequality order. Under
//!   [`DrainStrategy::Sharded`] the shard phase fans out over
//!   `std::thread::scope` workers; the merge is the only
//!   cross-inequality χ handoff. Sequential and sharded drains execute
//!   the same logical algorithm, so χ **and every work counter** are
//!   bit-identical across strategies and thread counts (pinned by
//!   `crate::proptests`).
//! * **Parallel eager seeding.** The eager seeds at
//!   [`DeltaSolver::from_chi`] are independent per inequality, so under
//!   `SolverConfig::seed_threads > 1` they ride the same
//!   take-slab/scoped-worker/merge machinery as the drain shards —
//!   another cold-solve win on multi-edge queries, invisible to every
//!   counter.
//! * **Pluggable slab storage.** Support counters go through
//!   `SolverConfig::slab_backend` the way χ goes through
//!   `chi_backend`: dense `u32` arrays or sparse hash counters (one
//!   word per supported column, spilling to dense so they never cost
//!   more), with `Auto` resolved from the same seeded-density bound.
//!   `SolveStats::slab_peak_words` gauges the difference.
//! * **Run-aware draining.** Every drain bucket is sorted into
//!   ascending node order (the canonical order all backends share);
//!   under RLE χ a shard then walks the bucket as maximal runs and
//!   resolves one CSR segment (`BitMatrix::rows_segment`) per run
//!   instead of one `M.row(u)` per bit — the identical decrement
//!   sequence with fewer row-pointer loads
//!   (`SolveStats::row_lookups`).
//!
//! Every removal is *forced* (the cleared node violates some inequality
//! in every solution below the current assignment), and the worklist
//! only drains when all counters of kept candidates are positive, i.e.
//! all inequalities hold. The result is therefore the same unique
//! largest solution (Prop. 2) the re-evaluation engine computes.
//!
//! [`DeltaSolver`] keeps its counters alive after convergence, which is
//! what makes truly incremental **two-sided** maintenance possible:
//! [`DeltaSolver::retract_triples`] feeds deleted triples straight into
//! the delta queue (one counter decrement per affected inequality), and
//! [`DeltaSolver::insert_triples`] walks inserted triples the other way
//! — one counter increment per affected inequality, with candidates
//! whose support went 0→1 (plus the inserted endpoints) optimistically
//! re-admitted and the over-approximation culled by the same drain.
//! Neither direction re-runs any per-inequality evaluation — see
//! [`crate::IncrementalDualSim`].
//!
//! [`FixpointMode::DeltaCounting`]: crate::FixpointMode::DeltaCounting
//! [`DrainStrategy::Sharded`]: crate::DrainStrategy::Sharded
//! [`CounterSlab`]: dualsim_bitmatrix::CounterSlab
//! [`SolveStats`]: crate::SolveStats

use crate::errors::MaintainError;
use crate::failpoints;
use crate::plan::SolvePlan;
use crate::solver::{apply_summary_init, chi_words, evaluation_order, seed_chi, split_pair};
use crate::{InitMode, Inequality, SimulationKind, Soi, Solution, SolveStats, SolverConfig};
use dualsim_bitmatrix::{BitMatrix, ChiVec, CounterSlab, SeededSlabState, SlabBackend};
use dualsim_graph::{GraphDb, Triple};

/// One undo record of the epoch rollback journal. Records are appended
/// as the mutation happens and replayed in reverse by
/// [`DeltaSolver::abort_epoch`]; each op's undo is its exact inverse,
/// so a reverse replay restores the pre-epoch χ and counters bit for
/// bit. `counts`, `stats` and the liveness flag are snapshot-restored
/// wholesale instead of op-by-op (they are small and epoch-begin
/// captures them in O(#vars)).
#[derive(Debug, Clone)]
enum JournalOp {
    /// χ\[v\] gained bit w (insertion re-admission); undo: clear it.
    ChiSet { v: u32, w: u32 },
    /// χ\[v\] lost bit w (cull, drain, retraction); undo: set it.
    ChiClear { v: u32, w: u32 },
    /// `support[i][w]` was incremented; undo: decrement. (A sparse slab
    /// that spilled to dense on the increment stays spilled — the spill
    /// is a storage representation, counts and all future logical work
    /// are identical, and the storage gauges are snapshot-restored.)
    SlabInc { i: u32, w: u32 },
    /// `support[i][w]` was decremented; undo: increment.
    SlabDec { i: u32, w: u32 },
    /// `support[i]` was lazily seeded this epoch; undo:
    /// [`CounterSlab::unseed`] (the deferral certificate held before
    /// the batch, so it holds again once the batch is rolled back).
    SlabSeeded { i: u32 },
    /// [`DeltaSolver::kill`] ran (early exit mid-epoch): χ was bulk
    /// cleared, so the undo restores this pre-kill snapshot and the
    /// remaining journal unwinds from there.
    Killed { chi: Vec<ChiVec> },
}

/// The undo state captured by [`DeltaSolver::begin_epoch`] when
/// `SolverConfig::journal` is on.
#[derive(Debug, Clone)]
struct Journal {
    ops: Vec<JournalOp>,
    /// Pre-epoch work counters, restored wholesale on abort (the
    /// robustness counters are then re-bumped on top, so degradations
    /// stay observable across their own rollback).
    stats: SolveStats,
    /// Pre-epoch per-variable candidate counts.
    counts: Vec<usize>,
    /// Pre-epoch liveness.
    dead: bool,
}

/// One in-flight maintenance epoch: every `retract_triples` /
/// `insert_triples` batch runs inside one, so a mid-flight error
/// (failpoint, budget exhaustion) rolls the engine back to the exact
/// pre-batch state instead of leaving half-applied counters.
#[derive(Debug, Clone)]
struct Epoch {
    /// `None` iff `SolverConfig::journal` is off — the epoch then still
    /// scopes the drain budget and failpoints, but an abort cannot
    /// restore state and poisons the engine instead.
    journal: Option<Journal>,
    /// [`SolveStats::work_ops`] at epoch begin: the drain budget bounds
    /// the work *of this batch*, not the engine's lifetime total.
    work_at_begin: usize,
}

/// One-shot entry point used by [`crate::solve_from`] for
/// [`crate::FixpointMode::DeltaCounting`].
pub(crate) fn solve_delta(
    db: &GraphDb,
    soi: &Soi,
    config: &SolverConfig,
    initial_chi: Vec<ChiVec>,
) -> Solution {
    DeltaSolver::from_chi(db, soi, config, initial_chi).solution()
}

#[inline]
fn multiply_matrix(db: &GraphDb, label: u32, forward: bool) -> &BitMatrix {
    if forward {
        db.forward(label)
    } else {
        db.backward(label)
    }
}

/// The deferred-enforcement scan shared by eager seeding, lazy seeding
/// in the drain and lazy seeding during retractions: the candidates of
/// `chi` whose support in `slab` is zero, i.e. the removals a
/// freshly-seeded inequality forces.
fn unsupported<'a>(slab: &'a CounterSlab, chi: &'a ChiVec) -> impl Iterator<Item = u32> + 'a {
    chi.iter_ones()
        .filter(|&w| slab.count(w) == 0)
        .map(|w| w as u32)
}

/// One drain-round work unit: a labeled edge inequality whose source
/// variable shrank this round, with exclusive ownership of its counter
/// slab. Units are processed against a frozen χ — inline or on a scoped
/// worker thread — and report their proposed target removals plus work
/// counters back to the merge step.
#[derive(Debug, Clone)]
struct ShardUnit {
    ineq: u32,
    source: u32,
    target: u32,
    label: u32,
    forward: bool,
    /// Walk the removals as runs of consecutive node ids, one CSR
    /// segment lookup per run ([`BitMatrix::rows_segment`]) — enabled
    /// when χ is RLE, where one round's removals routinely coalesce.
    run_aware: bool,
    slab: CounterSlab,
    /// Target nodes whose support hit zero (candidates to remove).
    proposals: Vec<u32>,
    decrements: usize,
    /// CSR row/segment lookups performed (`SolveStats::row_lookups`).
    row_lookups: usize,
    inits: usize,
    lazy_seeded: bool,
    /// Columns decremented this round, recorded for the rollback
    /// journal (`Some` iff the drain runs inside a journaling epoch);
    /// the merge step folds them into the epoch's undo log on the
    /// coordinator thread.
    journal: Option<Vec<u32>>,
}

impl ShardUnit {
    /// `removals` are this round's cleared nodes of `self.source`, in
    /// ascending node order (the drain sorts every bucket into this
    /// canonical order, so the per-bit and run-aware walks perform the
    /// *identical* decrement sequence — a run's CSR segment is exactly
    /// the concatenation of its rows in ascending order — and every
    /// logical counter stays bit-identical across χ backends).
    fn process(&mut self, db: &GraphDb, removals: &[u32], chi: &[ChiVec]) {
        let matrix = multiply_matrix(db, self.label, self.forward);
        if !self.slab.is_seeded() {
            // First touch of a deferred inequality. χ(source) already
            // excludes this round's removals (bits are cleared before
            // they are enqueued), so the seed absorbs the whole batch
            // and no per-removal decrement may run this round. The
            // deferred enforcement happens here instead: every target
            // candidate without support is proposed for removal.
            self.inits = self.slab.seed(matrix, &chi[self.source as usize]);
            self.lazy_seeded = true;
            self.proposals
                .extend(unsupported(&self.slab, &chi[self.target as usize]));
            return;
        }
        let target = &chi[self.target as usize];
        let run_aware = self.run_aware;
        // Split borrows for the fused drain: the zero-support callback
        // appends proposals while the slab is exclusively borrowed by
        // `decrement_collect`.
        let ShardUnit {
            slab,
            proposals,
            decrements,
            row_lookups,
            journal,
            ..
        } = self;
        // Fused decrement + zero-test: `decrement_collect` hoists the
        // slab-representation dispatch out of the per-column loop and
        // reports zero-support columns during the same walk — same
        // decrement sequence, same journal order, same proposal order
        // as the former per-entry `decrement(w) == 0` form.
        let mut drain = |segment: &[u32]| {
            *decrements += segment.len();
            if let Some(log) = journal.as_mut() {
                log.extend_from_slice(segment);
            }
            slab.decrement_collect(segment, |w| {
                if target.get(w as usize) {
                    proposals.push(w);
                }
            });
        };
        if run_aware {
            // One offset-pair lookup per maximal run of consecutive
            // removed nodes, instead of one row lookup per node.
            let mut i = 0usize;
            while i < removals.len() {
                let mut j = i + 1;
                while j < removals.len() && removals[j] == removals[j - 1] + 1 {
                    j += 1;
                }
                *row_lookups += 1;
                drain(matrix.rows_segment(removals[i] as usize, removals[j - 1] as usize + 1));
                i = j;
            }
        } else {
            for &u in removals {
                *row_lookups += 1;
                drain(matrix.row(u as usize));
            }
        }
    }
}

/// One parallel-seeding work unit of [`DeltaSolver::from_chi`]: an
/// eagerly-seeded edge inequality with exclusive ownership of its (still
/// unseeded) counter slab. Jobs are independent — disjoint slabs, frozen
/// χ, read-only matrices — so they fan out over scoped worker threads
/// exactly like drain shards, and the merge folds `inits` in inequality
/// order (the sum is thread-count independent either way).
struct SeedJob {
    ineq: usize,
    source: usize,
    label: u32,
    forward: bool,
    slab: CounterSlab,
    inits: usize,
}

impl SeedJob {
    fn run(&mut self, db: &GraphDb, chi: &[ChiVec]) {
        let matrix = multiply_matrix(db, self.label, self.forward);
        self.inits = self.slab.seed(matrix, &chi[self.source]);
    }
}

/// The delta-counting engine with persistent state: the current χ, the
/// per-(inequality, candidate) support-counter slabs, and the removal
/// worklist. Constructed through [`DeltaSolver::new`] (cold solve) or
/// [`DeltaSolver::from_chi`] (warm start from a superset of the largest
/// solution); after convergence the state stays valid, so
/// [`DeltaSolver::retract_triples`] can maintain the solution under
/// triple deletions without ever re-seeding.
#[derive(Debug, Clone)]
pub(crate) struct DeltaSolver {
    chi: Vec<ChiVec>,
    counts: Vec<usize>,
    /// `support[i]` for edge inequality `i` with a known label; unseeded
    /// (and for subset / absent-label inequalities: permanently so)
    /// until the inequality is enforced or first touched.
    support: Vec<CounterSlab>,
    /// Pending `(variable, node)` removal deltas (the next drain round's
    /// batch; the bits are already cleared from χ).
    queue: Vec<(u32, u32)>,
    /// Labeled-edge inequality ids per *source* variable: the inverse
    /// index that lets a drain round assemble its shard units in
    /// O(touched variables) instead of scanning every inequality.
    edge_ineqs_by_source: Vec<Vec<u32>>,
    /// Edge inequality ids (absent-label ones included) per *target*
    /// variable: insertion maintenance gates admissions and culls the
    /// optimistic frontier through the constraints that *restrict* a
    /// variable, the mirror view of `edge_ineqs_by_source`.
    edge_ineqs_by_target: Vec<Vec<u32>>,
    /// Subset inequality ids per *sup* variable (the merge step resolves
    /// these inline at their inequality-order position).
    subset_ineqs_by_sup: Vec<Vec<u32>>,
    /// Subset inequality ids per *sub* variable (the cull checks an
    /// admitted candidate against the sup sides it must stay inside).
    subset_ineqs_by_sub: Vec<Vec<u32>>,
    /// Per-round removals grouped by source variable. Persistent
    /// scratch: only the entries of `touched_vars` are ever non-empty,
    /// and they are cleared again at the end of the round, so deep
    /// cascades that clear one candidate per round stop paying
    /// O(#vars) allocations per round.
    by_var: Vec<Vec<u32>>,
    /// The variables whose `by_var` bucket is non-empty this round.
    touched_vars: Vec<u32>,
    /// The round's touched inequality ids, in inequality order.
    agenda: Vec<u32>,
    /// Reusable shard-unit storage (empty between rounds, capacity
    /// kept).
    units: Vec<ShardUnit>,
    /// Recycled proposal buffers handed to new shard units.
    proposal_pool: Vec<Vec<u32>>,
    /// Running Σ `storage_words()` over all χ vectors, maintained
    /// incrementally at every bit clear (an O(1) length read per side),
    /// so the per-round peak sample stays O(1) instead of re-scanning
    /// all variables — deep cascades keep their O(touched)-per-round
    /// cost.
    chi_word_total: usize,
    /// Running Σ `storage_words()` over all counter slabs, updated at
    /// every seed event (eager, lazy in the drain, lazy in a
    /// retraction) — slab storage never changes otherwise, so the peak
    /// sample is O(1) like the χ one.
    slab_word_total: usize,
    /// Drain shards walk removal runs against the matrix CSR instead of
    /// single rows (set when the resolved χ backend is RLE — the
    /// backend under which one round's removals coalesce into runs).
    run_aware: bool,
    /// Cumulative work counters (across the initial solve and every
    /// later retraction).
    stats: SolveStats,
    /// Set once an early exit emptied everything; the state is final and
    /// the counters are no longer meaningful.
    dead: bool,
    /// The in-flight maintenance epoch (`Some` between `begin_epoch`
    /// and commit/abort); cold solves never open one.
    epoch: Option<Epoch>,
    /// Set when a batch was aborted without a trustworthy rollback
    /// (budget exhaustion, rollback failure, journaling off): the state
    /// may be inconsistent, so every further maintenance call refuses
    /// with [`MaintainError::Poisoned`] until the owner rebuilds from a
    /// cold solve.
    poisoned: bool,
}

/// A commit-time callback threaded into a maintenance epoch (see
/// [`DeltaSolver::retract_triples_durable`]): the durability layer's
/// WAL append, run between a successful batch body and the epoch
/// commit so a failed append aborts and rolls back the batch.
pub(crate) type CommitHook<'a> = &'a mut dyn FnMut() -> Result<(), MaintainError>;

/// Serializable state of one support-counter slab: its backend and —
/// once seeded — the counter dimension, sparse-spill status and
/// non-zero entries (the `CounterSlab::export_state` view).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SlabState {
    pub(crate) backend: SlabBackend,
    pub(crate) seeded: Option<SeededSlabState>,
}

/// The full serializable resident state of a [`DeltaSolver`]: what a
/// durability snapshot stores and [`DeltaSolver::from_state`] restores.
/// Scratch buffers, the (always empty between batches) removal queue
/// and the inequality indexes are excluded — the indexes are a pure
/// function of the SOI and are rebuilt on restore.
#[derive(Debug, Clone)]
pub(crate) struct EngineState {
    pub(crate) chi: Vec<ChiVec>,
    pub(crate) slabs: Vec<SlabState>,
    pub(crate) run_aware: bool,
    pub(crate) stats: SolveStats,
    pub(crate) dead: bool,
    pub(crate) poisoned: bool,
}

/// Builds the per-variable inequality indexes from the SOI — shared by
/// the cold-solve constructor and the snapshot restore path.
#[allow(clippy::type_complexity)]
fn build_ineq_indexes(soi: &Soi) -> (Vec<Vec<u32>>, Vec<Vec<u32>>, Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let nv = soi.vars.len();
    let mut edge_ineqs_by_source: Vec<Vec<u32>> = vec![Vec::new(); nv];
    let mut edge_ineqs_by_target: Vec<Vec<u32>> = vec![Vec::new(); nv];
    let mut subset_ineqs_by_sup: Vec<Vec<u32>> = vec![Vec::new(); nv];
    let mut subset_ineqs_by_sub: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (i, ineq) in soi.ineqs.iter().enumerate() {
        match *ineq {
            Inequality::Edge {
                target,
                source,
                label,
                ..
            } => {
                // The target index drives insertion maintenance (the
                // admission gate and the cull); absent-label edges
                // belong there too — they block their target forever
                // — but never react to source removals, so only
                // labeled edges enter the source index.
                edge_ineqs_by_target[target].push(i as u32);
                if label.is_some() {
                    edge_ineqs_by_source[source].push(i as u32);
                }
            }
            Inequality::Subset { sub, sup } => {
                subset_ineqs_by_sup[sup].push(i as u32);
                subset_ineqs_by_sub[sub].push(i as u32);
            }
        }
    }
    (
        edge_ineqs_by_source,
        edge_ineqs_by_target,
        subset_ineqs_by_sup,
        subset_ineqs_by_sub,
    )
}

impl DeltaSolver {
    /// Cold solve: seeds χ from Eq. (12) plus constant pinning.
    pub(crate) fn new(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> Self {
        Self::from_chi(db, soi, config, seed_chi(db, soi, config))
    }

    /// The engine's serializable resident state, for durability
    /// snapshots. Must not be called mid-epoch (the queue would be
    /// non-empty and the journal un-serialized); between batches both
    /// are structurally empty.
    pub(crate) fn export_state(&self) -> EngineState {
        debug_assert!(self.epoch.is_none(), "no snapshot mid-epoch");
        debug_assert!(self.queue.is_empty(), "worklist drained between batches");
        EngineState {
            chi: self.chi.clone(),
            slabs: self
                .support
                .iter()
                .map(|slab| SlabState {
                    backend: slab.backend(),
                    seeded: slab.export_state(),
                })
                .collect(),
            run_aware: self.run_aware,
            stats: self.stats.clone(),
            dead: self.dead,
            poisoned: self.poisoned,
        }
    }

    /// Rebuilds an engine from a snapshot's [`EngineState`]: χ and the
    /// slabs are restored bit-identically (backend included — `Auto`
    /// was resolved before the original engine existed, so no
    /// re-resolution happens here), the inequality indexes are rebuilt
    /// from the SOI, candidate counts are recomputed from χ, and the
    /// scratch state starts empty exactly as it is between batches.
    pub(crate) fn from_state(soi: &Soi, state: EngineState) -> Result<Self, MaintainError> {
        let nv = soi.vars.len();
        if state.chi.len() != nv {
            return Err(MaintainError::Corrupt {
                detail: format!(
                    "engine state has {} χ vectors for {} SOI variables",
                    state.chi.len(),
                    nv
                ),
            });
        }
        if state.slabs.len() != soi.ineqs.len() {
            return Err(MaintainError::Corrupt {
                detail: format!(
                    "engine state has {} slabs for {} inequalities",
                    state.slabs.len(),
                    soi.ineqs.len()
                ),
            });
        }
        let support: Vec<CounterSlab> = state
            .slabs
            .into_iter()
            .map(|s| match s.seeded {
                Some((dim, spilled, entries)) => {
                    CounterSlab::restore(s.backend, dim, spilled, &entries)
                }
                None => CounterSlab::unseeded(s.backend),
            })
            .collect();
        let counts: Vec<usize> = state.chi.iter().map(ChiVec::count_ones).collect();
        let chi_word_total = chi_words(&state.chi);
        let slab_word_total = support.iter().map(CounterSlab::storage_words).sum();
        let (edge_ineqs_by_source, edge_ineqs_by_target, subset_ineqs_by_sup, subset_ineqs_by_sub) =
            build_ineq_indexes(soi);
        Ok(DeltaSolver {
            chi: state.chi,
            counts,
            support,
            queue: Vec::new(),
            edge_ineqs_by_source,
            edge_ineqs_by_target,
            subset_ineqs_by_sup,
            subset_ineqs_by_sub,
            by_var: vec![Vec::new(); nv],
            touched_vars: Vec::new(),
            agenda: Vec::new(),
            units: Vec::new(),
            proposal_pool: Vec::new(),
            chi_word_total,
            slab_word_total,
            run_aware: state.run_aware,
            stats: state.stats,
            dead: state.dead,
            epoch: None,
            poisoned: state.poisoned,
        })
    }

    /// Warm start: converges from a caller-provided superset of the
    /// largest solution (same contract as [`crate::solve_from`]).
    pub(crate) fn from_chi(
        db: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        mut chi: Vec<ChiVec>,
    ) -> Self {
        let nv = soi.vars.len();
        assert_eq!(chi.len(), nv, "one χ per SOI variable");
        apply_summary_init(db, soi, config, &mut chi);
        let counts: Vec<usize> = chi.iter().map(ChiVec::count_ones).collect();
        let mut stats = SolveStats {
            initial_candidates: counts.iter().sum(),
            ..SolveStats::default()
        };
        // One plan resolution pins every pluggable axis — χ backend,
        // slab backend, drain, word kernel — for the whole engine
        // lifetime; the hot loops below never re-decide.
        let plan = SolvePlan::resolve(config, stats.initial_candidates, nv, db.num_nodes());
        plan.install_kernel();
        plan.apply_chi(&mut chi);
        let chi_word_total = chi_words(&chi);
        stats.observe_chi_words(chi_word_total);

        let (edge_ineqs_by_source, edge_ineqs_by_target, subset_ineqs_by_sup, subset_ineqs_by_sub) =
            build_ineq_indexes(soi);

        let mut solver = DeltaSolver {
            chi,
            counts,
            support: vec![CounterSlab::unseeded(plan.slab); soi.ineqs.len()],
            queue: Vec::new(),
            edge_ineqs_by_source,
            edge_ineqs_by_target,
            subset_ineqs_by_sup,
            subset_ineqs_by_sub,
            by_var: vec![Vec::new(); nv],
            touched_vars: Vec::new(),
            agenda: Vec::new(),
            units: Vec::new(),
            proposal_pool: Vec::new(),
            chi_word_total,
            slab_word_total: 0,
            run_aware: plan.run_aware,
            stats,
            dead: false,
            epoch: None,
            poisoned: false,
        };

        // A mandatory variable may be empty straight after initialization
        // (unknown constant, missing predicate support).
        for (v, var) in soi.vars.iter().enumerate() {
            if solver.counts[v] == 0 && var.mandatory {
                solver.stats.emptied_mandatory = true;
                if config.early_exit {
                    solver.kill();
                    return solver;
                }
            }
        }

        // Counter slabs for the inequalities that need them, seeded from
        // the initial χ — *before* any enforcement clears a bit, so
        // every later removal reaches the counters exclusively through
        // the worklist and the invariant
        // `support[i][w] = |column w ∩ (χ(source) ∪ pending removals)|`
        // holds. An edge inequality that the seeded χ provably satisfies
        // — χ(source) covers every non-empty matrix row, so the product
        // is the whole column summary, and χ(target) lies within it —
        // defers both its seeding and its enforcement to the first touch
        // by a removal (the deferral stays sound because any later
        // shrink of χ(source) goes through the worklist and seeds it).
        //
        // The eager seeds are independent per inequality — disjoint
        // slabs, frozen χ, read-only matrices — so under
        // `SolverConfig::seed_threads > 1` they fan out over scoped
        // worker threads through the same take-slab/merge machinery the
        // drain shards use; `counter_inits` folds in inequality order
        // and is bit-identical for every thread count.
        let mut deferred = vec![false; soi.ineqs.len()];
        let mut jobs: Vec<SeedJob> = Vec::new();
        for (i, ineq) in soi.ineqs.iter().enumerate() {
            let Inequality::Edge {
                target,
                source,
                label: Some(a),
                forward,
            } = *ineq
            else {
                continue;
            };
            let matrix = multiply_matrix(db, a, forward);
            let column_summary = multiply_matrix(db, a, !forward).row_summary();
            if solver.chi[source].covers_dense(matrix.row_summary())
                && solver.chi[target].is_subset_of_dense(column_summary)
            {
                solver.stats.seeds_deferred += 1;
                deferred[i] = true;
            } else {
                jobs.push(SeedJob {
                    ineq: i,
                    source,
                    label: a,
                    forward,
                    slab: std::mem::take(&mut solver.support[i]),
                    inits: 0,
                });
            }
        }
        let seed_workers = config.seed_threads.max(1).min(jobs.len());
        if seed_workers <= 1 {
            for job in &mut jobs {
                job.run(db, &solver.chi);
            }
        } else {
            let chi = &solver.chi;
            let chunk = jobs.len().div_ceil(seed_workers);
            std::thread::scope(|scope| {
                for shard in jobs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for job in shard {
                            job.run(db, chi);
                        }
                    });
                }
            });
        }
        for job in jobs {
            solver.stats.counter_inits += job.inits;
            solver.slab_word_total += job.slab.storage_words();
            solver.support[job.ineq] = job.slab;
        }
        solver.stats.observe_slab_words(solver.slab_word_total);

        // Enforce every non-deferred inequality once (the seeded χ may
        // violate them), turning each violation into queued removal
        // deltas.
        let mut removed: Vec<u32> = Vec::new();
        let mut early = false;
        'seed: for &i in &evaluation_order(db, soi, config) {
            if deferred[i as usize] {
                continue;
            }
            solver.stats.evaluations += 1;
            removed.clear();
            let target = match soi.ineqs[i as usize] {
                Inequality::Edge {
                    target, label: None, ..
                } => {
                    // Empty matrix: the product is the zero vector.
                    removed.extend(solver.chi[target].iter_ones().map(|w| w as u32));
                    target
                }
                Inequality::Edge {
                    target,
                    label: Some(_),
                    ..
                } => {
                    removed.extend(unsupported(
                        &solver.support[i as usize],
                        &solver.chi[target],
                    ));
                    target
                }
                Inequality::Subset { sub, sup } => {
                    let words_before = solver.chi[sub].storage_words();
                    let (sup_chi, sub_chi) = split_pair(&mut solver.chi, sup, sub);
                    sub_chi.drain_cleared(sup_chi, &mut removed);
                    solver.chi_word_total =
                        solver.chi_word_total - words_before + solver.chi[sub].storage_words();
                    // drain_cleared already cleared the bits; enqueue
                    // without re-clearing.
                    for &w in &removed {
                        if solver.remove_cleared_bit(soi, config, sub, w) {
                            early = true;
                            break 'seed;
                        }
                    }
                    continue;
                }
            };
            for &w in &removed {
                solver.clear_chi_bit(target, w as usize);
                if solver.remove_cleared_bit(soi, config, target, w) {
                    early = true;
                    break 'seed;
                }
            }
        }

        // Seed enforcement can split RLE runs; sample before draining.
        solver.stats.observe_chi_words(solver.chi_word_total);
        // A cold solve runs outside any epoch, so the drain can neither
        // hit the budget nor a failpoint — the Err arm is unreachable.
        if early || solver.drain(db, soi, config).unwrap_or(false) {
            solver.kill();
        } else if !soi.ineqs.is_empty() {
            // The worklist-drain equivalent of one stabilization pass.
            solver.stats.iterations = 1;
        }
        solver.stats.final_candidates = solver.counts.iter().sum();
        solver
    }

    /// Snapshot of the current (converged) state.
    pub(crate) fn solution(&self) -> Solution {
        Solution {
            chi: self.chi.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Maintains the largest solution after the given triples were
    /// **deleted**: `db_after` must be the previous database minus
    /// `deleted` (duplicates within the batch are ignored — a triple can
    /// only leave the edge relation once). Every deleted triple
    /// decrements the support counters of the inequalities it fed —
    /// O(#inequalities) per triple — and nodes whose support hits zero
    /// cascade through the regular delta worklist. No inequality is ever
    /// re-evaluated wholesale; a still-deferred inequality is seeded on
    /// this first touch, against the post-deletion matrices.
    ///
    /// The batch runs inside an update epoch: on any mid-flight error
    /// (failpoint, drain-budget exhaustion) the rollback journal
    /// restores the exact pre-batch state and the error is returned —
    /// χ, counters and the logical stats are bit-identical to before
    /// the call. Out-of-vocabulary triples are rejected up front, state
    /// untouched. A poisoned engine refuses immediately.
    #[cfg(test)]
    pub(crate) fn retract_triples(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        deleted: &[Triple],
    ) -> Result<(), MaintainError> {
        self.retract_triples_durable(db_after, soi, config, deleted, None)
    }

    /// [`Self::retract_triples`] with a commit hook threaded into the
    /// epoch: the hook (the WAL append of the durability layer) runs
    /// after the batch body succeeded but *before* the epoch commits,
    /// so a failing hook aborts the epoch and the in-memory batch rolls
    /// back with it — a batch is committed iff its log record is.
    pub(crate) fn retract_triples_durable(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        deleted: &[Triple],
        hook: Option<CommitHook<'_>>,
    ) -> Result<(), MaintainError> {
        if self.poisoned {
            return Err(MaintainError::Poisoned);
        }
        if self.dead {
            // Early-exited: the empty solution is final. The database
            // still evolved, though, so a durable caller logs the batch
            // — recovery must replay the same triple history.
            return match hook {
                Some(h) => h(),
                None => Ok(()),
            };
        }
        validate_batch(db_after, deleted)?;
        self.begin_epoch(config);
        let result = self.retract_inner(db_after, soi, config, deleted);
        self.finish_epoch(result, hook)
    }

    /// The epoch body of [`Self::retract_triples`]; every `?` inside is
    /// an abort point the wrapper rolls back.
    fn retract_inner(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        deleted: &[Triple],
    ) -> Result<(), MaintainError> {
        // A duplicated triple must not decrement twice: the edge
        // relation is a set, so the matrix lost the entry exactly once.
        let mut batch: Vec<Triple> = deleted.to_vec();
        batch.sort_unstable();
        batch.dedup();
        self.stats.iterations += 1;
        // Phase 1: take back the deleted entries' counter contributions.
        // No χ bit is cleared in this phase, so "u is still a source
        // candidate" is exactly "u's +1 is still in the counter" (a node
        // removed *earlier* had its contribution walked out against the
        // then-current matrices, which still contained this batch's
        // entries). Clearing eagerly here would break that equivalence
        // for inequalities visited later in the same batch.
        //
        // A deferred (unseeded) inequality is seeded here against the
        // *post-deletion* matrix, which already excludes the entire
        // batch — so none of this batch's triples may decrement it
        // (tracked by `seeded_this_batch`), and the deferred enforcement
        // runs instead: target candidates without support are zeroed.
        let mut zeroed: Vec<(usize, u32)> = Vec::new();
        let mut seeded_this_batch = vec![false; soi.ineqs.len()];
        for t in &batch {
            failpoints::check("counter-increment")?;
            for (i, ineq) in soi.ineqs.iter().enumerate() {
                let Inequality::Edge {
                    target,
                    source,
                    label: Some(a),
                    forward,
                } = *ineq
                else {
                    continue;
                };
                if a != t.p || seeded_this_batch[i] {
                    continue;
                }
                if !self.support[i].is_seeded() {
                    let matrix = multiply_matrix(db_after, a, forward);
                    let inits = self.support[i].seed(matrix, &self.chi[source]);
                    self.stats.counter_inits += inits;
                    self.stats.lazy_seeds += 1;
                    self.slab_word_total += self.support[i].storage_words();
                    self.journal_op(JournalOp::SlabSeeded { i: i as u32 });
                    seeded_this_batch[i] = true;
                    zeroed.extend(
                        unsupported(&self.support[i], &self.chi[target]).map(|w| (target, w)),
                    );
                    continue;
                }
                // The multiply matrix M lost entry (u, w).
                let (u, w) = if forward { (t.s, t.o) } else { (t.o, t.s) };
                if !self.chi[source].get(u as usize) {
                    continue;
                }
                self.stats.counter_decrements += 1;
                self.journal_op(JournalOp::SlabDec {
                    i: i as u32,
                    w,
                });
                if self.support[i].decrement(w as usize) == 0 {
                    zeroed.push((target, w));
                }
            }
        }
        // Phase 2: the zero-support candidates are forced removals;
        // cascade them through the worklist against the post-deletion
        // matrices.
        let mut early = false;
        for (target, w) in zeroed {
            if self.chi[target].get(w as usize) {
                self.clear_chi_bit(target, w as usize);
                if self.remove_cleared_bit(soi, config, target, w) {
                    early = true;
                    break;
                }
            }
        }
        failpoints::check("pre-drain")?;
        if early || self.drain(db_after, soi, config)? {
            self.kill();
        }
        self.stats.observe_chi_words(self.chi_word_total);
        self.stats.observe_slab_words(self.slab_word_total);
        self.stats.final_candidates = self.counts.iter().sum();
        Ok(())
    }

    /// Maintains the largest solution after the given triples were
    /// **inserted**: `db_after` must be the previous database plus
    /// `inserted` (triples not previously present; duplicates within the
    /// batch are ignored). Two phases, the mirror image of
    /// [`Self::retract_triples`]:
    ///
    /// 1. **Counter walk.** Every inserted triple increments the support
    ///    counters of the inequalities it feeds — O(#inequalities) per
    ///    triple, *before* any χ change, so the counter invariant is
    ///    restored against the post-insertion matrices first. A
    ///    still-deferred inequality is seeded on this first touch
    ///    against `db_after`, which already contains the whole batch —
    ///    so none of this batch's entries may increment it again
    ///    (`seeded_this_batch`, the discipline retraction established);
    ///    their 0→1 signals were absorbed by the seed, so each batch
    ///    entry instead gets a direct frontier check. No deferred
    ///    enforcement is needed here: the matrix only *grew*, so the
    ///    deferral certificate still holds.
    /// 2. **Re-activation frontier.** A candidate whose support went
    ///    0→1, and every endpoint of an inserted triple, *may* have
    ///    joined the solution. Each is optimistically re-admitted into
    ///    χ — gated by the exact Eq.-(12)/(13) seed predicate against
    ///    `db_after` — and admissions cascade: an admitted source
    ///    candidate supports new columns (walking one CSR row per
    ///    seeded inequality, like a removal in reverse), an admitted
    ///    `sup` candidate may re-admit its `sub` twin. Unseeded slabs
    ///    are skipped: their covers certificate says every non-empty
    ///    column is already supported, so no 0→1 can happen there. The
    ///    closure over-approximates the new largest solution; a cull
    ///    pass removes admitted candidates that violate an inequality
    ///    (zero support, absent label, outside their `sup`) and the
    ///    standard removal drain — unchanged — cascades the rest out.
    ///    Pre-existing candidates are never removed: their support only
    ///    grew, so the drain cannot reach them, and the result is
    ///    exactly the largest solution under `db_after` at cost
    ///    proportional to the inserted triples' neighbourhood instead
    ///    of a cold re-solve.
    ///
    /// Returns `Ok(false)` iff the engine is dead (a previous early exit
    /// emptied the state for good; insertions can revive a legitimately
    /// empty solution, but a killed engine discarded the counters the
    /// revival would need) — the caller must then fall back to a cold
    /// solve. The state is untouched in that case.
    ///
    /// Like [`Self::retract_triples`], the batch runs inside an update
    /// epoch: any mid-flight error rolls back to the exact pre-batch
    /// state before the error is returned, out-of-vocabulary triples
    /// are rejected up front, and a poisoned engine refuses
    /// immediately.
    #[cfg(test)]
    pub(crate) fn insert_triples(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        inserted: &[Triple],
    ) -> Result<bool, MaintainError> {
        self.insert_triples_durable(db_after, soi, config, inserted, None)
    }

    /// [`Self::insert_triples`] with a commit hook threaded into the
    /// epoch — same contract as [`Self::retract_triples_durable`]. The
    /// dead-engine fallback (`Ok(false)`) runs **no** hook: the caller
    /// serves that batch by a cold rebuild and logs it there.
    pub(crate) fn insert_triples_durable(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        inserted: &[Triple],
        hook: Option<CommitHook<'_>>,
    ) -> Result<bool, MaintainError> {
        if self.poisoned {
            return Err(MaintainError::Poisoned);
        }
        if self.dead {
            return Ok(false);
        }
        if inserted.is_empty() {
            // Nothing to do in memory, but the batch still occupies an
            // epoch id in the log — record it so recovery replays the
            // identical (empty) step sequence.
            return match hook {
                Some(h) => h(),
                None => Ok(()),
            }
            .map(|()| true);
        }
        validate_batch(db_after, inserted)?;
        self.begin_epoch(config);
        let result = self.insert_inner(db_after, soi, config, inserted);
        self.finish_epoch(result, hook)?;
        Ok(true)
    }

    /// The epoch body of [`Self::insert_triples`]; every `?` inside is
    /// an abort point the wrapper rolls back.
    fn insert_inner(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        inserted: &[Triple],
    ) -> Result<(), MaintainError> {
        // The edge relation is a set: a duplicated triple entered the
        // matrix once and must count once.
        let mut batch: Vec<Triple> = inserted.to_vec();
        batch.sort_unstable();
        batch.dedup();
        debug_assert!(
            batch.iter().all(|&t| db_after.contains_triple(t)),
            "inserted triples must be present in db_after"
        );
        self.stats.iterations += 1;

        // Phase 1: credit the inserted entries to the counters. No χ
        // bit changes in this phase, so "u is a source candidate" is
        // exactly "u's +1 belongs in the counter", for every inequality
        // uniformly — the same freeze retraction relies on.
        let mut attempts: Vec<(usize, u32)> = Vec::new();
        let mut seeded_this_batch = vec![false; soi.ineqs.len()];
        for t in &batch {
            failpoints::check("counter-increment")?;
            for (i, ineq) in soi.ineqs.iter().enumerate() {
                let Inequality::Edge {
                    target,
                    source,
                    label: Some(a),
                    forward,
                } = *ineq
                else {
                    continue;
                };
                if a != t.p {
                    continue;
                }
                // The multiply matrix M gained entry (u, w).
                let (u, w) = if forward { (t.s, t.o) } else { (t.o, t.s) };
                if !self.support[i].is_seeded() && !seeded_this_batch[i] {
                    // First touch of a deferred inequality: seed against
                    // the post-insertion matrix, which contains the
                    // whole batch already. M only grew since the
                    // deferral, so the covers certificate still holds
                    // and no deferred enforcement is due.
                    let matrix = multiply_matrix(db_after, a, forward);
                    let inits = self.support[i].seed(matrix, &self.chi[source]);
                    self.stats.counter_inits += inits;
                    self.stats.lazy_seeds += 1;
                    self.slab_word_total += self.support[i].storage_words();
                    self.journal_op(JournalOp::SlabSeeded { i: i as u32 });
                    seeded_this_batch[i] = true;
                }
                if seeded_this_batch[i] {
                    // The seed absorbed this entry's +1 — and with it
                    // the 0→1 signal, so check the frontier directly.
                    // (Harmless over-approximation: the cull keeps only
                    // genuinely supported admissions.)
                    if self.chi[source].get(u as usize) && !self.chi[target].get(w as usize) {
                        attempts.push((target, w));
                    }
                    continue;
                }
                if !self.chi[source].get(u as usize) {
                    continue;
                }
                if self.bump_support(i, w as usize) == 1 && !self.chi[target].get(w as usize) {
                    attempts.push((target, w));
                }
            }
        }

        // Every endpoint of an inserted triple joins the frontier
        // unconditionally: a set of candidates that re-enters the
        // solution *only by supporting each other through inserted
        // edges* produces no 0→1 transition from the outside, but any
        // such mutual support is witnessed by an inserted edge between
        // its members — whose endpoints land here. (Forward simulation
        // leaves objects unconstrained by incoming edges, so only the
        // dual kind re-admits the object side — mirroring
        // `apply_summary_init`.)
        let dual = soi.kind == SimulationKind::Dual;
        for t in &batch {
            for e in &soi.edges {
                if e.label == Some(t.p) {
                    attempts.push((e.src, t.s));
                    if dual {
                        attempts.push((e.dst, t.o));
                    }
                }
            }
        }

        // The admission gate: exactly the Eq.-(12)/(13) seed predicate
        // of `seed_chi` + `apply_summary_init`, evaluated against
        // `db_after` — the new largest solution lies inside the new
        // seed, so gating never rejects a true member.
        let mut incident: Vec<Vec<(Option<u32>, bool)>> = vec![Vec::new(); soi.vars.len()];
        for e in &soi.edges {
            incident[e.src].push((e.label, true));
            if dual {
                incident[e.dst].push((e.label, false));
            }
        }
        let admissible = |v: usize, w: u32| -> bool {
            match soi.vars[v].pinned {
                Some(Some(node)) => w == node,
                Some(None) => false,
                None => {
                    config.init != InitMode::Summaries
                        || incident[v].iter().all(|&(label, is_src)| match label {
                            None => false,
                            Some(a) if is_src => db_after.f_summary(a).get(w as usize),
                            Some(a) => db_after.b_summary(a).get(w as usize),
                        })
                }
            }
        };

        // Phase 2: cascade the optimistic re-admissions to closure.
        let mut admitted: Vec<(usize, u32)> = Vec::new();
        while let Some((v, w)) = attempts.pop() {
            if self.chi[v].get(w as usize) || !admissible(v, w) {
                continue;
            }
            self.set_chi_bit(v, w as usize);
            self.counts[v] += 1;
            self.stats.reactivations += 1;
            admitted.push((v, w));
            // The new candidate supports one more row of every seeded
            // inequality sourced at v; walk it like a removal in
            // reverse. Unseeded slabs stay untouched: covers means
            // every non-empty column is supported already, so no 0→1
            // transition is possible there.
            for idx in 0..self.edge_ineqs_by_source[v].len() {
                let i = self.edge_ineqs_by_source[v][idx] as usize;
                if !self.support[i].is_seeded() {
                    continue;
                }
                let Inequality::Edge {
                    target,
                    label: Some(a),
                    forward,
                    ..
                } = soi.ineqs[i]
                else {
                    unreachable!("edge_ineqs_by_source holds labeled edges only");
                };
                self.stats.row_lookups += 1;
                let matrix = multiply_matrix(db_after, a, forward);
                for &c in matrix.row(w as usize) {
                    if self.bump_support(i, c as usize) == 1 && !self.chi[target].get(c as usize) {
                        attempts.push((target, c));
                    }
                }
            }
            // An admitted sup candidate may free its optional twin.
            for idx in 0..self.subset_ineqs_by_sup[v].len() {
                let i = self.subset_ineqs_by_sup[v][idx] as usize;
                let Inequality::Subset { sub, .. } = soi.ineqs[i] else {
                    unreachable!("subset_ineqs_by_sup holds subset inequalities only");
                };
                if !self.chi[sub].get(w as usize) {
                    attempts.push((sub, w));
                }
            }
        }
        debug_assert_eq!(
            self.chi_word_total,
            chi_words(&self.chi),
            "incremental χ-word accounting drifted across re-admission"
        );
        // The cascade's peak is the insertion high-water mark: the cull
        // and drain only shrink χ from here.
        self.stats.observe_chi_words(self.chi_word_total);
        self.stats.observe_slab_words(self.slab_word_total);

        // Cull: remove admitted candidates that violate an inequality
        // through the target-side indexes. Counters still include the
        // contributions of already-culled bits — the drain's queue
        // discipline ("bits cleared, decrements pending") — so a
        // survivor leaning on a culled bit is cascaded out by the drain
        // below, never kept.
        let mut early = false;
        'cull: for &(v, w) in &admitted {
            if !self.chi[v].get(w as usize) {
                continue; // culled already via a subset sup side
            }
            let mut violated = false;
            for idx in 0..self.edge_ineqs_by_target[v].len() {
                let i = self.edge_ineqs_by_target[v][idx] as usize;
                match soi.ineqs[i] {
                    Inequality::Edge { label: None, .. } => violated = true,
                    Inequality::Edge {
                        label: Some(a),
                        forward,
                        ..
                    } => {
                        if self.support[i].is_seeded() {
                            violated = self.support[i].count(w as usize) == 0;
                        } else {
                            // Covers certificate: the unseeded slab's
                            // source χ covers every non-empty row, so
                            // column w is supported iff it is non-empty
                            // (= row w of the transposed matrix).
                            self.stats.row_lookups += 1;
                            violated = multiply_matrix(db_after, a, !forward)
                                .row(w as usize)
                                .is_empty();
                        }
                    }
                    Inequality::Subset { .. } => {
                        unreachable!("edge_ineqs_by_target holds edge inequalities only")
                    }
                }
                if violated {
                    break;
                }
            }
            if !violated {
                for idx in 0..self.subset_ineqs_by_sub[v].len() {
                    let i = self.subset_ineqs_by_sub[v][idx] as usize;
                    let Inequality::Subset { sup, .. } = soi.ineqs[i] else {
                        unreachable!("subset_ineqs_by_sub holds subset inequalities only");
                    };
                    if !self.chi[sup].get(w as usize) {
                        violated = true;
                        break;
                    }
                }
            }
            if violated {
                self.clear_chi_bit(v, w as usize);
                if self.remove_cleared_bit(soi, config, v, w) {
                    // Unreachable in practice: the cull never drops a
                    // count below its pre-batch value, and a live
                    // early-exit engine keeps every mandatory variable
                    // non-empty. Kept as defense in depth.
                    early = true;
                    break 'cull;
                }
            }
        }
        failpoints::check("post-cull")?;
        failpoints::check("pre-drain")?;
        if early || self.drain(db_after, soi, config)? {
            self.kill();
        }
        // `emptied_mandatory` is sticky across retractions by design
        // (the solve *became* empty), but an insertion can revive a
        // legitimately empty solution under `early_exit: false` —
        // recompute it from the live counts.
        self.stats.emptied_mandatory = soi
            .vars
            .iter()
            .enumerate()
            .any(|(v, var)| var.mandatory && self.counts[v] == 0);
        self.stats.observe_chi_words(self.chi_word_total);
        self.stats.observe_slab_words(self.slab_word_total);
        self.stats.final_candidates = self.counts.iter().sum();
        Ok(())
    }

    /// Clears bit `w` of `chi[v]` and folds the storage-word delta into
    /// the running total (an RLE clear can split a run, +1 word, or
    /// drop one, −1; dense never changes).
    fn clear_chi_bit(&mut self, v: usize, w: usize) {
        let before = self.chi[v].storage_words();
        self.chi[v].clear(w);
        self.chi_word_total = self.chi_word_total - before + self.chi[v].storage_words();
        self.journal_op(JournalOp::ChiClear {
            v: v as u32,
            w: w as u32,
        });
    }

    /// Sets bit `w` of `chi[v]` and folds the storage-word delta into
    /// the running total (an RLE set can bridge two runs, −1 word,
    /// extend one, ±0, or open a new one, +1; dense never changes) —
    /// the mirror of [`Self::clear_chi_bit`].
    fn set_chi_bit(&mut self, v: usize, w: usize) {
        let before = self.chi[v].storage_words();
        self.chi[v].set(w);
        self.chi_word_total = self.chi_word_total - before + self.chi[v].storage_words();
        self.journal_op(JournalOp::ChiSet {
            v: v as u32,
            w: w as u32,
        });
    }

    /// Increments `support[i][w]` (the slab must be seeded) and folds
    /// the storage-word delta into the running slab total — a sparse
    /// slab may add a tracked column or spill to dense. Returns the new
    /// count, so the caller can react to the 0→1 frontier signal.
    fn bump_support(&mut self, i: usize, w: usize) -> u32 {
        self.stats.counter_increments += 1;
        let before = self.support[i].storage_words();
        let count = self.support[i].increment(w);
        self.slab_word_total = self.slab_word_total - before + self.support[i].storage_words();
        self.journal_op(JournalOp::SlabInc {
            i: i as u32,
            w: w as u32,
        });
        count
    }

    /// Appends one undo record to the epoch journal. Outside an epoch —
    /// or with journaling off — this is a branch and nothing else, so
    /// cold solves pay (almost) nothing for passing through the
    /// journaled mutation helpers.
    #[inline]
    fn journal_op(&mut self, op: JournalOp) {
        if let Some(epoch) = &mut self.epoch {
            if let Some(journal) = &mut epoch.journal {
                journal.ops.push(op);
                self.stats.journal_entries += 1;
            }
        }
    }

    /// Bookkeeping for a bit that the caller just cleared from `chi[v]`:
    /// counts, stats, worklist, mandatory-emptiness. Returns `true` iff
    /// the solve must early-exit (the caller then invokes [`Self::kill`]).
    fn remove_cleared_bit(&mut self, soi: &Soi, config: &SolverConfig, v: usize, w: u32) -> bool {
        self.counts[v] -= 1;
        self.stats.updates += 1;
        self.queue.push((v as u32, w));
        if self.counts[v] == 0 && soi.vars[v].mandatory {
            self.stats.emptied_mandatory = true;
            if config.early_exit {
                return true;
            }
        }
        false
    }

    /// Drains the removal worklist in rounds. Each round freezes χ,
    /// shards the pending removals by inequality, runs the shard phase
    /// (inline or across scoped threads, per [`SolverConfig::drain`] —
    /// the logical work is identical either way), and merges the
    /// proposed removals back into χ in inequality order. Returns
    /// `Ok(true)` iff an early exit triggered (the state must then be
    /// killed).
    ///
    /// Inside a maintenance epoch every round boundary is a cooperative
    /// cancellation point: the epoch's work budget
    /// ([`SolverConfig::drain_budget`]) is checked before the round's
    /// removals are taken, and the `mid-round` failpoint fires there
    /// too. Outside an epoch (cold solves) neither check runs and the
    /// `Err` arm is unreachable.
    ///
    /// Two invisible-to-the-counters engineering details:
    ///
    /// * **O(touched) round assembly.** The round's shard units and
    ///   merge agenda are looked up through the `edge_ineqs_by_source` /
    ///   `subset_ineqs_by_sup` indexes and the per-round buffers
    ///   (`by_var`, `touched_vars`, `agenda`, `units`, proposal pool)
    ///   are persistent scratch, so a deep cascade that clears one
    ///   candidate per round costs O(its own work), not
    ///   O(#vars + #ineqs) per round.
    /// * **Adaptive threading.** A round whose batch is smaller than
    ///   [`SolverConfig::drain_inline_below`] runs its shards inline
    ///   even under [`crate::DrainStrategy::Sharded`] — same algorithm,
    ///   same χ, same counters, no thread-spawn overhead for a handful
    ///   of removals.
    fn drain(
        &mut self,
        db: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
    ) -> Result<bool, MaintainError> {
        let thread_budget = config.drain.threads();
        let journaling = self
            .epoch
            .as_ref()
            .is_some_and(|epoch| epoch.journal.is_some());
        while !self.queue.is_empty() {
            // Cooperative cancellation at the round boundary: the queue
            // is intact and the scratch buffers are clean, so an Err
            // here leaves nothing half-merged for the rollback to chase.
            if let Some(epoch) = &self.epoch {
                if let Some(budget) = config.drain_budget {
                    let spent = self.stats.work_ops().saturating_sub(epoch.work_at_begin);
                    if spent > budget {
                        return Err(MaintainError::BudgetExceeded { budget, spent });
                    }
                }
                failpoints::check("mid-round")?;
            }
            let batch = std::mem::take(&mut self.queue);
            self.stats.drain_rounds += 1;
            self.stats.delta_removals += batch.len();

            // Group the round's removals by source variable, so every
            // shard walks only its own removals. `by_var` is persistent
            // scratch: only the touched buckets are written, and they
            // are cleared again below. Every bucket is sorted into
            // ascending node order — the canonical order shared by the
            // per-bit and run-aware walks (a run's CSR segment is the
            // concatenation of its rows in exactly this order), so the
            // decrement/proposal sequences are bit-identical across χ
            // backends, drain strategies and thread counts.
            let mut by_var = std::mem::take(&mut self.by_var);
            let mut touched = std::mem::take(&mut self.touched_vars);
            for &(v, u) in &batch {
                let bucket = &mut by_var[v as usize];
                if bucket.is_empty() {
                    touched.push(v);
                }
                bucket.push(u);
            }
            for &v in &touched {
                by_var[v as usize].sort_unstable();
            }

            // The round's agenda: every inequality that can react to
            // this batch, in inequality order (the χ-merge order). Each
            // inequality has exactly one source/sup variable, so the
            // concatenation is duplicate-free and one sort suffices.
            let mut agenda = std::mem::take(&mut self.agenda);
            for &v in &touched {
                agenda.extend_from_slice(&self.edge_ineqs_by_source[v as usize]);
                agenda.extend_from_slice(&self.subset_ineqs_by_sup[v as usize]);
            }
            agenda.sort_unstable();

            // One shard per labeled edge inequality whose source shrank,
            // in inequality order, each owning its counter slab for the
            // duration of the round.
            let mut units = std::mem::take(&mut self.units);
            for &i in &agenda {
                if let Inequality::Edge {
                    target,
                    source,
                    label: Some(label),
                    forward,
                } = soi.ineqs[i as usize]
                {
                    units.push(ShardUnit {
                        ineq: i,
                        source: source as u32,
                        target: target as u32,
                        label,
                        forward,
                        run_aware: self.run_aware,
                        slab: std::mem::take(&mut self.support[i as usize]),
                        proposals: self.proposal_pool.pop().unwrap_or_default(),
                        journal: journaling.then(Vec::new),
                        decrements: 0,
                        row_lookups: 0,
                        inits: 0,
                        lazy_seeded: false,
                    });
                }
            }
            self.stats.shard_units += units.len();

            let workers = if batch.len() < config.drain_inline_below {
                1 // tiny round: threads cost more than the work
            } else {
                thread_budget.min(units.len())
            };
            if workers <= 1 {
                for unit in &mut units {
                    unit.process(db, &by_var[unit.source as usize], &self.chi);
                }
            } else {
                let chi = &self.chi;
                let by_var = &by_var;
                let chunk = units.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = units
                        .chunks_mut(chunk)
                        .map(|shard| {
                            scope.spawn(move || {
                                for unit in shard {
                                    unit.process(db, &by_var[unit.source as usize], chi);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        // Structural invariant: a shard worker only
                        // reads frozen state and its own unit; a panic
                        // there is a bug, not a recoverable condition.
                        #[allow(clippy::expect_used)]
                        h.join().expect("drain shard panicked");
                    }
                });
            }

            // Merge: hand every slab back, fold the per-shard work
            // counters, and apply the proposals in inequality order.
            // Subset inequalities carry no counters and are resolved
            // inline at their position in the same order, so sequential
            // and sharded drains clear the exact same bits in the exact
            // same order.
            let mut early = false;
            let mut unit_iter = units.drain(..).peekable();
            for &i in &agenda {
                if unit_iter.peek().map(|u| u.ineq) == Some(i) {
                    // Structural invariant: peek just returned Some.
                    #[allow(clippy::expect_used)]
                    let mut unit = unit_iter.next().expect("peeked");
                    self.stats.counter_decrements += unit.decrements;
                    self.stats.counter_inits += unit.inits;
                    self.stats.row_lookups += unit.row_lookups;
                    if unit.lazy_seeded {
                        self.stats.lazy_seeds += 1;
                        self.slab_word_total += unit.slab.storage_words();
                        self.journal_op(JournalOp::SlabSeeded { i });
                    }
                    // Fold the shard's decrement log into the epoch
                    // journal (seed first: reverse replay then undoes
                    // the decrements before dropping the seed).
                    if let Some(log) = unit.journal.take() {
                        for &w in &log {
                            self.journal_op(JournalOp::SlabDec { i, w });
                        }
                    }
                    let target = unit.target as usize;
                    let mut proposals = unit.proposals;
                    self.support[i as usize] = unit.slab;
                    if !early {
                        for &w in &proposals {
                            if self.chi[target].get(w as usize) {
                                self.clear_chi_bit(target, w as usize);
                                if self.remove_cleared_bit(soi, config, target, w) {
                                    early = true;
                                    break;
                                }
                            }
                        }
                    }
                    proposals.clear();
                    self.proposal_pool.push(proposals);
                } else if !early {
                    if let Inequality::Subset { sub, sup } = soi.ineqs[i as usize] {
                        for &u in &by_var[sup] {
                            if !self.chi[sub].get(u as usize) {
                                continue;
                            }
                            self.clear_chi_bit(sub, u as usize);
                            if self.remove_cleared_bit(soi, config, sub, u) {
                                early = true;
                                break;
                            }
                        }
                    }
                }
            }

            // Recycle the round's scratch (clearing only what was
            // touched) before any early return.
            drop(unit_iter);
            for &v in &touched {
                by_var[v as usize].clear();
            }
            touched.clear();
            agenda.clear();
            self.by_var = by_var;
            self.touched_vars = touched;
            self.agenda = agenda;
            self.units = units;
            debug_assert_eq!(
                self.chi_word_total,
                chi_words(&self.chi),
                "incremental χ-word accounting drifted"
            );
            self.stats.observe_chi_words(self.chi_word_total);
            self.stats.observe_slab_words(self.slab_word_total);
            if early {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Early exit: empties every variable (the convention shared with the
    /// re-evaluation engine's `empty_solution`) and freezes the state.
    fn kill(&mut self) {
        // Wholesale clears are not per-bit ops; journal the pre-kill χ
        // snapshot instead (only when a journaling epoch is open — the
        // clone is not free).
        if self
            .epoch
            .as_ref()
            .is_some_and(|epoch| epoch.journal.is_some())
        {
            let snapshot = self.chi.clone();
            self.journal_op(JournalOp::Killed { chi: snapshot });
        }
        for c in self.chi.iter_mut() {
            c.clear_all();
        }
        self.chi_word_total = chi_words(&self.chi);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.stats.final_candidates = 0;
        self.queue.clear();
        self.dead = true;
    }

    /// `true` iff an aborted batch left the engine without a trustworthy
    /// rollback; the owner must rebuild from a cold solve.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The engine's cumulative work counters (no χ clone, unlike
    /// [`Self::solution`]).
    pub(crate) fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Folds the robustness counters of a previous engine's stats into
    /// this one — used by [`crate::IncrementalDualSim`] when a poisoned
    /// engine is replaced by a cold rebuild, so `rollbacks`/`poisonings`
    /// /`budget_aborts`/`journal_entries` keep counting across the
    /// engine's lifetimes.
    pub(crate) fn carry_robustness_from(&mut self, prev: &SolveStats) {
        self.stats.rollbacks += prev.rollbacks;
        self.stats.poisonings += prev.poisonings;
        self.stats.budget_aborts += prev.budget_aborts;
        self.stats.journal_entries += prev.journal_entries;
    }

    /// Opens the update epoch for one maintenance batch: snapshots the
    /// cheap scalar state (stats, counts, liveness) and starts an empty
    /// journal when [`SolverConfig::journal`] is on. The work-ops
    /// watermark anchors the drain-budget accounting.
    fn begin_epoch(&mut self, config: &SolverConfig) {
        debug_assert!(self.epoch.is_none(), "maintenance epochs never nest");
        debug_assert!(self.queue.is_empty(), "worklist drained between batches");
        let journal = config.journal.then(|| Journal {
            ops: Vec::new(),
            stats: self.stats.clone(),
            counts: self.counts.clone(),
            dead: self.dead,
        });
        self.epoch = Some(Epoch {
            journal,
            work_at_begin: self.stats.work_ops(),
        });
    }

    /// Commits the epoch: the batch applied fully, so the journal is
    /// simply dropped.
    fn commit_epoch(&mut self) {
        self.epoch = None;
    }

    /// Routes the epoch body's outcome: commit on success, roll back on
    /// error (applying the poison policy), and hand the original error
    /// back to the caller. A commit hook, when present, is the last
    /// abort point: it runs after the body succeeded, and its error
    /// rolls the batch back exactly like a mid-body fault — the
    /// ordering that makes "committed in memory" imply "recorded in
    /// the write-ahead log".
    fn finish_epoch(
        &mut self,
        result: Result<(), MaintainError>,
        hook: Option<CommitHook<'_>>,
    ) -> Result<(), MaintainError> {
        let result = result.and_then(|()| match hook {
            Some(h) => h(),
            None => Ok(()),
        });
        match result {
            Ok(()) => {
                self.commit_epoch();
                Ok(())
            }
            Err(cause) => {
                self.handle_abort(&cause);
                Err(cause)
            }
        }
    }

    /// The degradation ladder for an aborted batch. A successful
    /// rollback restores the pre-batch state and counts in `rollbacks`;
    /// budget exhaustion additionally poisons the engine (the batch was
    /// too expensive to maintain incrementally — retrying would burn the
    /// same budget again, so the owner should fall back to a cold
    /// solve). A failed rollback (or journaling turned off) poisons
    /// without restoring: the state cannot be trusted in either
    /// direction.
    fn handle_abort(&mut self, cause: &MaintainError) {
        let budget_abort = matches!(cause, MaintainError::BudgetExceeded { .. });
        match self.abort_epoch() {
            Ok(()) => {
                self.stats.rollbacks += 1;
                if budget_abort {
                    self.stats.budget_aborts += 1;
                    self.poison();
                }
            }
            Err(_) => {
                if budget_abort {
                    self.stats.budget_aborts += 1;
                }
                self.poison();
            }
        }
    }

    /// Marks the engine unusable until a cold rebuild.
    fn poison(&mut self) {
        self.poisoned = true;
        self.stats.poisonings += 1;
    }

    /// Replays the journal in reverse, restoring the exact pre-batch
    /// state: χ bit flips are inverted, counter increments/decrements
    /// undone, lazy-seed promotions unseeded, and a kill's χ snapshot
    /// restored wholesale; the scalar snapshots (stats, counts,
    /// liveness) are then copied back and the storage-word gauges
    /// recomputed. Fails when journaling was off for this epoch — or
    /// when the `rollback` failpoint models a crashing rollback — in
    /// which case the state is left as-is for the caller to poison.
    fn abort_epoch(&mut self) -> Result<(), MaintainError> {
        debug_assert!(self.epoch.is_some(), "abort_epoch outside an epoch");
        let Some(epoch) = self.epoch.take() else {
            return Err(MaintainError::Poisoned);
        };
        let Some(mut journal) = epoch.journal else {
            return Err(MaintainError::Poisoned);
        };
        failpoints::check("rollback")?;
        while let Some(op) = journal.ops.pop() {
            match op {
                JournalOp::ChiSet { v, w } => self.chi[v as usize].clear(w as usize),
                JournalOp::ChiClear { v, w } => self.chi[v as usize].set(w as usize),
                JournalOp::SlabInc { i, w } => {
                    self.support[i as usize].decrement(w as usize);
                }
                JournalOp::SlabDec { i, w } => {
                    self.support[i as usize].increment(w as usize);
                }
                JournalOp::SlabSeeded { i } => self.support[i as usize].unseed(),
                JournalOp::Killed { chi } => self.chi = chi,
            }
        }
        self.stats = journal.stats;
        self.counts = journal.counts;
        self.dead = journal.dead;
        self.queue.clear();
        self.chi_word_total = chi_words(&self.chi);
        self.slab_word_total = self.support.iter().map(CounterSlab::storage_words).sum();
        Ok(())
    }
}

/// Rejects updates that name nodes or labels outside the database's
/// interned vocabulary *before* any epoch opens — an invalid batch
/// leaves the engine untouched without needing a rollback.
fn validate_batch(db: &GraphDb, batch: &[Triple]) -> Result<(), MaintainError> {
    let nodes = db.num_nodes() as u32;
    let labels = db.num_labels() as u32;
    for &triple in batch {
        if triple.s >= nodes || triple.o >= nodes || triple.p >= labels {
            return Err(MaintainError::OutOfVocabulary { triple });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_sois, solve, DrainStrategy, FixpointMode};
    use dualsim_bitmatrix::ChiBackend;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn delta_cfg(early_exit: bool) -> SolverConfig {
        SolverConfig {
            fixpoint: FixpointMode::DeltaCounting,
            early_exit,
            ..SolverConfig::default()
        }
    }

    fn sample_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("c", "p", "a").unwrap();
        b.add_triple("a", "q", "c").unwrap();
        b.add_triple("d", "p", "d").unwrap();
        b.add_triple("e", "q", "a").unwrap();
        b.finish()
    }

    #[test]
    fn delta_matches_reevaluate_on_fixtures() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y }",
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x p ?x }",
            "{ ?x q ?y . ?y p ?z }",
            "{ ?x nolabel ?y . ?x p ?z }",
            "{ ?x p ?y OPTIONAL { ?x q ?z } }",
            "{ ?x p <d> }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                for early_exit in [false, true] {
                    let reev = solve(
                        &db,
                        &soi,
                        &SolverConfig {
                            early_exit,
                            ..SolverConfig::default()
                        },
                    );
                    let delta = solve(&db, &soi, &delta_cfg(early_exit));
                    assert_eq!(reev.chi, delta.chi, "{text} (early_exit={early_exit})");
                    assert_eq!(
                        reev.is_certainly_empty(),
                        delta.is_certainly_empty(),
                        "{text}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_drain_matches_sequential_on_fixtures() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x q ?y . ?y p ?z }",
            "{ ?x p ?y OPTIONAL { ?x q ?z } }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                for early_exit in [false, true] {
                    let seq = solve(&db, &soi, &delta_cfg(early_exit));
                    for threads in [1, 2, 4, 16] {
                        let cfg = SolverConfig {
                            drain: DrainStrategy::Sharded { threads },
                            ..delta_cfg(early_exit)
                        };
                        let par = solve(&db, &soi, &cfg);
                        assert_eq!(seq.chi, par.chi, "{text} ({threads} threads)");
                        // The full stats — every work counter included —
                        // must be bit-identical across strategies.
                        assert_eq!(seq.stats, par.stats, "{text} ({threads} threads)");
                    }
                }
            }
        }
    }

    #[test]
    fn delta_counts_its_work() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let sol = solve(&db, &soi, &delta_cfg(false));
        assert!(sol.stats.counter_inits > 0, "support seeding happened");
        assert_eq!(sol.stats.rowwise, 0, "no whole-inequality multiplies");
        assert_eq!(sol.stats.rows_ored, 0);
        assert_eq!(sol.stats.bits_probed, 0);
        assert!(sol.stats.work_ops() > 0);
    }

    #[test]
    fn provably_satisfied_inequalities_defer_their_seeding() {
        // A single-edge query: after summary initialization, χ(x) is
        // exactly the non-empty rows of F^p and χ(y) exactly the column
        // summary, so both inequalities are provably satisfied and no
        // counter is ever seeded.
        let db = sample_db();
        let q = parse("{ ?x p ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let sol = solve(&db, &soi, &delta_cfg(false));
        assert_eq!(sol.stats.counter_inits, 0, "no seeding work");
        assert_eq!(sol.stats.seeds_deferred, soi.ineqs.len());
        assert_eq!(sol.stats.lazy_seeds, 0, "never touched, never seeded");
        let reev = solve(&db, &soi, &SolverConfig::default());
        assert_eq!(sol.chi, reev.chi);
    }

    #[test]
    fn slab_backends_match_on_fixtures() {
        use crate::SlabBackend;
        let db = sample_db();
        for text in [
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x q ?y . ?y p ?z }",
            "{ ?x p ?y OPTIONAL { ?x q ?z } }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                for early_exit in [false, true] {
                    let dense = solve(
                        &db,
                        &soi,
                        &SolverConfig {
                            slab_backend: SlabBackend::Dense,
                            ..delta_cfg(early_exit)
                        },
                    );
                    for slab_backend in [SlabBackend::Sparse, SlabBackend::Auto] {
                        let other = solve(
                            &db,
                            &soi,
                            &SolverConfig {
                                slab_backend,
                                ..delta_cfg(early_exit)
                            },
                        );
                        assert_eq!(dense.chi, other.chi, "{text} ({slab_backend:?})");
                        assert_eq!(
                            dense.stats.logical(),
                            other.stats.logical(),
                            "{text} ({slab_backend:?})"
                        );
                        // The spill guarantee: sparse storage never
                        // exceeds dense storage.
                        assert!(
                            other.stats.slab_peak_words <= dense.stats.slab_peak_words,
                            "{text}: {} > {} ({slab_backend:?})",
                            other.stats.slab_peak_words,
                            dense.stats.slab_peak_words
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slab_peak_words_gauges_only_seeded_slabs() {
        let db = sample_db();
        // Seeding happens here (see delta_counts_its_work) …
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let sol = solve(&db, &soi, &delta_cfg(false));
        assert!(sol.stats.counter_inits > 0);
        assert!(sol.stats.slab_peak_words > 0, "seeded slabs have storage");
        // … while a fully-deferred solve keeps every slab at zero words.
        let q = parse("{ ?x p ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let deferred = solve(&db, &soi, &delta_cfg(false));
        assert_eq!(deferred.stats.counter_inits, 0);
        assert_eq!(deferred.stats.slab_peak_words, 0);
        // The re-evaluation engine has no slabs at all.
        let reev = solve(&db, &soi, &SolverConfig::default());
        assert_eq!(reev.stats.slab_peak_words, 0);
        assert_eq!(reev.stats.row_lookups, 0);
    }

    #[test]
    fn parallel_seeding_is_invisible_to_every_counter() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x q ?y . ?y p ?z }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                let seq = solve(&db, &soi, &delta_cfg(false));
                for threads in [2, 4, 16] {
                    let par = solve(
                        &db,
                        &soi,
                        &SolverConfig {
                            seed_threads: threads,
                            ..delta_cfg(false)
                        },
                    );
                    assert_eq!(seq.chi, par.chi, "{text} ({threads} seed threads)");
                    // Full stats — the storage gauges included — are
                    // deterministic across seeding thread counts.
                    assert_eq!(seq.stats, par.stats, "{text} ({threads} seed threads)");
                }
            }
        }
    }

    /// A publications-style fixture whose forced removals form one
    /// contiguous id run: p1..p9 are interned back to back and all lose
    /// their candidacy in one round, so the run-aware drain under RLE χ
    /// resolves them with one CSR segment lookup where the dense-χ
    /// drain pays one row lookup per node.
    fn contiguous_removals_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        for i in 0..10 {
            b.add_triple(&format!("p{i}"), "type", "Pub").unwrap();
        }
        b.add_triple("p0", "author", "head").unwrap();
        for i in 1..10 {
            b.add_triple(&format!("p{i}"), "author", &format!("other{i}"))
                .unwrap();
        }
        b.add_triple("head", "leads", "d").unwrap();
        for i in 1..10 {
            b.add_triple(&format!("other{i}"), "type", "Person").unwrap();
        }
        b.finish()
    }

    #[test]
    fn run_aware_drain_saves_row_lookups_at_identical_logical_work() {
        let db = contiguous_removals_db();
        let q = parse("{ ?p type <Pub> . ?p author ?h . ?h leads ?d }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = |chi_backend| SolverConfig {
            chi_backend,
            ..delta_cfg(false)
        };
        let dense = solve(&db, &soi, &cfg(ChiBackend::Dense));
        let rle = solve(&db, &soi, &cfg(ChiBackend::Rle));
        assert_eq!(dense.chi, rle.chi);
        assert_eq!(dense.stats.logical(), rle.stats.logical());
        assert!(dense.stats.delta_removals > 0, "the fixture must cascade");
        assert!(dense.stats.row_lookups > 0);
        assert!(
            rle.stats.row_lookups < dense.stats.row_lookups,
            "run-aware drain must coalesce the contiguous removals: {} vs {}",
            rle.stats.row_lookups,
            dense.stats.row_lookups
        );
    }

    #[test]
    fn retraction_tracks_cold_solves_triple_by_triple() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        let mut triples: Vec<Triple> = db.triples().collect();
        while let Some(victim) = triples.pop() {
            let db_after = db.with_triples(&triples).unwrap();
            engine.retract_triples(&db_after, &soi, &cfg, &[victim]).unwrap();
            let cold = solve(&db_after, &soi, &cfg);
            assert_eq!(engine.solution().chi, cold.chi, "after {victim:?}");
        }
    }

    #[test]
    fn retraction_lazily_seeds_deferred_inequalities() {
        // "{ ?x p ?y }" defers both inequalities (see above); deleting a
        // p-triple must seed them on first touch — against the
        // post-deletion matrix — and still track the cold solve.
        let db = sample_db();
        let q = parse("{ ?x p ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        assert_eq!(engine.solution().stats.counter_inits, 0);
        let p = db.label_id("p").unwrap();
        let victim: Triple = db.triples().find(|t| t.p == p).unwrap();
        let rest: Vec<Triple> = db.triples().filter(|&t| t != victim).collect();
        let db_after = db.with_triples(&rest).unwrap();
        engine
            .retract_triples(&db_after, &soi, &cfg, &[victim])
            .unwrap();
        let after = engine.solution().stats.clone();
        assert!(after.lazy_seeds > 0, "first touch seeded lazily");
        assert!(after.counter_inits > 0);
        assert_eq!(after.rows_ored, 0, "still no wholesale re-evaluation");
        let cold = solve(&db_after, &soi, &cfg);
        assert_eq!(engine.solution().chi, cold.chi);
    }

    #[test]
    fn insertion_tracks_cold_solves_triple_by_triple() {
        // Grow the database one triple at a time from an empty edge
        // relation; the engine must match a cold solve at every step.
        let db = sample_db();
        for text in [
            "{ ?x p ?y . ?y q ?z }",
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x p ?x }",
            "{ ?x p ?y OPTIONAL { ?x q ?z } }",
            "{ ?x p <d> }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                let cfg = delta_cfg(false);
                let all: Vec<Triple> = db.triples().collect();
                let empty = db.with_triples(&[]).unwrap();
                let mut engine = DeltaSolver::new(&empty, &soi, &cfg);
                for i in 0..all.len() {
                    let db_after = db.with_triples(&all[..=i]).unwrap();
                    assert!(engine
                        .insert_triples(&db_after, &soi, &cfg, &[all[i]])
                        .unwrap());
                    let cold = solve(&db_after, &soi, &cfg);
                    assert_eq!(
                        engine.solution().chi,
                        cold.chi,
                        "{text} after inserting {:?}",
                        all[i]
                    );
                }
            }
        }
    }

    #[test]
    fn insertion_batches_track_cold_solves() {
        // Same growth, but in one batch per label — exercising the
        // seeded-this-batch discipline and multi-triple frontiers.
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let p = db.label_id("p").unwrap();
        let (ps, qs): (Vec<Triple>, Vec<Triple>) = db.triples().partition(|t| t.p == p);
        let empty = db.with_triples(&[]).unwrap();
        let mut engine = DeltaSolver::new(&empty, &soi, &cfg);
        let db_mid = db.with_triples(&ps).unwrap();
        assert!(engine.insert_triples(&db_mid, &soi, &cfg, &ps).unwrap());
        assert_eq!(engine.solution().chi, solve(&db_mid, &soi, &cfg).chi);
        assert!(engine.insert_triples(&db, &soi, &cfg, &qs).unwrap());
        assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
    }

    #[test]
    fn insertion_lazily_seeds_deferred_inequalities() {
        // "{ ?x p ?y }" defers both inequalities on the full database;
        // the first inserted p-triple must seed them — against the
        // post-insertion matrix, without double-counting the batch.
        let db = sample_db();
        let q = parse("{ ?x p ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let all: Vec<Triple> = db.triples().collect();
        let p = db.label_id("p").unwrap();
        let victim = all.iter().position(|t| t.p == p).unwrap();
        let rest: Vec<Triple> = all
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (i != victim).then_some(t))
            .collect();
        let db_before = db.with_triples(&rest).unwrap();
        let mut engine = DeltaSolver::new(&db_before, &soi, &cfg);
        assert_eq!(engine.solution().stats.counter_inits, 0, "all deferred");
        assert!(engine
            .insert_triples(&db, &soi, &cfg, &[all[victim]])
            .unwrap());
        let stats = engine.solution().stats.clone();
        assert!(stats.lazy_seeds > 0, "first touch seeded lazily");
        assert!(stats.counter_inits > 0);
        assert_eq!(stats.rows_ored, 0, "still no wholesale re-evaluation");
        assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
    }

    #[test]
    fn insertion_counts_increments_not_evaluations() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let all: Vec<Triple> = db.triples().collect();
        let (rest, last) = all.split_at(all.len() - 1);
        let db_before = db.with_triples(rest).unwrap();
        let mut engine = DeltaSolver::new(&db_before, &soi, &cfg);
        let evals_before = engine.solution().stats.evaluations;
        assert!(engine.insert_triples(&db, &soi, &cfg, last).unwrap());
        let stats = engine.solution().stats.clone();
        assert_eq!(stats.rows_ored, 0);
        assert_eq!(stats.bits_probed, 0);
        assert_eq!(
            stats.evaluations, evals_before,
            "insertion maintenance evaluates no inequality wholesale"
        );
        assert!(
            stats.counter_increments > 0 || stats.counter_inits > 0,
            "the inserted entries were credited to the counters"
        );
        assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
    }

    #[test]
    fn insertion_deduplicates_its_batch() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let all: Vec<Triple> = db.triples().collect();
        let (rest, last) = all.split_at(all.len() - 1);
        let db_before = db.with_triples(rest).unwrap();
        let mut engine = DeltaSolver::new(&db_before, &soi, &cfg);
        // The same triple listed three times must increment once; a
        // phantom double increment would leave counters too high and
        // mask later deletions.
        assert!(engine
            .insert_triples(&db, &soi, &cfg, &[last[0], last[0], last[0]])
            .unwrap());
        assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
        engine.retract_triples(&db_before, &soi, &cfg, last).unwrap();
        assert_eq!(engine.solution().chi, solve(&db_before, &soi, &cfg).chi);
    }

    #[test]
    fn insertion_into_a_dead_engine_reports_failure() {
        let db = sample_db();
        let q = parse("{ ?x nolabel ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(true);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        assert!(engine.solution().is_certainly_empty());
        // An early-exited engine threw its counters away; it must
        // refuse instead of producing an unsound update.
        let t: Triple = db.triples().next().unwrap();
        assert_eq!(engine.insert_triples(&db, &soi, &cfg, &[t]), Ok(false));
        assert!(engine.solution().is_certainly_empty());
    }

    #[test]
    fn insertion_revives_an_emptied_mandatory_variable() {
        // Delete every q-triple (the query dies), then insert them
        // back: the solution must return and `emptied_mandatory` must
        // clear — it is a statement about the *current* counts, not a
        // ratchet, once insertions exist.
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let qlabel = db.label_id("q").unwrap();
        let (qs, ps): (Vec<Triple>, Vec<Triple>) = db.triples().partition(|t| t.p == qlabel);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        assert!(!engine.solution().stats.emptied_mandatory);
        let db_ps = db.with_triples(&ps).unwrap();
        engine.retract_triples(&db_ps, &soi, &cfg, &qs).unwrap();
        assert!(engine.solution().stats.emptied_mandatory, "the query died");
        assert!(engine.solution().is_certainly_empty());
        assert!(engine.insert_triples(&db, &soi, &cfg, &qs).unwrap());
        assert!(
            !engine.solution().stats.emptied_mandatory,
            "the insertion revived the mandatory variables"
        );
        assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
    }

    #[test]
    fn insertion_maintenance_is_backend_and_thread_invariant() {
        use crate::SlabBackend;
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let all: Vec<Triple> = db.triples().collect();
        let (rest, last) = all.split_at(all.len() - 2);
        let db_before = db.with_triples(rest).unwrap();
        let run = |cfg: &SolverConfig| {
            let mut engine = DeltaSolver::new(&db_before, &soi, cfg);
            assert!(engine.insert_triples(&db, &soi, cfg, last).unwrap());
            engine.retract_triples(&db_before, &soi, cfg, last).unwrap();
            assert!(engine.insert_triples(&db, &soi, cfg, last).unwrap());
            engine.solution()
        };
        let base = run(&delta_cfg(false));
        assert_eq!(base.chi, solve(&db, &soi, &delta_cfg(false)).chi);
        for chi_backend in [ChiBackend::Dense, ChiBackend::Rle] {
            for slab_backend in [SlabBackend::Dense, SlabBackend::Sparse] {
                for threads in [1, 4] {
                    let cfg = SolverConfig {
                        chi_backend,
                        slab_backend,
                        drain: DrainStrategy::Sharded { threads },
                        ..delta_cfg(false)
                    };
                    let sol = run(&cfg);
                    assert_eq!(base.chi, sol.chi, "({chi_backend:?}, {slab_backend:?}, {threads})");
                    assert_eq!(
                        base.stats.logical(),
                        sol.stats.logical(),
                        "({chi_backend:?}, {slab_backend:?}, {threads})"
                    );
                }
            }
        }
    }

    #[test]
    fn retraction_after_early_exit_stays_empty() {
        let db = sample_db();
        let q = parse("{ ?x nolabel ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(true);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        assert!(engine.solution().is_certainly_empty());
        let victim: Triple = db.triples().next().unwrap();
        let rest: Vec<Triple> = db.triples().skip(1).collect();
        engine
            .retract_triples(&db.with_triples(&rest).unwrap(), &soi, &cfg, &[victim])
            .unwrap();
        let sol = engine.solution();
        assert!(sol.is_certainly_empty());
        assert!(sol.chi.iter().all(|c| c.none_set()));
    }

    use crate::{failpoints, MaintainError};

    /// A fixture with a real deletion cascade: engine on the full
    /// database, plus the deletion batch (all q-triples) and the
    /// post-deletion database.
    fn retraction_fixture(cfg: &SolverConfig) -> (GraphDb, Soi, DeltaSolver, GraphDb, Vec<Triple>) {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let engine = DeltaSolver::new(&db, &soi, cfg);
        let qlabel = db.label_id("q").unwrap();
        let (qs, ps): (Vec<Triple>, Vec<Triple>) = db.triples().partition(|t| t.p == qlabel);
        let db_after = db.with_triples(&ps).unwrap();
        (db, soi, engine, db_after, qs)
    }

    #[test]
    fn out_of_vocabulary_batches_are_rejected_before_the_epoch() {
        let cfg = delta_cfg(false);
        let (db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
        let pre = engine.solution();
        let alien = Triple::new(db.num_nodes() as u32, 0, 0);
        assert_eq!(
            engine.retract_triples(&db_after, &soi, &cfg, &[alien]),
            Err(MaintainError::OutOfVocabulary { triple: alien })
        );
        assert_eq!(
            engine.insert_triples(&db, &soi, &cfg, &[Triple::new(0, db.num_labels() as u32, 0)]),
            Err(MaintainError::OutOfVocabulary {
                triple: Triple::new(0, db.num_labels() as u32, 0)
            })
        );
        // No epoch ever opened: the state is untouched — not even a
        // rollback was needed or counted.
        let post = engine.solution();
        assert_eq!(pre.chi, post.chi);
        assert_eq!(pre.stats, post.stats);
        assert_eq!(post.stats.rollbacks, 0);
        // …and the engine is still warm.
        engine.retract_triples(&db_after, &soi, &cfg, &qs).unwrap();
        assert_eq!(engine.solution().chi, solve(&db_after, &soi, &cfg).chi);
    }

    #[test]
    fn failpoint_aborts_restore_the_exact_pre_batch_state() {
        for point in ["counter-increment", "pre-drain", "mid-round"] {
            let cfg = delta_cfg(false);
            let (_db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
            let pre = engine.solution();
            failpoints::disarm_all();
            failpoints::arm(point, 0);
            assert_eq!(
                engine.retract_triples(&db_after, &soi, &cfg, &qs),
                Err(MaintainError::Failpoint { point }),
                "{point} must be reached by a cascading retraction"
            );
            failpoints::disarm_all();
            let post = engine.solution();
            assert_eq!(pre.chi, post.chi, "χ bit-identical after {point} abort");
            assert_eq!(
                pre.stats.logical(),
                post.stats.logical(),
                "logical stats bit-identical after {point} abort"
            );
            assert_eq!(post.stats.rollbacks, 1);
            assert_eq!(post.stats.poisonings, 0, "a clean rollback never poisons");
            assert!(!engine.is_poisoned());
            // The rolled-back engine stays warm: the same batch applies
            // cleanly and matches a cold solve.
            engine.retract_triples(&db_after, &soi, &cfg, &qs).unwrap();
            assert_eq!(engine.solution().chi, solve(&db_after, &soi, &cfg).chi);
        }
    }

    #[test]
    fn insertion_failpoint_aborts_restore_the_pre_batch_state() {
        for point in ["counter-increment", "post-cull", "pre-drain"] {
            let cfg = delta_cfg(false);
            let db = sample_db();
            let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
            let soi = build_sois(&db, &q).remove(0);
            let all: Vec<Triple> = db.triples().collect();
            let (rest, last) = all.split_at(all.len() - 2);
            let db_before = db.with_triples(rest).unwrap();
            let mut engine = DeltaSolver::new(&db_before, &soi, &cfg);
            let pre = engine.solution();
            failpoints::disarm_all();
            failpoints::arm(point, 0);
            assert_eq!(
                engine.insert_triples(&db, &soi, &cfg, last),
                Err(MaintainError::Failpoint { point }),
                "{point} must be reached by an insertion batch"
            );
            failpoints::disarm_all();
            let post = engine.solution();
            assert_eq!(pre.chi, post.chi, "χ bit-identical after {point} abort");
            assert_eq!(pre.stats.logical(), post.stats.logical(), "{point}");
            assert_eq!(post.stats.rollbacks, 1);
            assert!(!engine.is_poisoned());
            assert!(engine.insert_triples(&db, &soi, &cfg, last).unwrap());
            assert_eq!(engine.solution().chi, solve(&db, &soi, &cfg).chi);
        }
    }

    #[test]
    fn budget_exhaustion_rolls_back_and_poisons() {
        let cfg = SolverConfig {
            drain_budget: Some(0),
            ..delta_cfg(false)
        };
        let (_db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
        let pre = engine.solution();
        let err = engine
            .retract_triples(&db_after, &soi, &cfg, &qs)
            .unwrap_err();
        assert!(
            matches!(err, MaintainError::BudgetExceeded { budget: 0, spent } if spent > 0),
            "{err:?}"
        );
        // The rollback succeeded — the state is pristine — but the
        // batch is too expensive to maintain within budget, so the
        // engine degrades.
        let post = engine.solution();
        assert_eq!(pre.chi, post.chi);
        assert_eq!(pre.stats.logical(), post.stats.logical());
        assert_eq!(post.stats.rollbacks, 1);
        assert_eq!(post.stats.budget_aborts, 1);
        assert_eq!(post.stats.poisonings, 1);
        assert!(engine.is_poisoned());
        assert_eq!(
            engine.retract_triples(&db_after, &soi, &cfg, &qs),
            Err(MaintainError::Poisoned)
        );
        assert_eq!(
            engine.insert_triples(&db_after, &soi, &cfg, &qs),
            Err(MaintainError::Poisoned)
        );
    }

    #[test]
    fn failing_rollback_poisons_without_restoring() {
        let cfg = delta_cfg(false);
        let (_db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
        failpoints::disarm_all();
        failpoints::arm("pre-drain", 0);
        failpoints::arm("rollback", 0);
        assert_eq!(
            engine.retract_triples(&db_after, &soi, &cfg, &qs),
            Err(MaintainError::Failpoint { point: "pre-drain" }),
            "the original cause propagates, not the rollback failure"
        );
        failpoints::disarm_all();
        let stats = engine.stats().clone();
        assert_eq!(stats.rollbacks, 0, "the rollback never completed");
        assert_eq!(stats.poisonings, 1);
        assert!(engine.is_poisoned());
    }

    #[test]
    fn journal_off_trades_atomicity_for_poisoning() {
        let cfg = SolverConfig {
            journal: false,
            ..delta_cfg(false)
        };
        let (_db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
        failpoints::disarm_all();
        failpoints::arm("pre-drain", 0);
        assert_eq!(
            engine.retract_triples(&db_after, &soi, &cfg, &qs),
            Err(MaintainError::Failpoint { point: "pre-drain" })
        );
        failpoints::disarm_all();
        assert!(engine.is_poisoned(), "no journal, no rollback — poisoned");
        assert_eq!(engine.stats().rollbacks, 0);
        assert_eq!(engine.stats().poisonings, 1);
    }

    #[test]
    fn journal_records_the_happy_path_without_logical_work() {
        let with = delta_cfg(false);
        let without = SolverConfig {
            journal: false,
            ..delta_cfg(false)
        };
        let (_db, soi, mut journaled, db_after, qs) = retraction_fixture(&with);
        let (_db2, _soi2, mut bare, db_after2, qs2) = retraction_fixture(&without);
        journaled.retract_triples(&db_after, &soi, &with, &qs).unwrap();
        bare.retract_triples(&db_after2, &soi, &without, &qs2).unwrap();
        let a = journaled.solution();
        let b = bare.solution();
        assert_eq!(a.chi, b.chi);
        assert_eq!(
            a.stats.logical(),
            b.stats.logical(),
            "journaling performs zero additional logical work"
        );
        assert!(a.stats.journal_entries > 0, "the epoch was recorded");
        assert_eq!(b.stats.journal_entries, 0);
    }

    #[test]
    fn rollback_is_invariant_across_backends_and_threads() {
        use crate::SlabBackend;
        // The satellite matrix: chi {dense,rle} × slab {dense,sparse} ×
        // drain {sequential,sharded} × threads {1,4}. Every combination
        // must abort back to its own bit-identical pre-batch snapshot,
        // and the logical outcome must also agree *across* the matrix.
        let mut logical_reference: Option<SolveStats> = None;
        for chi_backend in [ChiBackend::Dense, ChiBackend::Rle] {
            for slab_backend in [SlabBackend::Dense, SlabBackend::Sparse] {
                for threads in [1usize, 4] {
                    let drain = if threads == 1 {
                        DrainStrategy::Sequential
                    } else {
                        DrainStrategy::Sharded { threads }
                    };
                    let cfg = SolverConfig {
                        chi_backend,
                        slab_backend,
                        drain,
                        // Shard even the small fixture rounds so the
                        // threaded merge path actually runs.
                        drain_inline_below: 0,
                        ..delta_cfg(false)
                    };
                    let label = format!("({chi_backend:?}, {slab_backend:?}, {drain:?})");
                    let (_db, soi, mut engine, db_after, qs) = retraction_fixture(&cfg);
                    let pre = engine.solution();
                    failpoints::disarm_all();
                    failpoints::arm("mid-round", 0);
                    assert_eq!(
                        engine.retract_triples(&db_after, &soi, &cfg, &qs),
                        Err(MaintainError::Failpoint { point: "mid-round" }),
                        "{label}"
                    );
                    failpoints::disarm_all();
                    let post = engine.solution();
                    assert_eq!(pre.chi, post.chi, "{label}");
                    assert_eq!(pre.stats.logical(), post.stats.logical(), "{label}");
                    assert_eq!(post.stats.rollbacks, 1, "{label}");
                    assert!(!engine.is_poisoned(), "{label}");
                    // The next batch applies as if the abort never
                    // happened…
                    engine.retract_triples(&db_after, &soi, &cfg, &qs).unwrap();
                    assert_eq!(engine.solution().chi, solve(&db_after, &soi, &cfg).chi, "{label}");
                    // …with the logical stats identical across the
                    // whole matrix.
                    let logical = engine.solution().stats.logical();
                    match &logical_reference {
                        None => logical_reference = Some(logical),
                        Some(reference) => assert_eq!(reference, &logical, "{label}"),
                    }
                }
            }
        }
    }
}
