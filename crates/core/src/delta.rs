//! The delta-counting fixpoint engine ([`FixpointMode::DeltaCounting`]).
//!
//! The Sect. 3.2 algorithm re-evaluates an *entire* inequality whenever
//! its right-hand-side variable shrank: `×b` re-ORs every CSR row
//! selected by χ(source), even when only a handful of bits were just
//! cleared. This engine instead maintains, for every edge inequality
//! `target ≤ source ×b M`, a **support counter** per candidate node —
//!
//! ```text
//! support[i][w] = |column w of M ∩ χ(source)|
//!               = |{u ∈ χ(source) : M(u, w) = 1}|
//! ```
//!
//! — seeded once after Eq. (12)/(13) initialization by
//! [`BitMatrix::count_into`]. The inequality is satisfied for `w` iff
//! `support[i][w] > 0`, so when bit `u` is cleared from χ(source) the
//! engine walks only `M.row(u)`, decrements the counters of the affected
//! targets, and enqueues every node whose support hits zero for removal
//! from χ(target). Removals cascade through a worklist of
//! `(variable, node)` deltas until it drains: O(degree of the removed
//! node) per removal instead of a whole-inequality re-evaluation. This
//! is the counting bookkeeping of HHK-style simulation algorithms (cf.
//! [`crate::baseline::dual_simulation_hhk`]) lifted to the general SOI
//! setting — subset inequalities, surrogates, constants, forward-only
//! systems and warm starts included.
//!
//! Every removal is *forced* (the cleared node violates some inequality
//! in every solution below the current assignment), and the worklist
//! only drains when all counters of kept candidates are positive, i.e.
//! all inequalities hold. The result is therefore the same unique
//! largest solution (Prop. 2) the re-evaluation engine computes — the
//! equivalence proptests in `crate::proptests` pin this down.
//!
//! [`DeltaSolver`] keeps its counters alive after convergence, which is
//! what makes truly incremental **deletion** maintenance possible:
//! [`DeltaSolver::retract_triples`] feeds deleted triples straight into
//! the delta queue (one counter decrement per affected inequality)
//! instead of re-running any per-inequality evaluation — see
//! [`crate::IncrementalDualSim`].
//!
//! [`FixpointMode::DeltaCounting`]: crate::FixpointMode::DeltaCounting
//! [`BitMatrix::count_into`]: dualsim_bitmatrix::BitMatrix::count_into

use crate::solver::{apply_summary_init, evaluation_order, seed_chi, split_pair};
use crate::{Inequality, Soi, Solution, SolveStats, SolverConfig};
use dualsim_bitmatrix::{BitMatrix, BitVec};
use dualsim_graph::{GraphDb, Triple};

/// One-shot entry point used by [`crate::solve_from`] for
/// [`crate::FixpointMode::DeltaCounting`].
pub(crate) fn solve_delta(
    db: &GraphDb,
    soi: &Soi,
    config: &SolverConfig,
    initial_chi: Vec<BitVec>,
) -> Solution {
    DeltaSolver::from_chi(db, soi, config, initial_chi).solution()
}

#[inline]
fn multiply_matrix(db: &GraphDb, label: u32, forward: bool) -> &BitMatrix {
    if forward {
        db.forward(label)
    } else {
        db.backward(label)
    }
}

/// The delta-counting engine with persistent state: the current χ, the
/// per-(inequality, candidate) support counters, and the removal
/// worklist. Constructed through [`DeltaSolver::new`] (cold solve) or
/// [`DeltaSolver::from_chi`] (warm start from a superset of the largest
/// solution); after convergence the state stays valid, so
/// [`DeltaSolver::retract_triples`] can maintain the solution under
/// triple deletions without ever re-seeding.
#[derive(Debug, Clone)]
pub(crate) struct DeltaSolver {
    chi: Vec<BitVec>,
    counts: Vec<usize>,
    /// `support[i]` for edge inequality `i` with a known label; empty for
    /// subset and absent-label inequalities.
    support: Vec<Vec<u32>>,
    /// Inequalities to visit when a variable shrinks: edge inequalities
    /// by `source`, subset inequalities by `sup`.
    by_source: Vec<Vec<u32>>,
    /// Pending `(variable, node)` removal deltas.
    queue: Vec<(u32, u32)>,
    /// Cumulative work counters (across the initial solve and every
    /// later retraction).
    stats: SolveStats,
    /// Set once an early exit emptied everything; the state is final and
    /// the counters are no longer meaningful.
    dead: bool,
}

impl DeltaSolver {
    /// Cold solve: seeds χ from Eq. (12) plus constant pinning.
    pub(crate) fn new(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> Self {
        Self::from_chi(db, soi, config, seed_chi(db, soi))
    }

    /// Warm start: converges from a caller-provided superset of the
    /// largest solution (same contract as [`crate::solve_from`]).
    pub(crate) fn from_chi(
        db: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        mut chi: Vec<BitVec>,
    ) -> Self {
        let n = db.num_nodes();
        let nv = soi.vars.len();
        assert_eq!(chi.len(), nv, "one χ per SOI variable");
        apply_summary_init(db, soi, config, &mut chi);
        let counts: Vec<usize> = chi.iter().map(BitVec::count_ones).collect();
        let stats = SolveStats {
            initial_candidates: counts.iter().sum(),
            ..SolveStats::default()
        };

        let mut solver = DeltaSolver {
            chi,
            counts,
            support: vec![Vec::new(); soi.ineqs.len()],
            by_source: vec![Vec::new(); nv],
            queue: Vec::new(),
            stats,
            dead: false,
        };

        // A mandatory variable may be empty straight after initialization
        // (unknown constant, missing predicate support).
        for (v, var) in soi.vars.iter().enumerate() {
            if solver.counts[v] == 0 && var.mandatory {
                solver.stats.emptied_mandatory = true;
                if config.early_exit {
                    solver.kill();
                    return solver;
                }
            }
        }

        // Dependency lists and support counters, both from the seeded χ.
        // All removals happen after this point and reach the counters
        // exclusively through the worklist, which keeps the invariant
        // `support[i][w] = |column w ∩ (χ(source) ∪ pending removals)|`.
        for (i, ineq) in soi.ineqs.iter().enumerate() {
            match *ineq {
                Inequality::Edge {
                    source, label, forward, ..
                } => {
                    solver.by_source[source].push(i as u32);
                    if let Some(a) = label {
                        let mut sup = vec![0u32; n];
                        solver.stats.counter_inits += multiply_matrix(db, a, forward)
                            .count_into(&solver.chi[source], &mut sup);
                        solver.support[i] = sup;
                    }
                }
                Inequality::Subset { sup, .. } => solver.by_source[sup].push(i as u32),
            }
        }

        // Enforce every inequality once (the seeded χ may violate them),
        // turning each violation into queued removal deltas.
        let mut removed: Vec<u32> = Vec::new();
        let mut early = false;
        'seed: for &i in &evaluation_order(db, soi, config) {
            solver.stats.evaluations += 1;
            removed.clear();
            let target = match soi.ineqs[i as usize] {
                Inequality::Edge {
                    target, label: None, ..
                } => {
                    // Empty matrix: the product is the zero vector.
                    removed.extend(solver.chi[target].iter_ones().map(|w| w as u32));
                    target
                }
                Inequality::Edge {
                    target, label: Some(_), ..
                } => {
                    let support = &solver.support[i as usize];
                    removed.extend(
                        solver.chi[target]
                            .iter_ones()
                            .filter(|&w| support[w] == 0)
                            .map(|w| w as u32),
                    );
                    target
                }
                Inequality::Subset { sub, sup } => {
                    let (sup_chi, sub_chi) = split_pair(&mut solver.chi, sup, sub);
                    sub_chi.drain_cleared(sup_chi, &mut removed);
                    // drain_cleared already cleared the bits; enqueue
                    // without re-clearing.
                    for &w in &removed {
                        if solver.remove_cleared_bit(soi, config, sub, w) {
                            early = true;
                            break 'seed;
                        }
                    }
                    continue;
                }
            };
            for &w in &removed {
                solver.chi[target].clear(w as usize);
                if solver.remove_cleared_bit(soi, config, target, w) {
                    early = true;
                    break 'seed;
                }
            }
        }

        if early || solver.drain(db, soi, config) {
            solver.kill();
        } else if !soi.ineqs.is_empty() {
            // The worklist-drain equivalent of one stabilization pass.
            solver.stats.iterations = 1;
        }
        solver.stats.final_candidates = solver.counts.iter().sum();
        solver
    }

    /// Snapshot of the current (converged) state.
    pub(crate) fn solution(&self) -> Solution {
        Solution {
            chi: self.chi.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Maintains the largest solution after the given triples were
    /// **deleted**: `db_after` must be the previous database minus
    /// `deleted` (each triple listed exactly once). Every deleted triple
    /// decrements the support counters of the inequalities it fed —
    /// O(#inequalities) per triple — and nodes whose support hits zero
    /// cascade through the regular delta worklist. No inequality is ever
    /// re-evaluated wholesale and the counters are **not** re-seeded.
    pub(crate) fn retract_triples(
        &mut self,
        db_after: &GraphDb,
        soi: &Soi,
        config: &SolverConfig,
        deleted: &[Triple],
    ) {
        if self.dead {
            return; // early-exited: the empty solution is final
        }
        self.stats.iterations += 1;
        // Phase 1: take back the deleted entries' counter contributions.
        // No χ bit is cleared in this phase, so "u is still a source
        // candidate" is exactly "u's +1 is still in the counter" (a node
        // removed *earlier* had its contribution walked out against the
        // then-current matrices, which still contained this batch's
        // entries). Clearing eagerly here would break that equivalence
        // for inequalities visited later in the same batch.
        let mut zeroed: Vec<(usize, u32)> = Vec::new();
        for t in deleted {
            for (i, ineq) in soi.ineqs.iter().enumerate() {
                let Inequality::Edge {
                    target,
                    source,
                    label: Some(a),
                    forward,
                } = *ineq
                else {
                    continue;
                };
                if a != t.p {
                    continue;
                }
                // The multiply matrix M lost entry (u, w).
                let (u, w) = if forward { (t.s, t.o) } else { (t.o, t.s) };
                if !self.chi[source].get(u as usize) {
                    continue;
                }
                self.stats.counter_decrements += 1;
                let c = &mut self.support[i][w as usize];
                debug_assert!(*c > 0, "support underflow on retraction");
                *c -= 1;
                if *c == 0 {
                    zeroed.push((target, w));
                }
            }
        }
        // Phase 2: the zero-support candidates are forced removals;
        // cascade them through the worklist against the post-deletion
        // matrices.
        let mut early = false;
        for (target, w) in zeroed {
            if self.chi[target].get(w as usize) {
                self.chi[target].clear(w as usize);
                if self.remove_cleared_bit(soi, config, target, w) {
                    early = true;
                    break;
                }
            }
        }
        if early || self.drain(db_after, soi, config) {
            self.kill();
        }
        self.stats.final_candidates = self.counts.iter().sum();
    }

    /// Bookkeeping for a bit that the caller just cleared from `chi[v]`:
    /// counts, stats, worklist, mandatory-emptiness. Returns `true` iff
    /// the solve must early-exit (the caller then invokes [`Self::kill`]).
    fn remove_cleared_bit(&mut self, soi: &Soi, config: &SolverConfig, v: usize, w: u32) -> bool {
        self.counts[v] -= 1;
        self.stats.updates += 1;
        self.queue.push((v as u32, w));
        if self.counts[v] == 0 && soi.vars[v].mandatory {
            self.stats.emptied_mandatory = true;
            if config.early_exit {
                return true;
            }
        }
        false
    }

    /// Drains the removal worklist. Returns `true` iff an early exit
    /// triggered (the state must then be killed).
    fn drain(&mut self, db: &GraphDb, soi: &Soi, config: &SolverConfig) -> bool {
        // Detach the dependency lists so the loop can mutate the rest of
        // the state while iterating them.
        let by_source = std::mem::take(&mut self.by_source);
        let mut early = false;
        'outer: while let Some((v, u)) = self.queue.pop() {
            self.stats.delta_removals += 1;
            for &i in &by_source[v as usize] {
                let i = i as usize;
                match soi.ineqs[i] {
                    Inequality::Edge {
                        target,
                        label: Some(a),
                        forward,
                        ..
                    } => {
                        for &w in multiply_matrix(db, a, forward).row(u as usize) {
                            self.stats.counter_decrements += 1;
                            let c = &mut self.support[i][w as usize];
                            debug_assert!(*c > 0, "support underflow on removal");
                            *c -= 1;
                            if *c == 0 && self.chi[target].get(w as usize) {
                                self.chi[target].clear(w as usize);
                                if self.remove_cleared_bit(soi, config, target, w) {
                                    early = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                    // Absent label: χ(target) was emptied at seeding, and
                    // empty stays empty.
                    Inequality::Edge { label: None, .. } => {}
                    Inequality::Subset { sub, .. } => {
                        if self.chi[sub].get(u as usize) {
                            self.chi[sub].clear(u as usize);
                            if self.remove_cleared_bit(soi, config, sub, u) {
                                early = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        self.by_source = by_source;
        early
    }

    /// Early exit: empties every variable (the convention shared with the
    /// re-evaluation engine's `empty_solution`) and freezes the state.
    fn kill(&mut self) {
        for c in self.chi.iter_mut() {
            c.clear_all();
        }
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.stats.final_candidates = 0;
        self.queue.clear();
        self.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_sois, solve, FixpointMode};
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    fn delta_cfg(early_exit: bool) -> SolverConfig {
        SolverConfig {
            fixpoint: FixpointMode::DeltaCounting,
            early_exit,
            ..SolverConfig::default()
        }
    }

    fn sample_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "p", "c").unwrap();
        b.add_triple("c", "p", "a").unwrap();
        b.add_triple("a", "q", "c").unwrap();
        b.add_triple("d", "p", "d").unwrap();
        b.add_triple("e", "q", "a").unwrap();
        b.finish()
    }

    #[test]
    fn delta_matches_reevaluate_on_fixtures() {
        let db = sample_db();
        for text in [
            "{ ?x p ?y }",
            "{ ?x p ?y . ?y p ?z . ?x q ?z }",
            "{ ?x p ?x }",
            "{ ?x q ?y . ?y p ?z }",
            "{ ?x nolabel ?y . ?x p ?z }",
            "{ ?x p ?y OPTIONAL { ?x q ?z } }",
            "{ ?x p <d> }",
        ] {
            let q = parse(text).unwrap();
            for soi in build_sois(&db, &q) {
                for early_exit in [false, true] {
                    let reev = solve(
                        &db,
                        &soi,
                        &SolverConfig {
                            early_exit,
                            ..SolverConfig::default()
                        },
                    );
                    let delta = solve(&db, &soi, &delta_cfg(early_exit));
                    assert_eq!(reev.chi, delta.chi, "{text} (early_exit={early_exit})");
                    assert_eq!(
                        reev.is_certainly_empty(),
                        delta.is_certainly_empty(),
                        "{text}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_counts_its_work() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let sol = solve(&db, &soi, &delta_cfg(false));
        assert!(sol.stats.counter_inits > 0, "support seeding happened");
        assert_eq!(sol.stats.rowwise, 0, "no whole-inequality multiplies");
        assert_eq!(sol.stats.rows_ored, 0);
        assert_eq!(sol.stats.bits_probed, 0);
        assert!(sol.stats.work_ops() > 0);
    }

    #[test]
    fn retraction_tracks_cold_solves_triple_by_triple() {
        let db = sample_db();
        let q = parse("{ ?x p ?y . ?y q ?z }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(false);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        let mut triples: Vec<Triple> = db.triples().collect();
        while let Some(victim) = triples.pop() {
            let db_after = db.with_triples(&triples);
            engine.retract_triples(&db_after, &soi, &cfg, &[victim]);
            let cold = solve(&db_after, &soi, &cfg);
            assert_eq!(engine.solution().chi, cold.chi, "after {victim:?}");
        }
    }

    #[test]
    fn retraction_after_early_exit_stays_empty() {
        let db = sample_db();
        let q = parse("{ ?x nolabel ?y }").unwrap();
        let soi = build_sois(&db, &q).remove(0);
        let cfg = delta_cfg(true);
        let mut engine = DeltaSolver::new(&db, &soi, &cfg);
        assert!(engine.solution().is_certainly_empty());
        let victim: Triple = db.triples().next().unwrap();
        let rest: Vec<Triple> = db.triples().skip(1).collect();
        engine.retract_triples(&db.with_triples(&rest), &soi, &cfg, &[victim]);
        let sol = engine.solution();
        assert!(sol.is_certainly_empty());
        assert!(sol.chi.iter().all(BitVec::none_set));
    }
}
