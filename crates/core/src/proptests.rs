//! Property-based equivalence tests for the two fixpoint engines and
//! every storage/execution axis: on random graphs × random queries,
//! [`FixpointMode::DeltaCounting`] and [`FixpointMode::Reevaluate`]
//! must produce bit-identical χ fixpoints and agree on emptiness — for
//! dual and forward-only simulation, with and without early exit, and
//! along incremental deletion chains and interleaved
//! insertion/deletion churn — and the χ backends
//! ([`ChiBackend::Dense`] / [`ChiBackend::Rle`]), the counter-slab
//! backends (`SlabBackend::{Dense, Sparse, Auto}`), the word-level
//! kernel instantiations (`KernelBackend::{Scalar, Unrolled, Simd,
//! Auto}`), the drain strategies and the seeding/draining thread
//! counts must additionally agree on every *logical* work counter
//! ([`crate::SolveStats::logical`] — everything except the storage
//! gauges and the run-aware drain's `row_lookups`).
//!
//! [`FixpointMode::DeltaCounting`]: crate::FixpointMode::DeltaCounting
//! [`FixpointMode::Reevaluate`]: crate::FixpointMode::Reevaluate
//! [`ChiBackend::Dense`]: crate::ChiBackend::Dense
//! [`ChiBackend::Rle`]: crate::ChiBackend::Rle

use crate::{
    build_sois_with, solve, solve_from, ChiBackend, DrainStrategy, FixpointMode,
    IncrementalDualSim, KernelBackend, SimulationKind, SlabBackend, SolverConfig,
};
use dualsim_graph::{GraphDb, GraphDbBuilder, NodeKind, Triple};
use dualsim_query::{parse, Query};
use proptest::prelude::*;

const NODES: u8 = 10;
const LABELS: u8 = 3;

fn arb_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec((0..NODES, 0..LABELS, 0..NODES), 1..36).prop_map(|triples| {
        let mut b = GraphDbBuilder::new();
        // Intern all nodes first so identifiers are stable across
        // databases generated from different triple lists.
        for i in 0..NODES {
            b.add_node(&format!("n{i}"), NodeKind::Iri).unwrap();
        }
        for l in 0..LABELS {
            b.intern_label(&format!("p{l}"));
        }
        for (s, p, o) in triples {
            b.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"))
                .unwrap();
        }
        b.finish()
    })
}

/// One triple pattern as concrete syntax; label index `LABELS` denotes a
/// predicate absent from every generated database, and a few objects are
/// constants (sometimes absent ones).
fn arb_pattern() -> impl Strategy<Value = String> {
    (0u8..4, 0..=LABELS, prop_oneof![
        6 => (0u8..4).prop_map(|o| format!("?v{o}")),
        1 => (0..NODES).prop_map(|o| format!("<n{o}>")),
        1 => Just("<unknown_node>".to_owned()),
    ])
        .prop_map(|(s, p, o)| format!("?v{s} p{p} {o}"))
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(arb_pattern(), 1..4),
        proptest::collection::vec(arb_pattern(), 0..3),
    )
        .prop_map(|(mandatory, optional)| {
            let text = if optional.is_empty() {
                format!("{{ {} }}", mandatory.join(" . "))
            } else {
                format!(
                    "{{ {} OPTIONAL {{ {} }} }}",
                    mandatory.join(" . "),
                    optional.join(" . ")
                )
            };
            parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"))
        })
}

fn cfg(fixpoint: FixpointMode, early_exit: bool) -> SolverConfig {
    SolverConfig {
        fixpoint,
        early_exit,
        ..SolverConfig::default()
    }
}

/// A unique scratch directory per call for durability tests (the
/// container has no tempfile crate).
fn scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dualsim-proptest-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both engines converge to the identical largest solution on every
    /// union-free branch, for every (kind × early-exit) combination.
    #[test]
    fn delta_and_reevaluate_compute_the_same_fixpoint(db in arb_db(), q in arb_query()) {
        for kind in [SimulationKind::Dual, SimulationKind::Forward] {
            for soi in build_sois_with(&db, &q, kind) {
                for early_exit in [false, true] {
                    let reev = solve(&db, &soi, &cfg(FixpointMode::Reevaluate, early_exit));
                    let delta = solve(&db, &soi, &cfg(FixpointMode::DeltaCounting, early_exit));
                    prop_assert_eq!(
                        &reev.chi, &delta.chi,
                        "{} ({:?}, early_exit={})", q, kind, early_exit
                    );
                    prop_assert_eq!(
                        reev.is_certainly_empty(), delta.is_certainly_empty(),
                        "{} ({:?}, early_exit={})", q, kind, early_exit
                    );
                }
            }
        }
    }

    /// The delta engine's warm start (`solve_from` on a previous, larger
    /// solution after deletions) matches the re-evaluation warm start
    /// and the cold solve.
    #[test]
    fn delta_warm_start_matches_cold(db in arb_db(), q in arb_query(), keep_every in 2usize..5) {
        let remaining: Vec<Triple> = db
            .triples()
            .enumerate()
            .filter(|(i, _)| i % keep_every != 0)
            .map(|(_, t)| t)
            .collect();
        let db_after = db.with_triples(&remaining).unwrap();
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            for fixpoint in [FixpointMode::Reevaluate, FixpointMode::DeltaCounting] {
                let config = cfg(fixpoint, false);
                let old = solve(&db, &soi, &config);
                let warm = solve_from(&db_after, &soi, &config, old.chi.clone());
                let cold = solve(&db_after, &soi, &config);
                prop_assert_eq!(&warm.chi, &cold.chi, "{} ({:?})", q, fixpoint);
            }
        }
    }

    /// The sharded drain is a *pure execution strategy*: for every
    /// thread count it produces bit-identical χ — equal to both the
    /// sequential drain and the re-evaluation engine — and, because the
    /// round/shard/merge structure is thread-count independent,
    /// bit-identical work counters (`SolveStats` as a whole, hence also
    /// `work_ops()`), for dual and forward-only systems, with and
    /// without early exit.
    #[test]
    fn sharded_drain_equals_sequential_and_reevaluate(db in arb_db(), q in arb_query()) {
        for kind in [SimulationKind::Dual, SimulationKind::Forward] {
            for soi in build_sois_with(&db, &q, kind) {
                for early_exit in [false, true] {
                    let reev = solve(&db, &soi, &cfg(FixpointMode::Reevaluate, early_exit));
                    let seq = solve(&db, &soi, &cfg(FixpointMode::DeltaCounting, early_exit));
                    prop_assert_eq!(&reev.chi, &seq.chi, "{} ({:?})", q, kind);
                    for threads in [1usize, 2, 4, 16] {
                        let config = SolverConfig {
                            drain: DrainStrategy::Sharded { threads },
                            // Threshold 0 keeps even tiny proptest
                            // rounds on the scoped-thread path.
                            drain_inline_below: 0,
                            ..cfg(FixpointMode::DeltaCounting, early_exit)
                        };
                        let par = solve(&db, &soi, &config);
                        prop_assert_eq!(
                            &seq.chi, &par.chi,
                            "{} ({:?}, {} threads, early_exit={})", q, kind, threads, early_exit
                        );
                        prop_assert_eq!(
                            &seq.stats, &par.stats,
                            "{} ({:?}, {} threads, early_exit={})", q, kind, threads, early_exit
                        );
                    }
                }
            }
        }
    }

    /// Incremental deletion chains through the *sharded* drain stay
    /// bit-identical — solution and work counters — to the sequential
    /// drain, and both track the re-evaluation engine's solution.
    #[test]
    fn sharded_incremental_deletions_match_sequential(db in arb_db(), q in arb_query()) {
        let delta_cfg = |drain| SolverConfig {
            drain,
            drain_inline_below: 0, // keep tiny rounds on the thread path
            ..cfg(FixpointMode::DeltaCounting, false)
        };
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut engines: Vec<IncrementalDualSim> = [
                DrainStrategy::Sequential,
                DrainStrategy::Sharded { threads: 2 },
                DrainStrategy::Sharded { threads: 4 },
                DrainStrategy::Sharded { threads: 16 },
            ]
            .into_iter()
            .map(|drain| IncrementalDualSim::new(&db, soi.clone(), delta_cfg(drain)))
            .collect();
            let mut triples: Vec<Triple> = db.triples().collect();
            while triples.len() > 1 {
                let batch: Vec<Triple> = triples.split_off(triples.len().saturating_sub(2));
                let db_after = db.with_triples(&triples).unwrap();
                for inc in engines.iter_mut() {
                    inc.apply_deletions(&db_after, &batch).unwrap();
                }
                let (seq, sharded) = engines.split_first().unwrap();
                for inc in sharded {
                    prop_assert_eq!(&seq.solution().chi, &inc.solution().chi, "{}", q);
                    prop_assert_eq!(&seq.solution().stats, &inc.solution().stats, "{}", q);
                }
                let cold = solve(&db_after, &soi, &cfg(FixpointMode::Reevaluate, false));
                prop_assert_eq!(&seq.solution().chi, &cold.chi, "{} vs cold", q);
            }
        }
    }

    /// The χ storage backend is a *pure representation choice*: for
    /// every engine × kind × early-exit combination, the dense and RLE
    /// backends (and the per-solve `Auto` resolution) converge to
    /// bit-identical χ and identical logical work counters — every
    /// field of `SolveStats` except the backend-dependent
    /// `chi_peak_words` storage metric.
    #[test]
    fn chi_backends_are_equivalent(db in arb_db(), q in arb_query()) {
        for kind in [SimulationKind::Dual, SimulationKind::Forward] {
            for soi in build_sois_with(&db, &q, kind) {
                for fixpoint in [FixpointMode::Reevaluate, FixpointMode::DeltaCounting] {
                    for early_exit in [false, true] {
                        let cfg = |chi_backend| SolverConfig {
                            chi_backend,
                            ..cfg(fixpoint, early_exit)
                        };
                        let dense = solve(&db, &soi, &cfg(ChiBackend::Dense));
                        let rle = solve(&db, &soi, &cfg(ChiBackend::Rle));
                        let auto = solve(&db, &soi, &cfg(ChiBackend::Auto));
                        let ctx = format!("{q} ({kind:?}, {fixpoint:?}, early_exit={early_exit})");
                        prop_assert_eq!(&dense.chi, &rle.chi, "dense vs rle on {}", ctx);
                        prop_assert_eq!(&dense.chi, &auto.chi, "dense vs auto on {}", ctx);
                        prop_assert_eq!(
                            dense.stats.logical(), rle.stats.logical(),
                            "logical stats diverge on {}", ctx
                        );
                        prop_assert_eq!(
                            dense.stats.logical(), auto.stats.logical(),
                            "auto logical stats diverge on {}", ctx
                        );
                    }
                }
            }
        }
    }

    /// Incremental deletion chains through the RLE backend track the
    /// dense backend bit for bit — χ *and* logical work counters after
    /// every batch — and both track a cold dense solve.
    #[test]
    fn chi_backends_agree_along_incremental_deletion_chains(db in arb_db(), q in arb_query()) {
        let cfg = |chi_backend| SolverConfig {
            chi_backend,
            ..cfg(FixpointMode::DeltaCounting, false)
        };
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut dense = IncrementalDualSim::new(&db, soi.clone(), cfg(ChiBackend::Dense));
            let mut rle = IncrementalDualSim::new(&db, soi.clone(), cfg(ChiBackend::Rle));
            let mut triples: Vec<Triple> = db.triples().collect();
            while triples.len() > 1 {
                let batch: Vec<Triple> = triples.split_off(triples.len().saturating_sub(2));
                let db_after = db.with_triples(&triples).unwrap();
                dense.apply_deletions(&db_after, &batch).unwrap();
                rle.apply_deletions(&db_after, &batch).unwrap();
                prop_assert_eq!(&dense.solution().chi, &rle.solution().chi, "{}", q);
                prop_assert_eq!(
                    dense.solution().stats.logical(),
                    rle.solution().stats.logical(),
                    "{}", q
                );
                let cold = solve(&db_after, &soi, &cfg(ChiBackend::Dense));
                prop_assert_eq!(&rle.solution().chi, &cold.chi, "{} vs cold", q);
            }
        }
    }

    /// The adaptive drain-round threading threshold
    /// (`drain_inline_below`) is invisible: for thresholds on both
    /// sides of every round's batch size — always-threaded (0), values
    /// straddling typical batch sizes, and always-inline (`usize::MAX`)
    /// — the sharded drain stays bit-identical (χ and full
    /// `SolveStats`) to the sequential drain.
    #[test]
    fn drain_inline_threshold_is_invisible(db in arb_db(), q in arb_query(), near in 1usize..8) {
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let seq = solve(&db, &soi, &cfg(FixpointMode::DeltaCounting, false));
            for threshold in [0, near, usize::MAX] {
                let config = SolverConfig {
                    drain: DrainStrategy::Sharded { threads: 4 },
                    drain_inline_below: threshold,
                    ..cfg(FixpointMode::DeltaCounting, false)
                };
                let par = solve(&db, &soi, &config);
                prop_assert_eq!(&seq.chi, &par.chi, "{} (threshold {})", q, threshold);
                prop_assert_eq!(&seq.stats, &par.stats, "{} (threshold {})", q, threshold);
            }
        }
    }

    /// The counter-slab backend, the χ backend, the drain strategy and
    /// the seeding/draining thread counts are all *pure representation
    /// and execution choices*: every combination of slab backend
    /// {Dense, Sparse, Auto} × χ backend {Dense, Rle} × drain
    /// {Sequential, Sharded} × threads {1, 4} (applied to both the
    /// drain and the parallel eager seeding) converges to bit-identical
    /// χ and identical *logical* work counters
    /// ([`crate::SolveStats::logical`] — everything except the storage
    /// gauges and the run-aware drain's `row_lookups`) — for dual and
    /// forward-only systems, with and without early exit.
    #[test]
    fn slab_backends_drains_and_seed_threads_are_equivalent(db in arb_db(), q in arb_query()) {
        for kind in [SimulationKind::Dual, SimulationKind::Forward] {
            for soi in build_sois_with(&db, &q, kind) {
                for early_exit in [false, true] {
                    let reference = solve(&db, &soi, &cfg(FixpointMode::DeltaCounting, early_exit));
                    for slab_backend in [SlabBackend::Dense, SlabBackend::Sparse, SlabBackend::Auto] {
                        for chi_backend in [ChiBackend::Dense, ChiBackend::Rle] {
                            for threads in [1usize, 4] {
                                let config = SolverConfig {
                                    slab_backend,
                                    chi_backend,
                                    seed_threads: threads,
                                    drain: if threads > 1 {
                                        DrainStrategy::Sharded { threads }
                                    } else {
                                        DrainStrategy::Sequential
                                    },
                                    drain_inline_below: 0,
                                    ..cfg(FixpointMode::DeltaCounting, early_exit)
                                };
                                let sol = solve(&db, &soi, &config);
                                let ctx = format!(
                                    "{q} ({kind:?}, {slab_backend:?}, {chi_backend:?}, \
                                     {threads} threads, early_exit={early_exit})"
                                );
                                prop_assert_eq!(&reference.chi, &sol.chi, "χ diverged on {}", ctx);
                                prop_assert_eq!(
                                    reference.stats.logical(), sol.stats.logical(),
                                    "logical stats diverged on {}", ctx
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Incremental deletion chains stay bit-identical across slab
    /// backends, χ backends and thread counts — χ and logical work
    /// counters after every batch — and track a cold solve.
    #[test]
    fn slab_backends_agree_along_incremental_deletion_chains(db in arb_db(), q in arb_query()) {
        let config = |slab_backend, chi_backend, threads| SolverConfig {
            slab_backend,
            chi_backend,
            seed_threads: threads,
            drain: if threads > 1 {
                DrainStrategy::Sharded { threads }
            } else {
                DrainStrategy::Sequential
            },
            drain_inline_below: 0,
            ..cfg(FixpointMode::DeltaCounting, false)
        };
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut engines: Vec<IncrementalDualSim> = [
                config(SlabBackend::Dense, ChiBackend::Dense, 1),
                config(SlabBackend::Sparse, ChiBackend::Dense, 4),
                config(SlabBackend::Sparse, ChiBackend::Rle, 1),
                config(SlabBackend::Auto, ChiBackend::Rle, 4),
            ]
            .into_iter()
            .map(|c| IncrementalDualSim::new(&db, soi.clone(), c))
            .collect();
            let mut triples: Vec<Triple> = db.triples().collect();
            while triples.len() > 1 {
                let batch: Vec<Triple> = triples.split_off(triples.len().saturating_sub(2));
                let db_after = db.with_triples(&triples).unwrap();
                for inc in engines.iter_mut() {
                    inc.apply_deletions(&db_after, &batch).unwrap();
                }
                let (reference, others) = engines.split_first().unwrap();
                for inc in others {
                    prop_assert_eq!(&reference.solution().chi, &inc.solution().chi, "{}", q);
                    prop_assert_eq!(
                        reference.solution().stats.logical(),
                        inc.solution().stats.logical(),
                        "{}", q
                    );
                }
                let cold = solve(&db_after, &soi, &cfg(FixpointMode::Reevaluate, false));
                prop_assert_eq!(&reference.solution().chi, &cold.chi, "{} vs cold", q);
            }
        }
    }

    /// Interleaved insertion/deletion churn stays bit-identical to cold
    /// solves in both fixpoint modes, across both slab backends, both χ
    /// backends and thread counts {1, 4} — the delta engines serving
    /// *both* update directions from their persistent counters (the
    /// insertion side through the 0→1 re-activation frontier) and
    /// agreeing with each other on every logical work counter.
    #[test]
    fn interleaved_updates_agree_with_cold_solves(
        db in arb_db(),
        q in arb_query(),
        script in proptest::collection::vec((any::<bool>(), any::<u32>()), 1..10),
    ) {
        let reev_cfg = cfg(FixpointMode::Reevaluate, false);
        let delta_cfgs = [
            cfg(FixpointMode::DeltaCounting, false),
            SolverConfig {
                slab_backend: SlabBackend::Sparse,
                seed_threads: 4,
                drain: DrainStrategy::Sharded { threads: 4 },
                drain_inline_below: 0,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
            SolverConfig {
                chi_backend: ChiBackend::Rle,
                slab_backend: SlabBackend::Sparse,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
        ];
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut reev = IncrementalDualSim::new(&db, soi.clone(), reev_cfg.clone());
            let mut deltas: Vec<IncrementalDualSim> = delta_cfgs
                .iter()
                .map(|c| IncrementalDualSim::new(&db, soi.clone(), c.clone()))
                .collect();
            let mut present: Vec<Triple> = db.triples().collect();
            let mut absent: Vec<Triple> = Vec::new();
            for &(insert, pick) in &script {
                let (from, to) = if insert {
                    (&mut absent, &mut present)
                } else {
                    (&mut present, &mut absent)
                };
                if from.is_empty() {
                    continue;
                }
                // Move one or two triples between the present and
                // absent pools, chosen by the script.
                let mut batch: Vec<Triple> = Vec::new();
                for round in 0..=(pick as usize % 2) {
                    if from.is_empty() {
                        break;
                    }
                    let idx = (pick as usize + round) % from.len();
                    batch.push(from.swap_remove(idx));
                }
                to.extend(&batch);
                let db_after = db.with_triples(&present).unwrap();
                if insert {
                    reev.apply_insertions(&db_after, &batch).unwrap();
                    for inc in deltas.iter_mut() {
                        inc.apply_insertions(&db_after, &batch).unwrap();
                    }
                } else {
                    reev.apply_deletions(&db_after, &batch).unwrap();
                    for inc in deltas.iter_mut() {
                        inc.apply_deletions(&db_after, &batch).unwrap();
                    }
                }
                let cold = solve(&db_after, &soi, &reev_cfg);
                let op = if insert { "insert" } else { "delete" };
                prop_assert_eq!(
                    &reev.solution().chi, &cold.chi,
                    "{} reevaluate vs cold after {} {:?}", q, op, batch
                );
                let (reference, others) = deltas.split_first().unwrap();
                prop_assert_eq!(
                    &reference.solution().chi, &cold.chi,
                    "{} delta vs cold after {} {:?}", q, op, batch
                );
                for inc in others {
                    prop_assert_eq!(&reference.solution().chi, &inc.solution().chi, "{}", q);
                    prop_assert_eq!(
                        reference.solution().stats.logical(),
                        inc.solution().stats.logical(),
                        "{} logical stats diverged after {} {:?}", q, op, batch
                    );
                }
            }
        }
    }

    /// Incremental deletion maintenance stays bit-identical to cold
    /// solves in both modes, across a whole random deletion chain — the
    /// delta mode routing deletions through its persistent counters.
    #[test]
    fn incremental_deletions_agree_across_modes(db in arb_db(), q in arb_query()) {
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut reev = IncrementalDualSim::new(
                &db, soi.clone(), cfg(FixpointMode::Reevaluate, false));
            let mut delta = IncrementalDualSim::new(
                &db, soi.clone(), cfg(FixpointMode::DeltaCounting, false));
            prop_assert_eq!(&reev.solution().chi, &delta.solution().chi, "{}", q);

            let mut triples: Vec<Triple> = db.triples().collect();
            while triples.len() > 1 {
                // Delete two triples per batch to exercise multi-triple
                // retraction.
                let batch: Vec<Triple> = triples.split_off(triples.len().saturating_sub(2));
                let db_after = db.with_triples(&triples).unwrap();
                reev.apply_deletions(&db_after, &batch).unwrap();
                delta.apply_deletions(&db_after, &batch).unwrap();
                prop_assert_eq!(
                    &reev.solution().chi, &delta.solution().chi,
                    "{} after deleting {:?}", q, batch
                );
                let cold = solve(&db_after, &soi, &cfg(FixpointMode::Reevaluate, false));
                prop_assert_eq!(&delta.solution().chi, &cold.chi, "{} vs cold", q);
            }
        }
    }

    /// Chaos: kill maintenance at **every registered failpoint site**
    /// (the engine's and the durability layer's —
    /// `failpoints::registered_sites()`, so a site added to either
    /// layer is covered automatically) across random
    /// insert/delete/mixed churn on a *durable* instance. A batch
    /// crashed before its WAL record was committed must roll back to
    /// the exact pre-batch solution; a batch crashed in the *snapshot*
    /// path after its record committed stays applied (the documented
    /// exception). Either way the instance must then converge to the
    /// cold solve. The `rollback` site is exercised as a *failing
    /// rollback* (armed together with a crash point), which must poison
    /// and then heal.
    #[test]
    fn chaos_killed_maintenance_recovers_to_cold_solves(
        db in arb_db(),
        q in arb_query(),
        script in proptest::collection::vec((any::<bool>(), 0u8..250), 1..7),
        countdown in 0u32..3,
    ) {
        use crate::{failpoints, DurabilityOptions, MaintainError};
        let config = cfg(FixpointMode::DeltaCounting, false);
        let sites = failpoints::registered_sites();
        for (branch, soi) in build_sois_with(&db, &q, SimulationKind::Dual).into_iter().enumerate() {
            let dir = scratch_dir();
            let mut opts = DurabilityOptions::new(&dir);
            // Snapshot every batch so the snapshot sites are reachable.
            opts.snapshot_every = Some(1);
            opts.meta = format!("branch {branch}");
            let mut inc =
                IncrementalDualSim::new_durable(&db, soi.clone(), config.clone(), &opts).unwrap();
            let mut present: Vec<Triple> = db.triples().collect();
            let mut absent: Vec<Triple> = Vec::new();
            for (step, &(insert, pick)) in script.iter().enumerate() {
                let (from, to) = if insert {
                    (&mut absent, &mut present)
                } else {
                    (&mut present, &mut absent)
                };
                if from.is_empty() {
                    continue;
                }
                let mut batch: Vec<Triple> = Vec::new();
                for round in 0..=(pick as usize % 2) {
                    if from.is_empty() {
                        break;
                    }
                    let idx = (pick as usize + round) % from.len();
                    batch.push(from.swap_remove(idx));
                }
                to.extend(&batch);
                let db_after = db.with_triples(&present).unwrap();
                let pre_chi = inc.solution().chi.clone();

                // Rotate the crash site through every registered
                // failpoint; the `rollback` site additionally arms
                // `pre-drain` so there is an abort whose rollback can
                // fail.
                let point = sites[(step + pick as usize) % sites.len()];
                failpoints::disarm_all();
                failpoints::arm(point, countdown);
                if point == "rollback" {
                    failpoints::arm("pre-drain", 0);
                }
                let crashed = if insert {
                    inc.apply_insertions(&db_after, &batch).map(|_| ())
                } else {
                    inc.apply_deletions(&db_after, &batch).map(|_| ())
                };
                failpoints::disarm_all();

                match crashed {
                    // A crash in the snapshot path happens *after* the
                    // batch committed (WAL record on disk, epoch
                    // advanced): the solution is the post-batch one and
                    // no retry is due.
                    Err(MaintainError::Failpoint { point })
                        if point.starts_with("snapshot-") => {}
                    Err(MaintainError::Failpoint { .. }) => {
                        // The batch rolled back (or poisoned): the
                        // published solution must be the untouched
                        // pre-batch one either way.
                        prop_assert_eq!(
                            &inc.solution().chi, &pre_chi,
                            "{} crash at {} left a half-applied batch", q, point
                        );
                        // Re-apply without faults: a warm engine
                        // continues, a poisoned one heals by rebuild.
                        let healed = if insert {
                            inc.apply_insertions(&db_after, &batch).map(|_| ())
                        } else {
                            inc.apply_deletions(&db_after, &batch).map(|_| ())
                        };
                        prop_assert!(healed.is_ok(), "{} retry after {}: {:?}", q, point, healed);
                        prop_assert!(!inc.engine_is_poisoned(), "{} still poisoned", q);
                    }
                    Err(e) => prop_assert!(false, "{} unexpected error {:?}", q, e),
                    // The armed site was not reached (or its countdown
                    // did not elapse): the batch applied normally.
                    Ok(()) => {}
                }
                let cold = solve(&db_after, &soi, &config);
                prop_assert_eq!(
                    &inc.solution().chi, &cold.chi,
                    "{} diverged from cold after {} crash at {} ({:?})",
                    q, if insert { "insert" } else { "delete" }, point, batch
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Durable chaos: kill a durable resident at every registered
    /// failpoint site mid-script, abandon the in-memory instance (the
    /// "process died"), and [`IncrementalDualSim::recover`] from disk.
    /// The recovered χ and logical `SolveStats` must be bit-identical
    /// to an uninterrupted plain run over the committed batch prefix —
    /// across χ {Dense, Rle} × slab {Dense, Sparse} × drain
    /// {Sequential, Sharded} × seed threads, and in re-evaluation mode.
    #[test]
    fn chaos_durable_kills_recover_bit_identical(
        db in arb_db(),
        q in arb_query(),
        script in proptest::collection::vec((any::<bool>(), 0u8..250), 1..6),
        site_pick in 0usize..12,
        countdown in 0u32..2,
    ) {
        use crate::{failpoints, DurabilityOptions, MaintainError};
        let configs = [
            cfg(FixpointMode::DeltaCounting, false),
            SolverConfig {
                chi_backend: ChiBackend::Rle,
                slab_backend: SlabBackend::Sparse,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
            SolverConfig {
                slab_backend: SlabBackend::Sparse,
                seed_threads: 4,
                drain: DrainStrategy::Sharded { threads: 4 },
                drain_inline_below: 0,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
            cfg(FixpointMode::Reevaluate, false),
        ];
        let sites = failpoints::registered_sites();
        let Some(soi) = build_sois_with(&db, &q, SimulationKind::Dual).into_iter().next() else {
            return Ok(());
        };
        for config in &configs {
            let dir = scratch_dir();
            let mut opts = DurabilityOptions::new(&dir);
            opts.snapshot_every = Some(2);
            let mut durable =
                IncrementalDualSim::new_durable(&db, soi.clone(), config.clone(), &opts).unwrap();
            let mut present: Vec<Triple> = db.triples().collect();
            let mut absent: Vec<Triple> = Vec::new();
            // Every batch attempted, in order — WAL epoch e holds batch
            // `history[e - 1]`.
            let mut history: Vec<(bool, Vec<Triple>)> = Vec::new();
            for (step, &(insert, pick)) in script.iter().enumerate() {
                let (from, to) = if insert {
                    (&mut absent, &mut present)
                } else {
                    (&mut present, &mut absent)
                };
                if from.is_empty() {
                    continue;
                }
                let mut batch: Vec<Triple> = Vec::new();
                for round in 0..=(pick as usize % 2) {
                    if from.is_empty() {
                        break;
                    }
                    let idx = (pick as usize + round) % from.len();
                    batch.push(from.swap_remove(idx));
                }
                to.extend(&batch);
                let db_after = db.with_triples(&present).unwrap();
                let point = sites[(step + site_pick) % sites.len()];
                failpoints::disarm_all();
                failpoints::arm(point, countdown);
                if point == "rollback" {
                    failpoints::arm("pre-drain", 0);
                }
                let res = if insert {
                    durable.apply_insertions(&db_after, &batch).map(|_| ())
                } else {
                    durable.apply_deletions(&db_after, &batch).map(|_| ())
                };
                failpoints::disarm_all();
                history.push((insert, batch));
                match res {
                    Ok(()) => {}
                    // The "process dies" at the injected fault: stop
                    // driving the instance mid-script.
                    Err(MaintainError::Failpoint { .. }) => break,
                    Err(e) => prop_assert!(false, "{} unexpected error {:?}", q, e),
                }
            }
            drop(durable); // crash: only the durability directory survives

            let rec = IncrementalDualSim::recover(&opts).unwrap();
            let committed = rec.report.epoch as usize;
            // Recovery lands on a committed prefix of the attempted
            // history: everything the run acknowledged, plus possibly
            // the killed batch itself iff its WAL record hit the disk
            // before the crash (a torn or unwritten record drops it, a
            // fully framed one — e.g. a crash between write and fsync
            // acknowledgment, or in the snapshot path — keeps it).
            prop_assert!(
                committed <= history.len(),
                "{} recovered {} epochs from {} attempts", q, committed, history.len()
            );
            // Reference: an uninterrupted plain run over that prefix.
            let mut reference = IncrementalDualSim::new(&db, soi.clone(), config.clone());
            let mut ref_present: Vec<Triple> = db.triples().collect();
            for (insert, batch) in &history[..committed] {
                if *insert {
                    ref_present.extend(batch.iter().copied());
                } else {
                    ref_present.retain(|t| !batch.contains(t));
                }
                let db_i = db.with_triples(&ref_present).unwrap();
                if *insert {
                    reference.apply_insertions(&db_i, batch).unwrap();
                } else {
                    reference.apply_deletions(&db_i, batch).unwrap();
                }
            }
            prop_assert_eq!(
                &rec.sim.solution().chi, &reference.solution().chi,
                "{} recovered χ diverged over {} committed epochs ({:?})",
                q, committed, config
            );
            prop_assert_eq!(
                rec.sim.maintenance_stats().logical(),
                reference.maintenance_stats().logical(),
                "{} recovered logical stats diverged ({:?})", q, config
            );
            prop_assert_eq!(rec.db.num_triples(), db.with_triples(&ref_present).unwrap().num_triples());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Recovery fuzzing: truncate the WAL at **every record boundary**
    /// and at a random intra-record offset, from the tail downwards.
    /// Each recovery must land exactly on the longest committed prefix
    /// — χ and logical stats bit-identical to an uninterrupted run of
    /// that prefix — reporting the torn bytes it discarded.
    #[test]
    fn fuzzed_wal_truncation_recovers_every_committed_prefix(
        db in arb_db(),
        q in arb_query(),
        intra in 1usize..64,
    ) {
        use crate::DurabilityOptions;
        let config = cfg(FixpointMode::DeltaCounting, false);
        let Some(soi) = build_sois_with(&db, &q, SimulationKind::Dual).into_iter().next() else {
            return Ok(());
        };
        let dir = scratch_dir();
        let opts = DurabilityOptions::new(&dir);
        let mut durable =
            IncrementalDualSim::new_durable(&db, soi.clone(), config.clone(), &opts).unwrap();
        // One deletion batch per triple, up to 4 batches; record the
        // expected solution after every prefix.
        let mut triples: Vec<Triple> = db.triples().collect();
        let mut reference = IncrementalDualSim::new(&db, soi.clone(), config.clone());
        let mut expected = vec![(
            reference.solution().chi.clone(),
            reference.maintenance_stats().logical(),
        )];
        let batches = triples.len().min(4);
        for _ in 0..batches {
            let victim = triples.pop().unwrap();
            let db_after = db.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
            reference.apply_deletions(&db_after, &[victim]).unwrap();
            expected.push((
                reference.solution().chi.clone(),
                reference.maintenance_stats().logical(),
            ));
        }
        drop(durable);
        drop(reference);

        // Parse the WAL frames to find every record boundary: 8-byte
        // header, then per record a 4-byte length + 4-byte CRC + body.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let mut boundaries = vec![8usize];
        let mut pos = 8usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes([bytes[pos], bytes[pos+1], bytes[pos+2], bytes[pos+3]]) as usize;
            pos += 8 + len;
            prop_assert!(pos <= bytes.len(), "clean WAL has no torn frame");
            boundaries.push(pos);
        }
        prop_assert_eq!(boundaries.len(), batches + 1, "one record per batch");

        // Truncate from the tail downwards: first mid-record (a torn
        // final record), then exactly at the boundary below it.
        for i in (0..batches).rev() {
            let record_len = boundaries[i + 1] - boundaries[i];
            let cut = boundaries[i] + 1 + (intra % (record_len - 1));
            for (offset, expect_epoch) in [(cut, i), (boundaries[i], i)] {
                let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
                f.set_len(offset as u64).unwrap();
                drop(f);
                let rec = IncrementalDualSim::recover(&opts).unwrap();
                prop_assert_eq!(
                    rec.report.epoch as usize, expect_epoch,
                    "{} truncated at byte {} (boundary {})", q, offset, boundaries[i]
                );
                let (chi, logical) = &expected[expect_epoch];
                prop_assert_eq!(&rec.sim.solution().chi, chi, "{} prefix {}", q, expect_epoch);
                prop_assert_eq!(
                    &rec.sim.maintenance_stats().logical(), logical,
                    "{} prefix {} logical stats", q, expect_epoch
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovery fuzzing: flip a random byte in the WAL body (the CRC
    /// must detect it — recovery lands on the prefix before the damaged
    /// record) and in the newest snapshot (recovery must skip it and
    /// fall back to an older snapshot plus a longer WAL replay),
    /// asserting parity with an uninterrupted run in both cases.
    #[test]
    fn fuzzed_bit_flips_are_detected_by_checksums(
        db in arb_db(),
        q in arb_query(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        use crate::DurabilityOptions;
        let config = cfg(FixpointMode::DeltaCounting, false);
        let Some(soi) = build_sois_with(&db, &q, SimulationKind::Dual).into_iter().next() else {
            return Ok(());
        };

        // Run with snapshots disabled: only the epoch-0 snapshot, all
        // batches in the WAL. Flip one byte of the WAL.
        let dir = scratch_dir();
        let opts = DurabilityOptions::new(&dir);
        let mut durable =
            IncrementalDualSim::new_durable(&db, soi.clone(), config.clone(), &opts).unwrap();
        let mut reference = IncrementalDualSim::new(&db, soi.clone(), config.clone());
        let mut expected = vec![(
            reference.solution().chi.clone(),
            reference.maintenance_stats().logical(),
        )];
        let mut triples: Vec<Triple> = db.triples().collect();
        let batches = triples.len().min(3);
        for _ in 0..batches {
            let victim = triples.pop().unwrap();
            let db_after = db.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
            reference.apply_deletions(&db_after, &[victim]).unwrap();
            expected.push((
                reference.solution().chi.clone(),
                reference.maintenance_stats().logical(),
            ));
        }
        drop(durable);

        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let pos = (flip_pos as usize) % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(&wal_path, &bytes).unwrap();
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        let committed = rec.report.epoch as usize;
        prop_assert!(committed <= batches, "{} flip at byte {} bit {}", q, pos, flip_bit);
        let (chi, logical) = &expected[committed];
        prop_assert_eq!(
            &rec.sim.solution().chi, chi,
            "{} flip at byte {} bit {} recovered a damaged prefix", q, pos, flip_bit
        );
        prop_assert_eq!(&rec.sim.maintenance_stats().logical(), logical, "{}", q);
        std::fs::remove_dir_all(&dir).ok();

        // Run with a snapshot per batch; flip one byte of the *newest*
        // snapshot. Recovery must skip it for an older one and replay
        // the WAL tail to full parity.
        let dir = scratch_dir();
        let mut opts = DurabilityOptions::new(&dir);
        opts.snapshot_every = Some(1);
        let mut durable =
            IncrementalDualSim::new_durable(&db, soi.clone(), config.clone(), &opts).unwrap();
        let mut triples: Vec<Triple> = db.triples().collect();
        for _ in 0..batches {
            let victim = triples.pop().unwrap();
            let db_after = db.with_triples(&triples).unwrap();
            durable.apply_deletions(&db_after, &[victim]).unwrap();
        }
        drop(durable);
        let mut snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .collect();
        snaps.sort();
        let newest = snaps.last().unwrap();
        let mut bytes = std::fs::read(newest).unwrap();
        let pos = (flip_pos as usize) % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        std::fs::write(newest, &bytes).unwrap();
        let rec = IncrementalDualSim::recover(&opts).unwrap();
        prop_assert!(
            rec.report.snapshots_skipped >= 1,
            "{} damaged snapshot was not skipped", q
        );
        prop_assert_eq!(rec.report.epoch as usize, batches, "{}", q);
        let (chi, logical) = &expected[batches];
        prop_assert_eq!(&rec.sim.solution().chi, chi, "{}", q);
        prop_assert_eq!(&rec.sim.maintenance_stats().logical(), logical, "{}", q);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The word-level kernel is a *pure instruction-selection choice*:
    /// every kernel instantiation {Scalar, Unrolled, Simd, Auto} ×
    /// χ backend {Dense, Rle} × slab backend {Dense, Sparse} ×
    /// drain/seed thread count {1, 4} converges to bit-identical χ and
    /// identical logical work counters, in both fixpoint engines — a
    /// kernel moves the same words faster, it never changes *which*
    /// words move. (`Simd` on a host without AVX2 resolves to the
    /// scalar fallback, which is itself a valid parity case.)
    #[test]
    fn kernel_backends_are_equivalent(db in arb_db(), q in arb_query()) {
        let kernels = [
            KernelBackend::Scalar,
            KernelBackend::Unrolled,
            KernelBackend::Simd,
            KernelBackend::Auto,
        ];
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let reference = solve(&db, &soi, &SolverConfig {
                kernel_backend: KernelBackend::Scalar,
                ..cfg(FixpointMode::DeltaCounting, false)
            });
            for kernel_backend in kernels {
                let reev = solve(&db, &soi, &SolverConfig {
                    kernel_backend,
                    ..cfg(FixpointMode::Reevaluate, false)
                });
                prop_assert_eq!(
                    &reference.chi, &reev.chi,
                    "{} ({:?}, reevaluate)", q, kernel_backend
                );
                for chi_backend in [ChiBackend::Dense, ChiBackend::Rle] {
                    for slab_backend in [SlabBackend::Dense, SlabBackend::Sparse] {
                        for threads in [1usize, 4] {
                            let config = SolverConfig {
                                kernel_backend,
                                chi_backend,
                                slab_backend,
                                seed_threads: threads,
                                drain: if threads > 1 {
                                    DrainStrategy::Sharded { threads }
                                } else {
                                    DrainStrategy::Sequential
                                },
                                drain_inline_below: 0,
                                ..cfg(FixpointMode::DeltaCounting, false)
                            };
                            let sol = solve(&db, &soi, &config);
                            let ctx = format!(
                                "{q} ({kernel_backend:?}, {chi_backend:?}, \
                                 {slab_backend:?}, {threads} threads)"
                            );
                            prop_assert_eq!(&reference.chi, &sol.chi, "χ diverged on {}", ctx);
                            prop_assert_eq!(
                                reference.stats.logical(), sol.stats.logical(),
                                "logical stats diverged on {}", ctx
                            );
                        }
                    }
                }
            }
        }
    }

    /// The drain budget is a sound degradation, never a wrong answer:
    /// under an absurdly tight budget every update still produces the
    /// cold-solve solution (served by rollback + transparent rebuild),
    /// and the robustness counters record how often that ladder was
    /// taken.
    #[test]
    fn chaos_tight_budgets_never_change_solutions(db in arb_db(), q in arb_query()) {
        let config = SolverConfig {
            drain_budget: Some(1),
            ..cfg(FixpointMode::DeltaCounting, false)
        };
        for soi in build_sois_with(&db, &q, SimulationKind::Dual) {
            let mut inc = IncrementalDualSim::new(&db, soi.clone(), config.clone());
            let mut triples: Vec<Triple> = db.triples().collect();
            while triples.len() > 1 {
                let batch: Vec<Triple> = triples.split_off(triples.len().saturating_sub(2));
                let db_after = db.with_triples(&triples).unwrap();
                let res = inc.apply_deletions(&db_after, &batch);
                prop_assert!(res.is_ok(), "{}: budget aborts are transparent, got {:?}", q, res);
                let cold = solve(&db_after, &soi, &config);
                prop_assert_eq!(
                    &inc.solution().chi, &cold.chi,
                    "{} diverged from cold under budget after deleting {:?}", q, batch
                );
            }
        }
    }
}

/// A query-text generator for the session tests ([`crate::QuerySession`]
/// registers by text, not by parsed [`Query`]). Same shape as
/// [`arb_query`].
fn arb_query_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(arb_pattern(), 1..4),
        proptest::collection::vec(arb_pattern(), 0..3),
    )
        .prop_map(|(mandatory, optional)| {
            if optional.is_empty() {
                format!("{{ {} }}", mandatory.join(" . "))
            } else {
                format!(
                    "{{ {} OPTIONAL {{ {} }} }}",
                    mandatory.join(" . "),
                    optional.join(" . ")
                )
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Session chaos isolation: drive a durable multi-query session and
    /// an uninterrupted memory-only reference session through the same
    /// churn script, arming one registered failpoint site per batch.
    /// A kill must degrade at most the one query it fired in — every
    /// query that committed a batch stays bit-identical (χ *and*
    /// logical `SolveStats`, per branch) to the reference throughout,
    /// and once healing has run its ladder every query converges back
    /// to the reference's χ. Queries are spread across
    /// χ {Dense, Rle} × slab {Dense, Sparse} × drain
    /// {Sequential, Sharded} so isolation holds on every backend.
    #[test]
    fn chaos_session_kills_isolate_to_one_query(
        db in arb_db(),
        texts in proptest::collection::vec(arb_query_text(), 3..5),
        script in proptest::collection::vec((any::<bool>(), 0u8..250), 2..7),
        site_pick in 0usize..16,
        countdown in 0u32..3,
    ) {
        use crate::{
            failpoints, QueryOutcome, QuerySession, SessionDurability, SessionOptions,
        };
        use std::collections::BTreeSet;

        let configs = [
            cfg(FixpointMode::DeltaCounting, false),
            SolverConfig {
                chi_backend: ChiBackend::Rle,
                slab_backend: SlabBackend::Sparse,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
            SolverConfig {
                slab_backend: SlabBackend::Sparse,
                drain: DrainStrategy::Sharded { threads: 2 },
                drain_inline_below: 0,
                ..cfg(FixpointMode::DeltaCounting, false)
            },
        ];
        let sites = failpoints::registered_sites();
        let dir = scratch_dir();
        let opts = SessionOptions {
            durability: Some(SessionDurability {
                root: dir.clone(),
                snapshot_every: Some(2),
                fsync: true,
                keep_snapshots: 2,
            }),
            ..SessionOptions::default()
        };
        failpoints::disarm_all();
        let mut chaotic = QuerySession::new(db.clone(), opts);
        let mut reference = QuerySession::new(db.clone(), SessionOptions::default());
        let mut names: Vec<String> = Vec::new();
        for (i, text) in texts.iter().enumerate() {
            let name = format!("q{i}");
            let config = configs[i % configs.len()].clone();
            chaotic.register(&name, text, config.clone()).unwrap();
            reference.register(&name, text, config).unwrap();
            names.push(name);
        }

        // Names that ever saw a non-Committed outcome: their engines may
        // have been rolled back, replayed, or rebuilt, so only their χ
        // (not their physical work counters) must converge.
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        let mut present: Vec<Triple> = db.triples().collect();
        let mut absent: Vec<Triple> = Vec::new();
        let drive = |chaotic: &mut QuerySession,
                         reference: &mut QuerySession,
                         tainted: &mut BTreeSet<String>,
                         insert: bool,
                         batch: &[Triple],
                         point: Option<&'static str>|
         -> Result<(), proptest::test_runner::TestCaseError> {
            failpoints::disarm_all();
            if let Some(point) = point {
                failpoints::arm(point, countdown);
                if point == "rollback" {
                    failpoints::arm("pre-drain", 0);
                }
            }
            let report = chaotic.apply_batch(insert, batch).unwrap();
            failpoints::disarm_all();
            let ref_report = reference.apply_batch(insert, batch).unwrap();
            prop_assert_eq!(report.applied, ref_report.applied);
            for (name, outcome) in &report.outcomes {
                if !matches!(outcome, QueryOutcome::Committed { .. }) {
                    tainted.insert(name.clone());
                    continue;
                }
                if tainted.contains(name) {
                    continue;
                }
                // The isolation invariant: a query untouched by every
                // kill so far is bit-identical to the uninterrupted
                // reference after each committed batch.
                let mine = chaotic.solutions(name).unwrap();
                let theirs = reference.solutions(name).unwrap();
                prop_assert_eq!(mine.len(), theirs.len());
                for (m, t) in mine.iter().zip(&theirs) {
                    prop_assert_eq!(&m.chi, &t.chi, "{} diverged", name);
                }
                let mine = chaotic.maintenance_stats(name).unwrap();
                let theirs = reference.maintenance_stats(name).unwrap();
                for (m, t) in mine.iter().zip(&theirs) {
                    prop_assert_eq!(
                        m.logical(), t.logical(),
                        "{} logical stats diverged", name
                    );
                }
            }
            Ok(())
        };

        for (step, &(insert, pick)) in script.iter().enumerate() {
            let (from, to) = if insert {
                (&mut absent, &mut present)
            } else {
                (&mut present, &mut absent)
            };
            if from.is_empty() {
                continue;
            }
            let mut batch: Vec<Triple> = Vec::new();
            for round in 0..=(pick as usize % 2) {
                if from.is_empty() {
                    break;
                }
                let idx = (pick as usize + round) % from.len();
                batch.push(from.swap_remove(idx));
            }
            to.extend(&batch);
            let point = sites[(step + site_pick) % sites.len()];
            drive(
                &mut chaotic,
                &mut reference,
                &mut tainted,
                insert,
                &batch,
                Some(point),
            )?;
        }

        // Aftermath: fault-free churn lets due replays heal; anything
        // still degraded or quarantined after that is healed explicitly.
        for _ in 0..6 {
            if names.iter().all(|n| chaotic.health(n).unwrap().is_healthy()) {
                break;
            }
            let insert = present.is_empty() || (!absent.is_empty() && absent.len() > present.len());
            let (from, to) = if insert {
                (&mut absent, &mut present)
            } else {
                (&mut present, &mut absent)
            };
            if from.is_empty() {
                break;
            }
            let batch = vec![from.swap_remove(0)];
            to.extend(&batch);
            drive(
                &mut chaotic,
                &mut reference,
                &mut tainted,
                insert,
                &batch,
                None,
            )?;
        }
        for name in &names {
            if !chaotic.health(name).unwrap().is_healthy() {
                chaotic.heal(name).unwrap();
            }
        }

        // Convergence: every query — killed, healed, rebuilt, or never
        // touched — serves the reference's χ; untouched queries match
        // its logical work counters too.
        for name in &names {
            prop_assert!(chaotic.health(name).unwrap().is_healthy(), "{} not healed", name);
            let mine = chaotic.solutions(name).unwrap();
            let theirs = reference.solutions(name).unwrap();
            prop_assert_eq!(mine.len(), theirs.len());
            for (m, t) in mine.iter().zip(&theirs) {
                prop_assert_eq!(
                    &m.chi, &t.chi,
                    "{} did not converge back to the reference", name
                );
            }
            if !tainted.contains(name) {
                let mine = chaotic.maintenance_stats(name).unwrap();
                let theirs = reference.maintenance_stats(name).unwrap();
                for (m, t) in mine.iter().zip(&theirs) {
                    prop_assert_eq!(m.logical(), t.logical(), "{}", name);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
