//! Per-query database pruning (Sect. 5.2).
//!
//! Given the largest solution of every union-free branch of a query, a
//! database triple `(o, a, o')` survives iff some pattern edge
//! `(v, a, w)` admits it, i.e. `o ∈ χ(v)` and `o' ∈ χ(w)`. By the
//! soundness results (Thm. 1/2) every triple witnessing any SPARQL match
//! is admitted, so no match is lost (Def. 3).
//!
//! For **well-designed** queries (and all OPTIONAL-free ones) this makes
//! re-evaluation on the pruned database return *exactly* the original
//! result set — what Tables 4/5 exploit. For non-well-designed queries
//! the pruned evaluation is an over-approximation: removing a triple that
//! witnessed no match can unblock a compatibility conflict and create
//! spurious rows (cf. the §5.3 "possibly unwanted results" discussion and
//! the `nonmonotone_counterexample` integration test). Downstream
//! processing must re-check candidate rows in that fragment.

use crate::{solve, Soi, Solution, SolveStats, SolverConfig};
use dualsim_graph::{GraphDb, Triple};
use dualsim_query::Query;
use std::time::{Duration, Instant};

/// Outcome of pruning a database for one query.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// The surviving triples, sorted and deduplicated.
    pub kept_triples: Vec<Triple>,
    /// Solver statistics per union-free branch.
    pub branch_stats: Vec<SolveStats>,
    /// Time spent computing the largest solutions (the dominant part of
    /// `t_SPARQLSIM` in Table 3).
    pub solve_time: Duration,
    /// Time spent materializing the surviving triples.
    pub extract_time: Duration,
}

impl PruneReport {
    /// Number of triples after pruning (the last column of Table 3).
    pub fn num_kept(&self) -> usize {
        self.kept_triples.len()
    }

    /// Total pruning time (`t_SPARQLSIM`).
    pub fn total_time(&self) -> Duration {
        self.solve_time + self.extract_time
    }

    /// Fraction of the database removed by pruning, in `[0, 1]`.
    pub fn prune_ratio(&self, db: &GraphDb) -> f64 {
        if db.num_triples() == 0 {
            return 0.0;
        }
        1.0 - self.kept_triples.len() as f64 / db.num_triples() as f64
    }

    /// Materializes the pruned database (shared vocabulary, stable ids).
    pub fn pruned_db(&self, db: &GraphDb) -> GraphDb {
        // Structural invariant: every kept triple was read out of `db`,
        // so re-materializing against the same vocabulary cannot fail.
        #[allow(clippy::expect_used)]
        db.with_triples(&self.kept_triples)
            .expect("kept triples come from `db` itself")
    }

    /// Sum of solver iterations across branches (the §5.3 metric: two for
    /// L1, more than thirty for L0).
    pub fn iterations(&self) -> usize {
        self.branch_stats.iter().map(|s| s.iterations).sum()
    }
}

/// Solves every union-free branch of `query` against `db` and returns the
/// per-branch systems and solutions. The building block for [`prune`]
/// and for experiment harnesses that need χ or solver statistics.
pub fn solve_query(db: &GraphDb, query: &Query, config: &SolverConfig) -> Vec<(Soi, Solution)> {
    solve_query_with(db, query, config, crate::SimulationKind::Dual)
}

/// Like [`solve_query`] with an explicit [`crate::SimulationKind`].
pub fn solve_query_with(
    db: &GraphDb,
    query: &Query,
    config: &SolverConfig,
    kind: crate::SimulationKind,
) -> Vec<(Soi, Solution)> {
    crate::build_sois_with(db, query, kind)
        .into_iter()
        .map(|soi| {
            let solution = solve(db, &soi, config);
            (soi, solution)
        })
        .collect()
}

/// Prunes `db` for `query`: keeps exactly the triples admitted by some
/// pattern edge of some union-free branch under the branch's largest
/// solution.
pub fn prune(db: &GraphDb, query: &Query, config: &SolverConfig) -> PruneReport {
    prune_with(db, query, config, crate::SimulationKind::Dual, 1)
}

/// Like [`prune`], but with the triple extraction fanned out over
/// `threads` worker threads (one unit of work per pattern edge). The
/// result is identical to the sequential run — the paper advertises the
/// bit-matrix formulation as amenable to "massive parallelization
/// techniques of bit-matrix operations", and the extraction step is the
/// embarrassingly parallel part of the pipeline.
pub fn prune_with_threads(
    db: &GraphDb,
    query: &Query,
    config: &SolverConfig,
    threads: usize,
) -> PruneReport {
    prune_with(db, query, config, crate::SimulationKind::Dual, threads)
}

/// The fully general pruning entry point: explicit simulation kind and
/// extraction parallelism. [`crate::SimulationKind::Forward`] prunes by
/// plain simulation (the Panda \[31\] notion), which keeps at least as
/// many triples as dual simulation — an ablation for the paper's claim
/// that dual simulation prunes more effectively.
pub fn prune_with(
    db: &GraphDb,
    query: &Query,
    config: &SolverConfig,
    kind: crate::SimulationKind,
    threads: usize,
) -> PruneReport {
    let solve_start = Instant::now();
    let branches = solve_query_with(db, query, config, kind);
    let solve_time = solve_start.elapsed();

    let extract_start = Instant::now();
    // One unit of work per pattern edge of every non-empty branch.
    let mut units: Vec<(&crate::Soi, &Solution, usize)> = Vec::new();
    for (soi, solution) in &branches {
        if solution.is_certainly_empty() {
            continue; // the branch admits no matches, nothing to keep
        }
        for edge_idx in 0..soi.edges.len() {
            units.push((soi, solution, edge_idx));
        }
    }
    let threads = threads.max(1).min(units.len().max(1));
    let mut kept: Vec<Triple> = if threads <= 1 {
        let mut out = Vec::new();
        for &(soi, solution, edge_idx) in &units {
            extract_edge(db, soi, solution, edge_idx, &mut out);
        }
        out
    } else {
        let chunk = units.len().div_ceil(threads);
        let mut partials = std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for &(soi, solution, edge_idx) in chunk {
                            extract_edge(db, soi, solution, edge_idx, &mut out);
                        }
                        out
                    })
                })
                .collect();
            // Structural invariant: a worker panic is a bug, not a
            // recoverable condition.
            #[allow(clippy::expect_used)]
            handles
                .into_iter()
                .map(|h| h.join().expect("extraction worker panicked"))
                .collect::<Vec<_>>()
        });
        let total = partials.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in &mut partials {
            out.append(p);
        }
        out
    };
    kept.sort_unstable();
    kept.dedup();
    let extract_time = extract_start.elapsed();

    PruneReport {
        kept_triples: kept,
        branch_stats: branches.into_iter().map(|(_, s)| s.stats).collect(),
        solve_time,
        extract_time,
    }
}

/// Collects the database triples admitted by one pattern edge,
/// enumerating from the smaller χ side.
fn extract_edge(
    db: &GraphDb,
    soi: &crate::Soi,
    solution: &Solution,
    edge_idx: usize,
    out: &mut Vec<Triple>,
) {
    let e = &soi.edges[edge_idx];
    let Some(a) = e.label else { return };
    let src = &solution.chi[e.src];
    let dst = &solution.chi[e.dst];
    if src.count_ones() <= dst.count_ones() {
        for s in src.iter_ones() {
            for &o in db.out_neighbors(s as u32, a) {
                if dst.get(o as usize) {
                    out.push(Triple::new(s as u32, a, o));
                }
            }
        }
    } else {
        for o in dst.iter_ones() {
            for &s in db.in_neighbors(o as u32, a) {
                if src.get(s as usize) {
                    out.push(Triple::new(s, a, o as u32));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualsim_graph::GraphDbBuilder;
    use dualsim_query::parse;

    /// The Fig. 1(a) database (see `solver::tests` for the edge
    /// directions rationale).
    fn fig1_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("B. De Palma", "directed", "Mission: Impossible")
            .unwrap();
        b.add_triple("B. De Palma", "worked_with", "D. Koepp")
            .unwrap();
        b.add_triple("B. De Palma", "born_in", "Newark").unwrap();
        b.add_triple("Mission: Impossible", "awarded", "Oscar")
            .unwrap();
        b.add_triple("Mission: Impossible", "genre", "Action")
            .unwrap();
        b.add_triple("Goldfinger", "genre", "Action").unwrap();
        b.add_triple("G. Hamilton", "directed", "Goldfinger")
            .unwrap();
        b.add_triple("G. Hamilton", "born_in", "Paris").unwrap();
        b.add_triple("G. Hamilton", "worked_with", "H. Saltzman")
            .unwrap();
        b.add_triple("Thunderball", "sequel_of", "Goldfinger")
            .unwrap();
        b.add_triple("From Russia with Love", "prequel_of", "Goldfinger")
            .unwrap();
        b.add_triple("Thunderball", "awarded", "BAFTA Awards")
            .unwrap();
        b.add_triple("H. Saltzman", "born_in", "Saint John")
            .unwrap();
        b.add_triple("T. Young", "directed", "From Russia with Love")
            .unwrap();
        b.add_triple("T. Young", "directed", "Thunderball").unwrap();
        b.add_triple("P.R. Hunt", "worked_with", "T. Young")
            .unwrap();
        b.add_triple("D. Koepp", "directed", "Mortdecai").unwrap();
        b.add_attribute("Newark", "population", "277140").unwrap();
        b.add_attribute("Paris", "population", "2220445").unwrap();
        b.add_attribute("Saint John", "population", "70063")
            .unwrap();
        b.finish()
    }

    #[test]
    fn x1_pruning_keeps_the_two_bold_subgraphs() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m . ?d worked_with ?c }").unwrap();
        let report = prune(&db, &q, &SolverConfig::default());
        // Exactly the four triples of the two (X1) matches survive.
        assert_eq!(report.num_kept(), 4);
        let pruned = report.pruned_db(&db);
        assert!(pruned.contains_triple(Triple::new(
            db.node_id("B. De Palma").unwrap(),
            db.label_id("directed").unwrap(),
            db.node_id("Mission: Impossible").unwrap(),
        )));
        assert!(report.prune_ratio(&db) > 0.7);
    }

    #[test]
    fn unsatisfiable_queries_prune_everything() {
        let db = fig1_db();
        let q = parse("{ ?m awarded ?a . ?m born_in ?p }").unwrap();
        let report = prune(&db, &q, &SolverConfig::default());
        assert_eq!(report.num_kept(), 0);
        assert_eq!(report.prune_ratio(&db), 1.0);
        assert!(report.branch_stats[0].emptied_mandatory);
    }

    #[test]
    fn union_pruning_is_the_union_of_branch_prunings() {
        let db = fig1_db();
        let q_union = parse("{ { ?d directed ?m } UNION { ?x sequel_of ?y } }").unwrap();
        let report = prune(&db, &q_union, &SolverConfig::default());
        let directed = prune(
            &db,
            &parse("{ ?d directed ?m }").unwrap(),
            &SolverConfig::default(),
        );
        let sequel = prune(
            &db,
            &parse("{ ?x sequel_of ?y }").unwrap(),
            &SolverConfig::default(),
        );
        let mut expected: Vec<Triple> = directed
            .kept_triples
            .iter()
            .chain(sequel.kept_triples.iter())
            .copied()
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(report.kept_triples, expected);
        assert_eq!(report.branch_stats.len(), 2);
    }

    #[test]
    fn optional_pruning_keeps_optional_evidence() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m OPTIONAL { ?d worked_with ?c } }").unwrap();
        let report = prune(&db, &q, &SolverConfig::default());
        // All directed triples survive (every director matches), plus the
        // worked_with triples of directors.
        let directed = db.label_id("directed").unwrap();
        let worked_with = db.label_id("worked_with").unwrap();
        let kept_directed = report
            .kept_triples
            .iter()
            .filter(|t| t.p == directed)
            .count();
        let kept_ww = report
            .kept_triples
            .iter()
            .filter(|t| t.p == worked_with)
            .count();
        assert_eq!(kept_directed, 5, "all five directed triples survive");
        assert_eq!(kept_ww, 2, "De Palma's and Hamilton's coworker edges");
        // P.R. Hunt's worked_with edge points at T. Young, who is a
        // director, so it survives as optional evidence? No: the renamed
        // optional subject ?d@… must itself be a director (subset
        // inequality), and P.R. Hunt directed nothing.
        let hunt = db.node_id("P.R. Hunt").unwrap();
        assert!(!report
            .kept_triples
            .iter()
            .any(|t| t.p == worked_with && t.s == hunt));
    }

    #[test]
    fn pruning_is_idempotent() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m . ?d worked_with ?c }").unwrap();
        let cfg = SolverConfig::default();
        let once = prune(&db, &q, &cfg);
        let pruned = once.pruned_db(&db);
        let twice = prune(&pruned, &q, &cfg);
        assert_eq!(once.kept_triples, twice.kept_triples);
    }

    #[test]
    fn forward_simulation_prunes_no_more_than_dual() {
        let db = fig1_db();
        let cfg = SolverConfig::default();
        for text in [
            "{ ?d directed ?m . ?d worked_with ?c }",
            "{ ?d directed ?m . ?m awarded ?prize }",
            "{ ?d born_in ?c . ?c population ?p }",
        ] {
            let q = parse(text).unwrap();
            let dual = prune(&db, &q, &cfg);
            let forward = prune_with(&db, &q, &cfg, crate::SimulationKind::Forward, 1);
            for t in &dual.kept_triples {
                assert!(
                    forward.kept_triples.contains(t),
                    "{text}: dual keeps {t:?} that forward pruned"
                );
            }
            assert!(
                forward.num_kept() >= dual.num_kept(),
                "{text}: forward ({}) must keep at least as much as dual ({})",
                forward.num_kept(),
                dual.num_kept()
            );
        }
    }

    #[test]
    fn forward_pruning_is_strictly_weaker_somewhere() {
        // ?m awarded ?prize: dual requires prizes to have incoming
        // awarded edges from movie candidates; forward-only places no
        // requirement on ?prize at all — and crucially none on ?m's
        // objects, so the unreachable 'Oscar'/'BAFTA' stay while dual
        // restricts further up the chain too.
        let db = fig1_db();
        let cfg = SolverConfig::default();
        let q = parse("{ ?d directed ?m . ?m genre ?g . ?p prequel_of ?m }").unwrap();
        let dual = prune(&db, &q, &cfg);
        let forward = prune_with(&db, &q, &cfg, crate::SimulationKind::Forward, 1);
        assert!(
            forward.num_kept() > dual.num_kept(),
            "forward {} vs dual {}",
            forward.num_kept(),
            dual.num_kept()
        );
    }

    #[test]
    fn parallel_pruning_matches_sequential() {
        let db = fig1_db();
        let cfg = SolverConfig::default();
        for text in [
            "{ ?d directed ?m . ?d worked_with ?c }",
            "{ ?d directed ?m OPTIONAL { ?d worked_with ?c } }",
            "{ { ?d directed ?m } UNION { ?x sequel_of ?y } }",
            "{ ?m awarded ?a . ?m born_in ?p }",
        ] {
            let q = parse(text).unwrap();
            let sequential = prune(&db, &q, &cfg);
            for threads in [2, 4, 16] {
                let parallel = prune_with_threads(&db, &q, &cfg, threads);
                assert_eq!(
                    sequential.kept_triples, parallel.kept_triples,
                    "{text} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn timings_are_populated() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m }").unwrap();
        let report = prune(&db, &q, &SolverConfig::default());
        assert!(report.total_time() >= report.solve_time);
        assert_eq!(report.iterations(), report.branch_stats[0].iterations);
    }
}
