//! Typed errors for transactional maintenance.
//!
//! Every maintenance entry point of the resident engine
//! ([`crate::IncrementalDualSim`], the delta engine underneath it, and
//! the `sparqlsim maintain` CLI above it) reports failures through
//! [`MaintainError`] instead of panicking: a batch that errors
//! mid-flight is rolled back by the epoch journal, never left
//! half-applied. The taxonomy mirrors the degradation ladder — input
//! errors (`OutOfVocabulary`) are recoverable per batch, resource
//! errors (`BudgetExceeded`) poison the engine until the next cold
//! rebuild, injected faults (`Failpoint`) exist only for the chaos
//! harness, and `Poisoned` is what a caller sees when it keeps driving
//! an engine that already degraded. The durability layer adds two more
//! rungs: `Io` for failed WAL/snapshot writes (the in-memory batch
//! rolls back with them — no batch commits without its WAL record) and
//! `Corrupt` for on-disk state that fails checksum or sequence
//! validation during recovery.

use dualsim_graph::Triple;
use std::fmt;

/// Why a maintenance batch could not be applied.
///
/// Returned by `DeltaSolver::insert_triples` / `retract_triples` and by
/// [`crate::IncrementalDualSim::apply_insertions`] /
/// [`crate::IncrementalDualSim::apply_deletions`]. Whenever one of
/// these surfaces from a batch, the epoch journal has already restored
/// the engine to its exact pre-batch state (or, if the rollback itself
/// failed, marked it poisoned so the next query falls back to a cold
/// solve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintainError {
    /// An update triple lies outside the database's fixed vocabulary
    /// (node or label id past the interned range). Carries the
    /// offending triple so callers can report it.
    OutOfVocabulary {
        /// The triple that failed vocabulary validation.
        triple: Triple,
    },
    /// The cooperative drain budget (`SolverConfig::drain_budget`) was
    /// exhausted at a round boundary; the batch was rolled back and the
    /// engine poisoned.
    BudgetExceeded {
        /// The configured budget in logical work ops.
        budget: usize,
        /// Logical work ops spent when the budget check fired.
        spent: usize,
    },
    /// An armed test failpoint fired (see `failpoints`); the batch was
    /// rolled back exactly as a real mid-flight fault would be.
    Failpoint {
        /// The name of the failpoint site that fired.
        point: &'static str,
    },
    /// The engine was poisoned by an earlier aborted batch (budget
    /// exhaustion or rollback failure) and cannot accept maintenance
    /// until it is rebuilt from a cold solve.
    Poisoned,
    /// A durability-layer I/O operation failed (WAL append, fsync,
    /// snapshot write or rename). When this surfaces from
    /// `apply_insertions`/`apply_deletions` the in-memory batch was
    /// rolled back too: a batch is only committed once its WAL record
    /// is fully on disk. Carries the failed operation and the OS error
    /// text (not the `std::io::Error` itself, which is neither `Clone`
    /// nor `Eq`).
    Io {
        /// The durability operation that failed (e.g. `wal append`).
        op: &'static str,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// On-disk durability state failed validation during recovery: a
    /// bad magic number, an unsupported format version, a checksum
    /// mismatch with no older snapshot to fall back to, or a WAL
    /// record sequence that cannot extend any verified snapshot.
    Corrupt {
        /// What failed to validate, and where.
        detail: String,
    },
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::OutOfVocabulary { triple } => write!(
                f,
                "update triple ({}, {}, {}) lies outside the database vocabulary",
                triple.s, triple.p, triple.o
            ),
            MaintainError::BudgetExceeded { budget, spent } => write!(
                f,
                "maintenance drain exceeded its work budget ({spent} logical ops spent, budget {budget})"
            ),
            MaintainError::Failpoint { point } => {
                write!(f, "injected failpoint `{point}` fired")
            }
            MaintainError::Poisoned => {
                write!(f, "engine is poisoned by an earlier aborted batch; rebuild from a cold solve")
            }
            MaintainError::Io { op, message } => {
                write!(f, "durability I/O failed during {op}: {message}")
            }
            MaintainError::Corrupt { detail } => {
                write!(f, "durable state failed validation: {detail}")
            }
        }
    }
}

impl std::error::Error for MaintainError {}

/// Why a [`crate::QuerySession`] operation could not proceed.
///
/// Per-query maintenance failures during a shared batch never surface
/// here — they degrade only the affected query (see the session's
/// health ladder) and are reported in the batch report. `SessionError`
/// covers the session-level operations themselves: registry misuse,
/// whole-batch input validation, and registration/healing work that
/// cannot degrade because there is no committed state to fall back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `register` was called with a name the registry already holds.
    DuplicateQuery {
        /// The contested query name.
        name: String,
    },
    /// The named query is not registered.
    UnknownQuery {
        /// The name that failed to resolve.
        name: String,
    },
    /// A query name unusable as a durability directory component
    /// (empty, or containing characters outside `[A-Za-z0-9._-]`).
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// The query text failed to parse at registration.
    Parse {
        /// The query name being registered.
        name: String,
        /// The parser's diagnostic.
        message: String,
    },
    /// A per-query operation with no degraded fallback failed:
    /// registration (building the initial durable state) or an explicit
    /// heal whose rebuild failed.
    Query {
        /// The affected query.
        name: String,
        /// The underlying maintenance error.
        error: MaintainError,
    },
    /// Whole-batch input validation failed (e.g. an out-of-vocabulary
    /// triple); no query was touched.
    Batch {
        /// The underlying maintenance error.
        error: MaintainError,
    },
    /// Session-level recovery could not produce a serving session
    /// (no durability root configured, or no query recovered).
    Recovery {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::DuplicateQuery { name } => {
                write!(f, "query `{name}` is already registered")
            }
            SessionError::UnknownQuery { name } => {
                write!(f, "no registered query named `{name}`")
            }
            SessionError::InvalidName { name } => write!(
                f,
                "query name `{name}` is not usable as a durability path (allowed: [A-Za-z0-9._-])"
            ),
            SessionError::Parse { name, message } => {
                write!(f, "query `{name}` failed to parse: {message}")
            }
            SessionError::Query { name, error } => {
                write!(f, "query `{name}`: {error}")
            }
            SessionError::Batch { error } => {
                write!(f, "batch rejected: {error}")
            }
            SessionError::Recovery { detail } => {
                write!(f, "session recovery failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Query { error, .. } | SessionError::Batch { error } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_diagnostic_payload() {
        let e = MaintainError::OutOfVocabulary {
            triple: Triple { s: 7, p: 1, o: 9 },
        };
        assert!(e.to_string().contains("(7, 1, 9)"));
        let e = MaintainError::BudgetExceeded {
            budget: 100,
            spent: 140,
        };
        assert!(e.to_string().contains("140"));
        assert!(e.to_string().contains("100"));
        assert!(MaintainError::Failpoint { point: "pre-drain" }
            .to_string()
            .contains("pre-drain"));
        assert!(MaintainError::Poisoned.to_string().contains("poisoned"));
        let e = MaintainError::Io {
            op: "wal append",
            message: "disk full".into(),
        };
        assert!(e.to_string().contains("wal append"));
        assert!(e.to_string().contains("disk full"));
        let e = MaintainError::Corrupt {
            detail: "snapshot-3.snap: checksum mismatch".into(),
        };
        assert!(e.to_string().contains("snapshot-3.snap"));
    }

    #[test]
    fn session_errors_display_and_chain_their_sources() {
        use std::error::Error;
        let e = SessionError::DuplicateQuery { name: "q1".into() };
        assert!(e.to_string().contains("q1"));
        assert!(e.source().is_none());
        let e = SessionError::Query {
            name: "q2".into(),
            error: MaintainError::Poisoned,
        };
        assert!(e.to_string().contains("q2"));
        assert!(e.to_string().contains("poisoned"));
        assert!(e.source().is_some());
        let e = SessionError::Batch {
            error: MaintainError::OutOfVocabulary {
                triple: Triple { s: 1, p: 2, o: 3 },
            },
        };
        assert!(e.to_string().contains("(1, 2, 3)"));
        assert!(e.source().is_some());
    }
}
