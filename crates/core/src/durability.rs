//! Durable resident maintenance: a write-ahead update log plus
//! checksummed snapshots, with crash-consistent recovery.
//!
//! PR 7 made each maintenance batch atomic *in memory* (epochs,
//! rollback journal); this module makes the resident state survive the
//! process. The discipline is classic write-ahead logging, adapted to
//! the delta engine's epoch machinery:
//!
//! * **WAL** — every committed update epoch appends one CRC32-framed,
//!   length-prefixed record of its signed triple batch to `wal.log`,
//!   *inside* the epoch (via the `delta` commit hook): the append runs
//!   after the batch body succeeded but before the epoch commits, so a
//!   failed append rolls the in-memory batch back with it. A batch is
//!   committed **iff** its WAL record is fully on disk.
//! * **Snapshots** — every N batches (or on demand) the full resident
//!   state is serialized into `snapshot-<epoch>.snap`: graph triples
//!   and vocabulary, the SOI, the solver configuration, χ under its
//!   resolved backend, the support-counter slabs including
//!   deferred/lazy-seed status and sparse-spill state, and the
//!   cumulative `SolveStats` (robustness counters included). Snapshots
//!   are written to a temp file, fsynced, and atomically renamed; the
//!   newest [`DurabilityOptions::keep_snapshots`] snapshots are
//!   retained (older ones are garbage-collected after each successful
//!   write) so a corrupted newest snapshot degrades to a retained
//!   older one plus a longer WAL replay, never to data loss.
//! * **Recovery** — [`recover`] loads the newest snapshot whose
//!   checksum verifies, replays the WAL records past its epoch id
//!   through the ordinary `apply_insertions`/`apply_deletions` paths
//!   (deterministic, so the recovered χ and logical `SolveStats` are
//!   bit-identical to an uninterrupted run), silently truncates a torn
//!   final record, and resumes warm.
//!
//! Every fallible I/O step carries a failpoint site
//! ([`crate::failpoints::DURABILITY_SITES`]) so the chaos proptests
//! can kill the process mid-write at every point of the format.

use crate::delta::{DeltaSolver, EngineState, SlabState};
use crate::failpoints;
use crate::incremental::IncrementalDualSim;
use crate::soi::{Inequality, PatternEdge, SimulationKind, Soi, SoiVar};
use crate::solver::{
    DrainStrategy, EvalStrategy, FixpointMode, IneqOrdering, InitMode, Solution, SolveStats,
    SolverConfig,
};
use crate::MaintainError;
use dualsim_bitmatrix::{ChiBackend, ChiVec, KernelBackend, SlabBackend};
use dualsim_graph::{GraphDb, GraphDbBuilder, NodeKind, Triple};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic + version framing of the two on-disk formats.
const WAL_MAGIC: &[u8; 4] = b"DWAL";
const SNAP_MAGIC: &[u8; 4] = b"DSNP";
/// v2 added the kernel-backend tag to the encoded [`SolverConfig`].
const FORMAT_VERSION: u32 = 2;
/// WAL header: magic + version.
const WAL_HEADER_LEN: u64 = 8;
/// Per-record frame: payload length (u32) + CRC32 of the payload (u32).
const FRAME_LEN: usize = 8;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven — the container has no checksum
// crate, and eight lines of const eval are cheaper than a dependency.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data` — the checksum framing every WAL record and
/// snapshot payload.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Little-endian encode/decode helpers. Decoding never panics: every
// read is bounds-checked and surfaces `MaintainError::Corrupt`.

fn corrupt(detail: impl Into<String>) -> MaintainError {
    MaintainError::Corrupt {
        detail: detail.into(),
    }
}

fn io_err(op: &'static str, e: std::io::Error) -> MaintainError {
    MaintainError::Io {
        op,
        message: e.to_string(),
    }
}

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Dec { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MaintainError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt(format!("{}: truncated at byte {}", self.what, self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, MaintainError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, MaintainError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(corrupt(format!("{}: bad bool tag {v}", self.what))),
        }
    }

    fn u32(&mut self) -> Result<u32, MaintainError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, MaintainError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, MaintainError> {
        usize::try_from(self.u64()?)
            .map_err(|_| corrupt(format!("{}: length overflows usize", self.what)))
    }

    /// A length read that will be used to reserve or loop: bounded by
    /// the bytes actually remaining, so a corrupted length cannot
    /// trigger an absurd allocation before the element reads fail.
    fn count(&mut self) -> Result<usize, MaintainError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(corrupt(format!(
                "{}: element count {n} exceeds remaining payload",
                self.what
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, MaintainError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(format!("{}: invalid UTF-8 string", self.what)))
    }

    fn done(&self) -> Result<(), MaintainError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{}: {} trailing bytes after payload",
                self.what,
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Options and handles.

/// Where and how to persist a resident [`IncrementalDualSim`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding `wal.log` and `snapshot-<epoch>.snap` files.
    pub dir: PathBuf,
    /// Write a snapshot automatically after every N committed batches
    /// (`None`: only the initial snapshot and explicit
    /// [`IncrementalDualSim::snapshot_now`] calls).
    pub snapshot_every: Option<u64>,
    /// Fsync the WAL after every append and snapshots before their
    /// rename (the crash-consistency guarantee). Benches may disable
    /// this to measure the pure serialization overhead.
    pub fsync: bool,
    /// Opaque caller metadata stored in every snapshot (the CLI stores
    /// the query text and union-branch index here); recovery hands it
    /// back verbatim.
    pub meta: String,
    /// Snapshot retention: after every successful snapshot write, only
    /// the newest `keep_snapshots` snapshot files are kept and older
    /// ones are garbage-collected (`0` disables pruning and keeps every
    /// snapshot forever). The default keeps 2, so recovery can still
    /// fall back across one corrupted newest snapshot to an older one
    /// plus a longer WAL replay.
    pub keep_snapshots: usize,
}

impl DurabilityOptions {
    /// Options with defaults: fsync on, no automatic snapshots, empty
    /// metadata, two retained snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            snapshot_every: None,
            fsync: true,
            meta: String::new(),
            keep_snapshots: 2,
        }
    }
}

/// What [`recover`] reports about how it reconstructed the resident
/// state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch id of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Snapshots that failed checksum/format validation and were
    /// skipped in favour of an older one.
    pub snapshots_skipped: usize,
    /// WAL records replayed past the snapshot's epoch.
    pub records_replayed: usize,
    /// Bytes of a torn (or corrupt) WAL tail that were truncated.
    pub torn_bytes: u64,
    /// The recovered engine's epoch (snapshot epoch + records replayed).
    pub epoch: u64,
}

/// A recovered resident instance: the engine (durability re-attached,
/// resumed warm), the reconstructed database, the snapshot's caller
/// metadata, and the [`RecoveryReport`].
#[derive(Debug)]
pub struct Recovered {
    /// The recovered maintenance instance, ready for further updates.
    pub sim: IncrementalDualSim,
    /// The database as of the recovered epoch.
    pub db: GraphDb,
    /// The snapshot's opaque caller metadata.
    pub meta: String,
    /// How recovery got here.
    pub report: RecoveryReport,
}

/// The open durability handle an [`IncrementalDualSim`] carries: the
/// WAL file positioned at its committed end, plus the snapshot policy.
#[derive(Debug)]
pub(crate) struct Durability {
    dir: PathBuf,
    wal: File,
    /// End offset of the last fully committed WAL record. The file is
    /// truncated back to this offset before every append, so a torn
    /// tail left by an earlier in-process append failure can never
    /// corrupt the framing of later records.
    committed_len: u64,
    snapshot_every: Option<u64>,
    fsync: bool,
    meta: String,
    keep_snapshots: usize,
}

impl Durability {
    /// Creates a fresh durability directory: any existing WAL and
    /// snapshots in `dir` are removed (this starts a **new** resident
    /// instance; use [`recover`] to resume an old one), and an empty
    /// WAL with a header is written and synced.
    pub(crate) fn create(opts: &DurabilityOptions) -> Result<Self, MaintainError> {
        fs::create_dir_all(&opts.dir).map_err(|e| io_err("durability dir create", e))?;
        for entry in fs::read_dir(&opts.dir).map_err(|e| io_err("durability dir scan", e))? {
            let entry = entry.map_err(|e| io_err("durability dir scan", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snapshot-") && (name.ends_with(".snap") || name.ends_with(".tmp"))
            {
                fs::remove_file(entry.path()).map_err(|e| io_err("stale snapshot remove", e))?;
            }
        }
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(wal_path(&opts.dir))
            .map_err(|e| io_err("wal create", e))?;
        wal.write_all(WAL_MAGIC).map_err(|e| io_err("wal create", e))?;
        wal.write_all(&FORMAT_VERSION.to_le_bytes())
            .map_err(|e| io_err("wal create", e))?;
        if opts.fsync {
            wal.sync_data().map_err(|e| io_err("wal create", e))?;
        }
        Ok(Durability {
            dir: opts.dir.clone(),
            wal,
            committed_len: WAL_HEADER_LEN,
            snapshot_every: opts.snapshot_every,
            fsync: opts.fsync,
            meta: opts.meta.clone(),
            keep_snapshots: opts.keep_snapshots,
        })
    }

    /// Re-opens the WAL of a recovered instance for appending.
    /// `committed_len` is the verified end offset the recovery scan
    /// established (the file was already truncated there). A missing
    /// WAL file (never created, or lost with its directory entry) is
    /// recreated empty.
    fn open_for_append(opts: &DurabilityOptions, committed_len: u64) -> Result<Self, MaintainError> {
        let path = wal_path(&opts.dir);
        if !path.exists() {
            return Self::create(opts);
        }
        let wal = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("wal open", e))?;
        Ok(Durability {
            dir: opts.dir.clone(),
            wal,
            committed_len,
            snapshot_every: opts.snapshot_every,
            fsync: opts.fsync,
            meta: opts.meta.clone(),
            keep_snapshots: opts.keep_snapshots,
        })
    }

    pub(crate) fn snapshot_every(&self) -> Option<u64> {
        self.snapshot_every
    }

    pub(crate) fn meta(&self) -> &str {
        &self.meta
    }

    /// Appends one update record to the WAL and (configurably) fsyncs
    /// it. Run as the epoch commit hook: an `Err` here rolls the
    /// in-memory batch back, so the update is committed iff its record
    /// is durable. A partial write left behind by an earlier failure is
    /// truncated away first; a failure of *this* append leaves
    /// `committed_len` unchanged, so the next append (or the recovery
    /// scan) discards the torn bytes.
    pub(crate) fn append(
        &mut self,
        epoch: u64,
        insert: bool,
        batch: &[Triple],
    ) -> Result<(), MaintainError> {
        failpoints::check("wal-append")?;
        let end = self
            .wal
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("wal append", e))?;
        if end != self.committed_len {
            self.wal
                .set_len(self.committed_len)
                .map_err(|e| io_err("wal append", e))?;
            self.wal
                .seek(SeekFrom::Start(self.committed_len))
                .map_err(|e| io_err("wal append", e))?;
        }
        let mut enc = Enc::default();
        enc.u64(epoch);
        enc.bool(insert);
        enc.u32(batch.len() as u32);
        for t in batch {
            enc.u32(t.s);
            enc.u32(t.p);
            enc.u32(t.o);
        }
        let payload = enc.buf;
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // The torn-write failpoint models a crash mid-record: half the
        // frame reaches the disk, the rest never does. The partial
        // bytes are deliberately left in place — recovery (and the
        // next in-process append) must prove they discard them.
        if let Err(fail) = failpoints::check("wal-tear") {
            let half = frame.len() / 2;
            let _ = self.wal.write_all(&frame[..half]);
            let _ = self.wal.flush();
            return Err(fail);
        }
        self.wal
            .write_all(&frame)
            .map_err(|e| io_err("wal append", e))?;
        // Past this point the record is fully framed on disk. If the
        // process dies before the fsync completes the record may or
        // may not survive — both outcomes are consistent: recovery
        // lands on the longest fully-framed record prefix.
        failpoints::check("wal-fsync")?;
        if self.fsync {
            self.wal.sync_data().map_err(|e| io_err("wal fsync", e))?;
        }
        self.committed_len = end.max(self.committed_len) + frame.len() as u64;
        // `end` can only exceed committed_len transiently (torn bytes
        // truncated above), so recompute from the authoritative base:
        self.committed_len = self.committed_len.min(
            self.wal
                .stream_position()
                .map_err(|e| io_err("wal append", e))?,
        );
        Ok(())
    }

    /// Serializes and atomically installs a snapshot of the full
    /// resident state: temp file → fsync → rename → directory fsync.
    /// After a successful install, snapshots older than the newest
    /// [`DurabilityOptions::keep_snapshots`] are garbage-collected
    /// (best-effort — a failed unlink never fails the batch); the
    /// retained ones stay in place as recovery fallbacks.
    pub(crate) fn write_snapshot(&mut self, state: &SnapshotState<'_>) -> Result<(), MaintainError> {
        failpoints::check("snapshot-write")?;
        let payload = encode_snapshot(state);
        let tmp = self.dir.join(format!("snapshot-{:020}.tmp", state.epoch));
        let final_path = snapshot_path(&self.dir, state.epoch);
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(SNAP_MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut f = File::create(&tmp).map_err(|e| io_err("snapshot write", e))?;
        // Torn snapshot write: half the frame lands in the temp file,
        // which is never renamed — recovery ignores `.tmp` files, so a
        // crash here costs nothing but the orphaned temp.
        if let Err(fail) = failpoints::check("snapshot-tear") {
            let half = frame.len() / 2;
            let _ = f.write_all(&frame[..half]);
            let _ = f.flush();
            return Err(fail);
        }
        f.write_all(&frame).map_err(|e| io_err("snapshot write", e))?;
        failpoints::check("snapshot-fsync")?;
        if self.fsync {
            f.sync_data().map_err(|e| io_err("snapshot fsync", e))?;
        }
        drop(f);
        failpoints::check("snapshot-rename")?;
        fs::rename(&tmp, &final_path).map_err(|e| io_err("snapshot rename", e))?;
        if self.fsync {
            // Make the rename itself durable.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        if self.keep_snapshots > 0 {
            if let Ok(snapshots) = list_snapshots(&self.dir) {
                // `list_snapshots` returns newest-first; everything past
                // the retention window is pruned best-effort.
                for (_, path) in snapshots.into_iter().skip(self.keep_snapshots) {
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(())
    }
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}.snap"))
}

// ---------------------------------------------------------------------
// Snapshot serialization.

/// Borrowed view of everything a snapshot records. Exactly one of
/// `engine` / `solution` is `Some`, mirroring the two
/// [`FixpointMode`]s.
pub(crate) struct SnapshotState<'a> {
    pub(crate) epoch: u64,
    pub(crate) meta: &'a str,
    pub(crate) config: &'a SolverConfig,
    pub(crate) db: &'a GraphDb,
    pub(crate) soi: &'a Soi,
    pub(crate) warm: bool,
    /// Resident delta engine state ([`FixpointMode::DeltaCounting`]).
    pub(crate) engine: Option<EngineState>,
    /// Solution snapshot ([`FixpointMode::Reevaluate`]).
    pub(crate) solution: Option<(&'a [ChiVec], &'a SolveStats)>,
}

/// Owned, decoded snapshot contents.
struct DecodedSnapshot {
    epoch: u64,
    meta: String,
    config: SolverConfig,
    db: GraphDb,
    soi: Soi,
    warm: bool,
    engine: Option<EngineState>,
    solution: Option<(Vec<ChiVec>, SolveStats)>,
}

fn chi_backend_tag(b: ChiBackend) -> u8 {
    match b {
        ChiBackend::Dense => 0,
        ChiBackend::Rle => 1,
        ChiBackend::Auto => 2,
    }
}

fn chi_backend_from(tag: u8, what: &str) -> Result<ChiBackend, MaintainError> {
    match tag {
        0 => Ok(ChiBackend::Dense),
        1 => Ok(ChiBackend::Rle),
        2 => Ok(ChiBackend::Auto),
        v => Err(corrupt(format!("{what}: bad χ backend tag {v}"))),
    }
}

fn slab_backend_tag(b: SlabBackend) -> u8 {
    match b {
        SlabBackend::Dense => 0,
        SlabBackend::Sparse => 1,
        SlabBackend::Auto => 2,
    }
}

fn slab_backend_from(tag: u8, what: &str) -> Result<SlabBackend, MaintainError> {
    match tag {
        0 => Ok(SlabBackend::Dense),
        1 => Ok(SlabBackend::Sparse),
        2 => Ok(SlabBackend::Auto),
        v => Err(corrupt(format!("{what}: bad slab backend tag {v}"))),
    }
}

fn kernel_backend_tag(b: KernelBackend) -> u8 {
    match b {
        KernelBackend::Scalar => 0,
        KernelBackend::Unrolled => 1,
        KernelBackend::Simd => 2,
        KernelBackend::Auto => 3,
    }
}

fn kernel_backend_from(tag: u8, what: &str) -> Result<KernelBackend, MaintainError> {
    match tag {
        0 => Ok(KernelBackend::Scalar),
        1 => Ok(KernelBackend::Unrolled),
        2 => Ok(KernelBackend::Simd),
        3 => Ok(KernelBackend::Auto),
        v => Err(corrupt(format!("{what}: bad kernel backend tag {v}"))),
    }
}

fn encode_config(enc: &mut Enc, c: &SolverConfig) {
    enc.u8(match c.strategy {
        EvalStrategy::RowWise => 0,
        EvalStrategy::ColumnWise => 1,
        EvalStrategy::Adaptive => 2,
    });
    enc.u8(match c.ordering {
        IneqOrdering::QueryOrder => 0,
        IneqOrdering::SparsityFirst => 1,
    });
    enc.u8(match c.init {
        InitMode::AllOnes => 0,
        InitMode::Summaries => 1,
    });
    enc.u8(match c.fixpoint {
        FixpointMode::Reevaluate => 0,
        FixpointMode::DeltaCounting => 1,
    });
    match c.drain {
        DrainStrategy::Sequential => {
            enc.u8(0);
            enc.u64(0);
        }
        DrainStrategy::Sharded { threads } => {
            enc.u8(1);
            enc.usize(threads);
        }
    }
    enc.usize(c.drain_inline_below);
    enc.u8(chi_backend_tag(c.chi_backend));
    enc.u8(slab_backend_tag(c.slab_backend));
    enc.usize(c.seed_threads);
    enc.bool(c.early_exit);
    match c.drain_budget {
        None => {
            enc.u8(0);
            enc.u64(0);
        }
        Some(b) => {
            enc.u8(1);
            enc.usize(b);
        }
    }
    enc.bool(c.journal);
    enc.u8(kernel_backend_tag(c.kernel_backend));
}

fn decode_config(dec: &mut Dec<'_>) -> Result<SolverConfig, MaintainError> {
    let strategy = match dec.u8()? {
        0 => EvalStrategy::RowWise,
        1 => EvalStrategy::ColumnWise,
        2 => EvalStrategy::Adaptive,
        v => return Err(corrupt(format!("config: bad strategy tag {v}"))),
    };
    let ordering = match dec.u8()? {
        0 => IneqOrdering::QueryOrder,
        1 => IneqOrdering::SparsityFirst,
        v => return Err(corrupt(format!("config: bad ordering tag {v}"))),
    };
    let init = match dec.u8()? {
        0 => InitMode::AllOnes,
        1 => InitMode::Summaries,
        v => return Err(corrupt(format!("config: bad init tag {v}"))),
    };
    let fixpoint = match dec.u8()? {
        0 => FixpointMode::Reevaluate,
        1 => FixpointMode::DeltaCounting,
        v => return Err(corrupt(format!("config: bad fixpoint tag {v}"))),
    };
    let drain = match (dec.u8()?, dec.usize()?) {
        (0, _) => DrainStrategy::Sequential,
        (1, threads) => DrainStrategy::Sharded { threads },
        (v, _) => return Err(corrupt(format!("config: bad drain tag {v}"))),
    };
    let drain_inline_below = dec.usize()?;
    let chi_backend = chi_backend_from(dec.u8()?, "config")?;
    let slab_backend = slab_backend_from(dec.u8()?, "config")?;
    let seed_threads = dec.usize()?;
    let early_exit = dec.bool()?;
    let drain_budget = match (dec.u8()?, dec.usize()?) {
        (0, _) => None,
        (1, b) => Some(b),
        (v, _) => return Err(corrupt(format!("config: bad budget tag {v}"))),
    };
    let journal = dec.bool()?;
    let kernel_backend = kernel_backend_from(dec.u8()?, "config")?;
    Ok(SolverConfig {
        strategy,
        ordering,
        init,
        fixpoint,
        drain,
        drain_inline_below,
        chi_backend,
        slab_backend,
        seed_threads,
        early_exit,
        drain_budget,
        journal,
        kernel_backend,
    })
}

fn encode_db(enc: &mut Enc, db: &GraphDb) {
    enc.usize(db.num_nodes());
    for v in 0..db.num_nodes() {
        enc.str(db.node_name(v as u32));
        enc.u8(match db.node_kind(v as u32) {
            NodeKind::Iri => 0,
            NodeKind::Literal => 1,
        });
    }
    enc.usize(db.num_labels());
    for a in 0..db.num_labels() {
        enc.str(db.label_name(a as u32));
    }
    enc.usize(db.num_triples());
    for t in db.triples() {
        enc.u32(t.s);
        enc.u32(t.p);
        enc.u32(t.o);
    }
}

fn decode_db(dec: &mut Dec<'_>) -> Result<GraphDb, MaintainError> {
    let mut b = GraphDbBuilder::new();
    let nodes = dec.count()?;
    for i in 0..nodes {
        let name = dec.str()?;
        let kind = match dec.u8()? {
            0 => NodeKind::Iri,
            1 => NodeKind::Literal,
            v => return Err(corrupt(format!("graph: bad node kind tag {v}"))),
        };
        let id = b
            .add_node(&name, kind)
            .map_err(|e| corrupt(format!("graph: node {i}: {e}")))?;
        if id as usize != i {
            return Err(corrupt(format!(
                "graph: node {name:?} interned as {id}, expected {i}"
            )));
        }
    }
    let labels = dec.count()?;
    for i in 0..labels {
        let name = dec.str()?;
        let id = b.intern_label(&name);
        if id as usize != i {
            return Err(corrupt(format!(
                "graph: label {name:?} interned as {id}, expected {i}"
            )));
        }
    }
    let triples = dec.count()?;
    for _ in 0..triples {
        let (s, p, o) = (dec.u32()?, dec.u32()?, dec.u32()?);
        b.add_triple_ids(s, p, o)
            .map_err(|e| corrupt(format!("graph: triple ({s},{p},{o}): {e}")))?;
    }
    Ok(b.finish())
}

fn encode_soi(enc: &mut Enc, soi: &Soi) {
    enc.usize(soi.vars.len());
    for var in &soi.vars {
        enc.str(&var.name);
        match &var.origin {
            None => enc.u8(0),
            Some(o) => {
                enc.u8(1);
                enc.str(o);
            }
        }
        enc.bool(var.mandatory);
        match var.pinned {
            None => enc.u8(0),
            Some(None) => enc.u8(1),
            Some(Some(id)) => {
                enc.u8(2);
                enc.u32(id);
            }
        }
    }
    enc.usize(soi.ineqs.len());
    for ineq in &soi.ineqs {
        match *ineq {
            Inequality::Edge {
                target,
                source,
                label,
                forward,
            } => {
                enc.u8(0);
                enc.usize(target);
                enc.usize(source);
                match label {
                    None => enc.u8(0),
                    Some(a) => {
                        enc.u8(1);
                        enc.u32(a);
                    }
                }
                enc.bool(forward);
            }
            Inequality::Subset { sub, sup } => {
                enc.u8(1);
                enc.usize(sub);
                enc.usize(sup);
            }
        }
    }
    enc.usize(soi.edges.len());
    for e in &soi.edges {
        enc.usize(e.src);
        match e.label {
            None => enc.u8(0),
            Some(a) => {
                enc.u8(1);
                enc.u32(a);
            }
        }
        enc.usize(e.dst);
    }
    enc.usize(soi.scope.len());
    for (key, vars) in &soi.scope {
        enc.str(key);
        enc.usize(vars.len());
        for &v in vars {
            enc.usize(v);
        }
    }
    enc.u8(match soi.kind {
        SimulationKind::Dual => 0,
        SimulationKind::Forward => 1,
    });
}

fn decode_soi(dec: &mut Dec<'_>) -> Result<Soi, MaintainError> {
    let nv = dec.count()?;
    let mut vars = Vec::with_capacity(nv);
    for _ in 0..nv {
        let name = dec.str()?;
        let origin = match dec.u8()? {
            0 => None,
            1 => Some(dec.str()?),
            v => return Err(corrupt(format!("soi: bad origin tag {v}"))),
        };
        let mandatory = dec.bool()?;
        let pinned = match dec.u8()? {
            0 => None,
            1 => Some(None),
            2 => Some(Some(dec.u32()?)),
            v => return Err(corrupt(format!("soi: bad pin tag {v}"))),
        };
        vars.push(SoiVar {
            name,
            origin,
            mandatory,
            pinned,
        });
    }
    let ni = dec.count()?;
    let mut ineqs = Vec::with_capacity(ni);
    for _ in 0..ni {
        let ineq = match dec.u8()? {
            0 => {
                let target = dec.usize()?;
                let source = dec.usize()?;
                let label = match dec.u8()? {
                    0 => None,
                    1 => Some(dec.u32()?),
                    v => return Err(corrupt(format!("soi: bad label tag {v}"))),
                };
                let forward = dec.bool()?;
                Inequality::Edge {
                    target,
                    source,
                    label,
                    forward,
                }
            }
            1 => Inequality::Subset {
                sub: dec.usize()?,
                sup: dec.usize()?,
            },
            v => return Err(corrupt(format!("soi: bad inequality tag {v}"))),
        };
        ineqs.push(ineq);
    }
    let ne = dec.count()?;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let src = dec.usize()?;
        let label = match dec.u8()? {
            0 => None,
            1 => Some(dec.u32()?),
            v => return Err(corrupt(format!("soi: bad edge label tag {v}"))),
        };
        let dst = dec.usize()?;
        edges.push(PatternEdge { src, label, dst });
    }
    let ns = dec.count()?;
    let mut scope = BTreeMap::new();
    for _ in 0..ns {
        let key = dec.str()?;
        let n = dec.count()?;
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(dec.usize()?);
        }
        scope.insert(key, vs);
    }
    let kind = match dec.u8()? {
        0 => SimulationKind::Dual,
        1 => SimulationKind::Forward,
        v => return Err(corrupt(format!("soi: bad kind tag {v}"))),
    };
    // Index sanity: every variable reference must be in range, or the
    // restored engine would index out of bounds.
    let in_range = |v: usize| v < nv;
    let ineqs_ok = ineqs.iter().all(|i| match *i {
        Inequality::Edge { target, source, .. } => in_range(target) && in_range(source),
        Inequality::Subset { sub, sup } => in_range(sub) && in_range(sup),
    });
    let edges_ok = edges.iter().all(|e| in_range(e.src) && in_range(e.dst));
    let scope_ok = scope.values().all(|vs| vs.iter().all(|&v| in_range(v)));
    if !(ineqs_ok && edges_ok && scope_ok) {
        return Err(corrupt("soi: variable index out of range"));
    }
    Ok(Soi {
        vars,
        ineqs,
        edges,
        scope,
        kind,
    })
}

fn encode_stats(enc: &mut Enc, s: &SolveStats) {
    for v in [
        s.iterations,
        s.evaluations,
        s.updates,
        s.rowwise,
        s.colwise,
        s.rows_ored,
        s.bits_probed,
        s.counter_inits,
        s.counter_decrements,
        s.counter_increments,
        s.reactivations,
        s.row_lookups,
        s.delta_removals,
        s.drain_rounds,
        s.shard_units,
        s.seeds_deferred,
        s.lazy_seeds,
        s.initial_candidates,
        s.final_candidates,
        s.chi_peak_words,
        s.slab_peak_words,
        s.rollbacks,
        s.poisonings,
        s.budget_aborts,
        s.journal_entries,
    ] {
        enc.usize(v);
    }
    enc.bool(s.emptied_mandatory);
}

fn decode_stats(dec: &mut Dec<'_>) -> Result<SolveStats, MaintainError> {
    let mut s = SolveStats::default();
    for field in [
        &mut s.iterations,
        &mut s.evaluations,
        &mut s.updates,
        &mut s.rowwise,
        &mut s.colwise,
        &mut s.rows_ored,
        &mut s.bits_probed,
        &mut s.counter_inits,
        &mut s.counter_decrements,
        &mut s.counter_increments,
        &mut s.reactivations,
        &mut s.row_lookups,
        &mut s.delta_removals,
        &mut s.drain_rounds,
        &mut s.shard_units,
        &mut s.seeds_deferred,
        &mut s.lazy_seeds,
        &mut s.initial_candidates,
        &mut s.final_candidates,
        &mut s.chi_peak_words,
        &mut s.slab_peak_words,
        &mut s.rollbacks,
        &mut s.poisonings,
        &mut s.budget_aborts,
        &mut s.journal_entries,
    ] {
        *field = dec.usize()?;
    }
    s.emptied_mandatory = dec.bool()?;
    Ok(s)
}

fn encode_chi(enc: &mut Enc, chi: &[ChiVec]) {
    enc.usize(chi.len());
    for c in chi {
        enc.u8(chi_backend_tag(c.backend()));
        enc.usize(c.len());
        let ones = c.to_indices();
        enc.usize(ones.len());
        for w in ones {
            enc.u32(w);
        }
    }
}

fn decode_chi(dec: &mut Dec<'_>) -> Result<Vec<ChiVec>, MaintainError> {
    let n = dec.count()?;
    let mut chi = Vec::with_capacity(n);
    for i in 0..n {
        let backend = chi_backend_from(dec.u8()?, "χ")?;
        if backend == ChiBackend::Auto {
            return Err(corrupt(format!("χ[{i}]: Auto is never a resolved backend")));
        }
        let len = dec.usize()?;
        let k = dec.count()?;
        let mut ones = Vec::with_capacity(k);
        for _ in 0..k {
            let w = dec.u32()?;
            if w as usize >= len {
                return Err(corrupt(format!("χ[{i}]: index {w} out of bounds {len}")));
            }
            ones.push(w);
        }
        if !ones.windows(2).all(|p| p[0] < p[1]) {
            return Err(corrupt(format!("χ[{i}]: indices not strictly ascending")));
        }
        chi.push(ChiVec::from_indices(len, &ones, backend));
    }
    Ok(chi)
}

fn encode_engine(enc: &mut Enc, e: &EngineState) {
    encode_chi(enc, &e.chi);
    enc.usize(e.slabs.len());
    for s in &e.slabs {
        enc.u8(slab_backend_tag(s.backend));
        match &s.seeded {
            None => enc.u8(0),
            Some((dim, spilled, entries)) => {
                enc.u8(1);
                enc.usize(*dim);
                enc.bool(*spilled);
                enc.usize(entries.len());
                for &(w, c) in entries {
                    enc.u32(w);
                    enc.u32(c);
                }
            }
        }
    }
    enc.bool(e.run_aware);
    encode_stats(enc, &e.stats);
    enc.bool(e.dead);
    enc.bool(e.poisoned);
}

fn decode_engine(dec: &mut Dec<'_>) -> Result<EngineState, MaintainError> {
    let chi = decode_chi(dec)?;
    let n = dec.count()?;
    let mut slabs = Vec::with_capacity(n);
    for i in 0..n {
        let backend = slab_backend_from(dec.u8()?, "slab")?;
        if backend == SlabBackend::Auto {
            return Err(corrupt(format!(
                "slab[{i}]: Auto is never a resolved backend"
            )));
        }
        let seeded = match dec.u8()? {
            0 => None,
            1 => {
                let dim = dec.usize()?;
                let spilled = dec.bool()?;
                let k = dec.count()?;
                let mut entries = Vec::with_capacity(k);
                for _ in 0..k {
                    let w = dec.u32()?;
                    let c = dec.u32()?;
                    if w as usize >= dim {
                        return Err(corrupt(format!(
                            "slab[{i}]: column {w} out of bounds {dim}"
                        )));
                    }
                    entries.push((w, c));
                }
                if !entries.windows(2).all(|p| p[0].0 < p[1].0) {
                    return Err(corrupt(format!("slab[{i}]: columns not strictly ascending")));
                }
                Some((dim, spilled, entries))
            }
            v => return Err(corrupt(format!("slab[{i}]: bad seeded tag {v}"))),
        };
        slabs.push(SlabState { backend, seeded });
    }
    let run_aware = dec.bool()?;
    let stats = decode_stats(dec)?;
    let dead = dec.bool()?;
    let poisoned = dec.bool()?;
    Ok(EngineState {
        chi,
        slabs,
        run_aware,
        stats,
        dead,
        poisoned,
    })
}

fn encode_snapshot(state: &SnapshotState<'_>) -> Vec<u8> {
    let mut enc = Enc::default();
    enc.u64(state.epoch);
    enc.str(state.meta);
    encode_config(&mut enc, state.config);
    encode_db(&mut enc, state.db);
    encode_soi(&mut enc, state.soi);
    enc.bool(state.warm);
    match (&state.engine, &state.solution) {
        (Some(e), _) => {
            enc.u8(1);
            encode_engine(&mut enc, e);
        }
        (None, Some((chi, stats))) => {
            enc.u8(0);
            encode_chi(&mut enc, chi);
            encode_stats(&mut enc, stats);
        }
        (None, None) => {
            debug_assert!(false, "snapshot state carries neither engine nor solution");
            enc.u8(0);
            encode_chi(&mut enc, &[]);
            encode_stats(&mut enc, &SolveStats::default());
        }
    }
    enc.buf
}

fn decode_snapshot(payload: &[u8]) -> Result<DecodedSnapshot, MaintainError> {
    let mut dec = Dec::new(payload, "snapshot");
    let epoch = dec.u64()?;
    let meta = dec.str()?;
    let config = decode_config(&mut dec)?;
    let db = decode_db(&mut dec)?;
    let soi = decode_soi(&mut dec)?;
    let warm = dec.bool()?;
    let (engine, solution) = match dec.u8()? {
        1 => (Some(decode_engine(&mut dec)?), None),
        0 => {
            let chi = decode_chi(&mut dec)?;
            let stats = decode_stats(&mut dec)?;
            (None, Some((chi, stats)))
        }
        v => return Err(corrupt(format!("snapshot: bad mode tag {v}"))),
    };
    dec.done()?;
    // Cross-checks against the database and SOI dimensions.
    let nv = soi.vars.len();
    let chi_ref: &[ChiVec] = match (&engine, &solution) {
        (Some(e), _) => &e.chi,
        (None, Some((chi, _))) => chi,
        (None, None) => &[],
    };
    if chi_ref.len() != nv {
        return Err(corrupt(format!(
            "snapshot: {} χ vectors for {nv} SOI variables",
            chi_ref.len()
        )));
    }
    if chi_ref.iter().any(|c| c.len() != db.num_nodes()) {
        return Err(corrupt("snapshot: χ dimension differs from node count"));
    }
    if soi
        .ineqs
        .iter()
        .any(|i| matches!(i, Inequality::Edge { label: Some(a), .. } if *a as usize >= db.num_labels()))
    {
        return Err(corrupt("snapshot: inequality label outside alphabet"));
    }
    Ok(DecodedSnapshot {
        epoch,
        meta,
        config,
        db,
        soi,
        warm,
        engine,
        solution,
    })
}

fn load_snapshot(path: &Path) -> Result<DecodedSnapshot, MaintainError> {
    let bytes = fs::read(path).map_err(|e| io_err("snapshot read", e))?;
    let name = path.display();
    if bytes.len() < 16 {
        return Err(corrupt(format!("{name}: shorter than the header")));
    }
    if &bytes[0..4] != SNAP_MAGIC {
        return Err(corrupt(format!("{name}: bad magic")));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("{name}: unsupported version {version}")));
    }
    let len = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let Some(payload) = usize::try_from(len)
        .ok()
        .and_then(|len| bytes.get(20..20 + len))
    else {
        return Err(corrupt(format!("{name}: truncated payload")));
    };
    if bytes.len() != 20 + payload.len() {
        return Err(corrupt(format!("{name}: trailing bytes after payload")));
    }
    let crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if crc32(payload) != crc {
        return Err(corrupt(format!("{name}: checksum mismatch")));
    }
    decode_snapshot(payload)
}

// ---------------------------------------------------------------------
// WAL scan + recovery.

/// One decoded WAL record: a signed triple batch committed as `epoch`.
#[derive(Debug, Clone)]
struct WalRecord {
    epoch: u64,
    insert: bool,
    batch: Vec<Triple>,
}

/// The verified prefix of a WAL file: its records, the end offset of
/// the last fully valid record, and the file's physical length.
struct WalScan {
    records: Vec<WalRecord>,
    valid_end: u64,
    file_len: u64,
}

/// Reads the longest valid record prefix of the WAL. The scan stops at
/// the first torn or corrupt record (incomplete frame, bad CRC,
/// malformed payload) — everything after it is unreachable, because
/// record framing cannot be trusted past a bad frame.
fn scan_wal(path: &Path) -> Result<WalScan, MaintainError> {
    if !path.exists() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_end: 0,
            file_len: 0,
        });
    }
    let bytes = fs::read(path).map_err(|e| io_err("wal read", e))?;
    let file_len = bytes.len() as u64;
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[0..4] != WAL_MAGIC
        || u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) != FORMAT_VERSION
    {
        // A torn-or-corrupted header invalidates the whole log; the
        // records are unrecoverable, the snapshot is authoritative.
        return Ok(WalScan {
            records: Vec::new(),
            valid_end: 0,
            file_len,
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut valid_end = pos as u64;
    while pos + FRAME_LEN <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let Some(payload) = bytes.get(pos + FRAME_LEN..pos + FRAME_LEN + len) else {
            break; // torn final record
        };
        if crc32(payload) != crc {
            break; // corrupt record: stop at the last trustworthy frame
        }
        let mut dec = Dec::new(payload, "wal record");
        let Ok(record) = (|| -> Result<WalRecord, MaintainError> {
            let epoch = dec.u64()?;
            let insert = dec.bool()?;
            let n = dec.u32()? as usize;
            if payload.len() != 13 + 12 * n {
                return Err(corrupt("wal record: length mismatch"));
            }
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(Triple::new(dec.u32()?, dec.u32()?, dec.u32()?));
            }
            Ok(WalRecord {
                epoch,
                insert,
                batch,
            })
        })() else {
            break;
        };
        records.push(record);
        pos += FRAME_LEN + len;
        valid_end = pos as u64;
    }
    Ok(WalScan {
        records,
        valid_end,
        file_len,
    })
}

/// The snapshot files of a durability directory, newest epoch first.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, MaintainError> {
    let mut snaps = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => return Err(io_err("durability dir scan", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("durability dir scan", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".snap"))
        else {
            continue;
        };
        let Ok(epoch) = stem.parse::<u64>() else {
            continue;
        };
        snaps.push((epoch, entry.path()));
    }
    snaps.sort_unstable_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    Ok(snaps)
}

/// Recovers a resident [`IncrementalDualSim`] from a durability
/// directory: loads the newest snapshot whose checksum verifies (older
/// ones are fallbacks), truncates any torn WAL tail, replays the WAL
/// records past the snapshot's epoch through the ordinary maintenance
/// paths, and re-attaches the WAL for further durable updates. The
/// replay is deterministic, so the recovered χ and logical
/// [`SolveStats`] are bit-identical to an uninterrupted run over the
/// same committed prefix.
pub(crate) fn recover(opts: &DurabilityOptions) -> Result<Recovered, MaintainError> {
    let scan = scan_wal(&wal_path(&opts.dir))?;
    let torn_bytes = scan.file_len.saturating_sub(scan.valid_end);
    let snapshots = list_snapshots(&opts.dir)?;
    if snapshots.is_empty() {
        return Err(corrupt(format!(
            "{}: no snapshot files; nothing to recover",
            opts.dir.display()
        )));
    }
    let mut skipped = 0usize;
    let mut last_err: Option<MaintainError> = None;
    for (snap_epoch, path) in &snapshots {
        let decoded = match load_snapshot(path) {
            Ok(d) => d,
            Err(e) => {
                skipped += 1;
                last_err = Some(e);
                continue;
            }
        };
        if decoded.epoch != *snap_epoch {
            skipped += 1;
            last_err = Some(corrupt(format!(
                "{}: payload epoch {} does not match file name",
                path.display(),
                decoded.epoch
            )));
            continue;
        }
        // The replayable tail must extend this snapshot gap-free.
        let tail: Vec<&WalRecord> = scan
            .records
            .iter()
            .filter(|r| r.epoch > decoded.epoch)
            .collect();
        let sequential = tail
            .iter()
            .enumerate()
            .all(|(i, r)| r.epoch == decoded.epoch + 1 + i as u64);
        if !sequential {
            skipped += 1;
            last_err = Some(corrupt(format!(
                "{}: wal records do not extend snapshot epoch {} gap-free",
                path.display(),
                decoded.epoch
            )));
            continue;
        }
        // Truncate the torn tail before replaying, so a recovered
        // engine appends cleanly after the last valid record.
        if torn_bytes > 0 && scan.file_len > 0 {
            let wal = OpenOptions::new()
                .write(true)
                .open(wal_path(&opts.dir))
                .map_err(|e| io_err("wal truncate", e))?;
            wal.set_len(scan.valid_end.max(WAL_HEADER_LEN))
                .map_err(|e| io_err("wal truncate", e))?;
        }
        return replay(opts, decoded, &tail, skipped, torn_bytes, &scan);
    }
    Err(last_err.unwrap_or_else(|| corrupt("no usable snapshot")))
}

/// Reconstructs the engine from a decoded snapshot and replays the WAL
/// tail through the ordinary maintenance paths.
fn replay(
    opts: &DurabilityOptions,
    decoded: DecodedSnapshot,
    tail: &[&WalRecord],
    snapshots_skipped: usize,
    torn_bytes: u64,
    scan: &WalScan,
) -> Result<Recovered, MaintainError> {
    let DecodedSnapshot {
        epoch: snapshot_epoch,
        meta,
        config,
        db,
        soi,
        warm,
        engine,
        solution,
    } = decoded;
    let engine = engine.map(|e| DeltaSolver::from_state(&soi, e)).transpose()?;
    let solution = match (&engine, solution) {
        (Some(e), _) => e.solution(),
        (None, Some((chi, stats))) => Solution { chi, stats },
        (None, None) => return Err(corrupt("snapshot carries neither engine nor solution")),
    };
    let mut sim =
        IncrementalDualSim::from_restored(soi, config, engine, solution, warm, snapshot_epoch);
    let mut present: std::collections::BTreeSet<Triple> = db.triples().collect();
    let mut db = db;
    for record in tail {
        for t in &record.batch {
            if record.insert {
                present.insert(*t);
            } else {
                present.remove(t);
            }
        }
        let triples: Vec<Triple> = present.iter().copied().collect();
        let db_after = db
            .with_triples(&triples)
            .map_err(|e| corrupt(format!("wal replay epoch {}: {e}", record.epoch)))?;
        if record.insert {
            sim.apply_insertions(&db_after, &record.batch)?;
        } else {
            sim.apply_deletions(&db_after, &record.batch)?;
        }
        db = db_after;
    }
    let epoch = sim.epoch();
    debug_assert_eq!(epoch, snapshot_epoch + tail.len() as u64);
    let committed_len = if scan.file_len == 0 {
        WAL_HEADER_LEN // the WAL will be recreated on attach
    } else {
        scan.valid_end.max(WAL_HEADER_LEN)
    };
    sim.attach_recovered(Durability::open_for_append(opts, committed_len)?);
    Ok(Recovered {
        sim,
        db,
        meta,
        report: RecoveryReport {
            snapshot_epoch,
            snapshots_skipped,
            records_replayed: tail.len(),
            torn_bytes,
            epoch,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn enc_dec_round_trip_primitives() {
        let mut enc = Enc::default();
        enc.u8(7);
        enc.bool(true);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.usize(42);
        enc.str("héllo");
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(dec.u8().unwrap(), 7);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.usize().unwrap(), 42);
        assert_eq!(dec.str().unwrap(), "héllo");
        assert!(dec.done().is_ok());
    }

    #[test]
    fn dec_reports_truncation_and_trailing_bytes() {
        let mut dec = Dec::new(&[1, 2], "test");
        assert!(matches!(dec.u32(), Err(MaintainError::Corrupt { .. })));
        let mut dec = Dec::new(&[1, 2], "test");
        assert_eq!(dec.u8().unwrap(), 1);
        assert!(matches!(dec.done(), Err(MaintainError::Corrupt { .. })));
    }

    #[test]
    fn config_round_trips_through_the_wire_format() {
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                strategy: EvalStrategy::RowWise,
                ordering: IneqOrdering::QueryOrder,
                init: InitMode::AllOnes,
                fixpoint: FixpointMode::DeltaCounting,
                drain: DrainStrategy::Sharded { threads: 7 },
                drain_inline_below: 3,
                chi_backend: ChiBackend::Rle,
                slab_backend: SlabBackend::Sparse,
                seed_threads: 4,
                early_exit: false,
                drain_budget: Some(123_456),
                journal: false,
                kernel_backend: KernelBackend::Unrolled,
            },
        ];
        for config in configs {
            let mut enc = Enc::default();
            encode_config(&mut enc, &config);
            let mut dec = Dec::new(&enc.buf, "test");
            assert_eq!(decode_config(&mut dec).unwrap(), config);
            assert!(dec.done().is_ok());
        }
    }

    #[test]
    fn stats_round_trip_bit_for_bit() {
        let s = SolveStats {
            iterations: 3,
            counter_inits: 99,
            journal_entries: 1234,
            emptied_mandatory: true,
            ..Default::default()
        };
        let mut enc = Enc::default();
        encode_stats(&mut enc, &s);
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(decode_stats(&mut dec).unwrap(), s);
        assert!(dec.done().is_ok());
    }

    #[test]
    fn chi_round_trips_both_backends() {
        let chi = vec![
            ChiVec::from_indices(130, &[0, 1, 64, 129], ChiBackend::Dense),
            ChiVec::from_indices(130, &[5, 6, 7], ChiBackend::Rle),
            ChiVec::zeros(10, ChiBackend::Rle),
        ];
        let mut enc = Enc::default();
        encode_chi(&mut enc, &chi);
        let mut dec = Dec::new(&enc.buf, "test");
        let back = decode_chi(&mut dec).unwrap();
        assert!(dec.done().is_ok());
        assert_eq!(back.len(), chi.len());
        for (a, b) in chi.iter().zip(&back) {
            assert_eq!(a, b);
            assert_eq!(a.backend(), b.backend(), "backend preserved exactly");
        }
    }

    #[test]
    fn wal_scan_of_a_missing_file_is_empty() {
        let scan = scan_wal(Path::new("/nonexistent/definitely/wal.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.file_len, 0);
    }
}
