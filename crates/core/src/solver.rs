//! The SOI fixpoint solvers (Sect. 3.2) with the Sect. 3.3 evaluation
//! strategies.
//!
//! Two complete convergence engines share the entry points [`solve`] and
//! [`solve_from`], selected by [`FixpointMode`]:
//!
//! * [`FixpointMode::Reevaluate`] — the paper's algorithm: starting from
//!   the initial assignment (Eq. (12), or the tighter Eq. (13) summary
//!   initialization), repeatedly pick an *unstable* inequality,
//!   re-evaluate it as a whole bit-matrix multiplication, intersect the
//!   target variable with the product, and re-mark every inequality
//!   whose right-hand side mentions the updated variable;
//! * [`FixpointMode::DeltaCounting`] — the counting engine of
//!   [`crate::delta`]: per-(inequality, candidate) support counters turn
//!   each candidate removal into O(degree) counter decrements instead of
//!   a whole-inequality re-evaluation.
//!
//! Both terminate in the unique largest solution — the largest dual
//! simulation (Prop. 2).
//!
//! For the re-evaluation engine, two degrees of freedom are exposed,
//! matching the paper's discussion:
//!
//! * the **order** in which unstable inequalities are evaluated
//!   ([`IneqOrdering`]): syntactic query order, or matrices with more
//!   empty columns first (sparsity ⇒ early shrinking);
//! * the **evaluation strategy** per multiplication ([`EvalStrategy`]):
//!   row-wise, column-wise, or the adaptive rule "row-wise iff the
//!   source χ has fewer bits set than the target χ".

use crate::plan::SolvePlan;
use crate::{Inequality, Soi};
use dualsim_bitmatrix::{
    BitVec, ChiBackend, ChiVec, KernelBackend, SlabBackend, AUTO_RLE_DENSITY_DIVISOR,
};
use dualsim_graph::GraphDb;

/// How each bit-matrix multiplication is evaluated (Sect. 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Always OR together the matrix rows selected by the source χ.
    RowWise,
    /// Always probe candidate bits of the target χ against the transpose.
    ColumnWise,
    /// Row-wise iff `|χ(source)| ≤ |χ(target)|` — the paper's dynamic
    /// fewer-iterations heuristic.
    Adaptive,
}

/// Order in which unstable inequalities are picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IneqOrdering {
    /// The syntactic order of the query's triple patterns.
    QueryOrder,
    /// Inequalities whose matrix has more empty columns first, aiming to
    /// shrink the simulation as early as possible (Sect. 3.3).
    SparsityFirst,
}

/// Initialization of the candidate relation `S₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// `v ≤ 1` for every variable (Eq. (12)).
    AllOnes,
    /// The syntactic optimization of Eq. (13): only nodes supporting the
    /// incident edge labels are candidates.
    Summaries,
}

/// Which convergence engine drives the fixpoint computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixpointMode {
    /// Re-evaluate a whole inequality whenever its right-hand-side
    /// variable shrank (the Sect. 3.2 algorithm, and the historical
    /// behavior of this crate).
    #[default]
    Reevaluate,
    /// Maintain per-(inequality, candidate) support counters and
    /// propagate only the *removed* bits through a worklist: clearing bit
    /// `u` from χ(source) walks `matrix.row(u)` once and decrements the
    /// support of the affected targets — O(degree) per removal, in the
    /// style of HHK removal counters. Reaches the identical largest
    /// solution; see [`crate::delta`].
    DeltaCounting,
}

/// How the delta-counting engine drains its removal worklist.
///
/// Both strategies execute the *identical* round-based algorithm — each
/// round shards the pending removals by inequality (support-counter
/// slabs are disjoint per inequality), computes every shard's counter
/// decrements and removal proposals against a frozen χ, and merges the
/// proposals into χ in inequality order. The only difference is whether
/// the shard phase runs inline or fans out over scoped worker threads,
/// so χ, the final solution **and every work counter** are bit-identical
/// across strategies and thread counts (proptest-pinned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainStrategy {
    /// Process each round's shards on the calling thread.
    #[default]
    Sequential,
    /// Fan each round's inequality shards out over up to `threads`
    /// scoped worker threads (`std::thread::scope`), synchronizing only
    /// at the per-round χ-handoff merge. `threads <= 1` behaves exactly
    /// like [`DrainStrategy::Sequential`].
    Sharded {
        /// Upper bound on worker threads per drain round; the effective
        /// count is capped by the number of touched inequalities.
        threads: usize,
    },
}

impl DrainStrategy {
    /// The configured thread budget (1 for the sequential strategy).
    pub fn threads(self) -> usize {
        match self {
            DrainStrategy::Sequential => 1,
            DrainStrategy::Sharded { threads } => threads.max(1),
        }
    }
}

/// Solver configuration; [`SolverConfig::default`] is the configuration
/// used for all headline experiments (adaptive strategy, sparsity-first
/// ordering, summary initialization, early exit, sequential drain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Multiplication strategy.
    pub strategy: EvalStrategy,
    /// Inequality evaluation order.
    pub ordering: IneqOrdering,
    /// Initial candidate relation.
    pub init: InitMode,
    /// Convergence engine (whole-inequality re-evaluation vs.
    /// delta-counting removal propagation). Both reach the same largest
    /// solution; they differ only in how much work each shrink costs.
    pub fixpoint: FixpointMode,
    /// Worklist draining of the delta-counting engine: inline or sharded
    /// across scoped threads. Ignored by [`FixpointMode::Reevaluate`].
    pub drain: DrainStrategy,
    /// Adaptive drain-round threading: a round whose pending-removal
    /// batch is smaller than this volume runs its shards inline even
    /// under [`DrainStrategy::Sharded`] — spawning scoped threads for a
    /// handful of removals costs more than the work itself. Invisible
    /// to χ and to every work counter (threading never changes logical
    /// work), so every parity gate holds across any threshold.
    pub drain_inline_below: usize,
    /// χ storage backend: dense bit vectors, run-length encoded ones,
    /// or an automatic per-solve choice from the seeded candidate
    /// density. Both concrete backends produce bit-identical χ and
    /// identical logical work counters ([`SolveStats::logical`]); they
    /// differ only in χ memory ([`SolveStats::chi_peak_words`]) and
    /// constant factors.
    pub chi_backend: ChiBackend,
    /// Support-counter storage backend of the delta-counting engine:
    /// dense `u32` arrays, sparse hash counters, or an automatic
    /// per-solve choice resolved from the *same* seeded-density bound
    /// the χ `Auto` uses. Like the χ backends, the slab backends are
    /// logically interchangeable — identical χ and identical logical
    /// work counters — and differ only in counter memory
    /// ([`SolveStats::slab_peak_words`]). Ignored by
    /// [`FixpointMode::Reevaluate`].
    pub slab_backend: SlabBackend,
    /// Parallel eager seeding of the delta-counting engine: the
    /// per-inequality counter seeds at `from_chi` are independent
    /// (disjoint slabs, frozen χ), so they fan out over up to this many
    /// scoped worker threads through the same take-slab/merge machinery
    /// the sharded drain uses. Invisible to χ and to every work counter
    /// (seeding work is per inequality and merged in inequality order),
    /// so every parity gate holds across any thread count. `1` seeds
    /// inline.
    pub seed_threads: usize,
    /// Abort as soon as a *mandatory* variable loses all candidates: the
    /// query then has no matches and everything can be pruned. Turn this
    /// off to obtain the mathematical largest solution even for
    /// unsatisfiable (components of) queries.
    pub early_exit: bool,
    /// Cooperative work budget for *maintenance* drains (epochs), in
    /// logical work ops ([`SolveStats::work_ops`] spent within the
    /// batch). Checked at drain round boundaries only — a runaway drain
    /// is cancelled between rounds, never mid-shard. On cancellation
    /// the epoch rolls back, the batch reports
    /// `MaintainError::BudgetExceeded`, and the engine is poisoned
    /// (the degradation ladder falls back to a cold solve). `None`
    /// (the default) never cancels. Cold solves ignore the budget —
    /// it bounds incremental maintenance, not initial convergence.
    pub drain_budget: Option<usize>,
    /// Record a rollback journal during maintenance epochs so an
    /// erroring batch can be aborted back to the exact pre-batch state.
    /// Journaling performs **zero** additional logical work (it only
    /// appends undo records on mutations that already happen) — the
    /// `journal_entries` gauge and `experiments incremental --chaos`
    /// measure its wall-clock cost. Disabling it trades atomicity for
    /// that constant factor: an erroring batch then poisons the engine
    /// instead of rolling back. On by default.
    pub journal: bool,
    /// Word-level kernel instantiation for the bit-vector/-matrix inner
    /// loops: portable scalar, 4×-unrolled, SIMD (AVX2 where the CPU
    /// supports it), or an automatic pick of the best available. All
    /// instantiations are bit-identical in χ and in every logical work
    /// counter — the kernel moves the same words faster, it never
    /// changes *which* words move — so every parity gate holds across
    /// backends. Resolved once per solve into the [`SolvePlan`].
    pub kernel_backend: KernelBackend,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            strategy: EvalStrategy::Adaptive,
            ordering: IneqOrdering::SparsityFirst,
            init: InitMode::Summaries,
            fixpoint: FixpointMode::Reevaluate,
            drain: DrainStrategy::Sequential,
            drain_inline_below: 64,
            chi_backend: ChiBackend::Dense,
            slab_backend: SlabBackend::Dense,
            seed_threads: 1,
            early_exit: true,
            drain_budget: None,
            journal: true,
            kernel_backend: KernelBackend::Auto,
        }
    }
}

/// Work counters of one solver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Full stabilization passes over the inequality list — the paper's
    /// "iterations" (L1 needs 2, L0 more than 30).
    pub iterations: usize,
    /// Individual inequality evaluations.
    pub evaluations: usize,
    /// Evaluations that shrank a variable.
    pub updates: usize,
    /// Multiplications evaluated row-wise.
    pub rowwise: usize,
    /// Multiplications evaluated column-wise.
    pub colwise: usize,
    /// Matrix rows OR-ed by row-wise multiplications.
    pub rows_ored: usize,
    /// Candidate rows probed by column-wise evaluations.
    pub bits_probed: usize,
    /// Support-counter increments while seeding the delta engine.
    pub counter_inits: usize,
    /// Support-counter decrements during delta removal propagation.
    pub counter_decrements: usize,
    /// Support-counter increments during delta *insertion* maintenance
    /// (the counter walk over each inserted triple's matching
    /// inequalities — zero on cold solves and deletion-only streams).
    pub counter_increments: usize,
    /// Candidates optimistically re-admitted into χ by insertion
    /// maintenance (the 0→1 re-activation frontier plus the inserted
    /// endpoints); the subsequent drain culls the over-approximation,
    /// so re-admissions are an upper bound on the candidates gained.
    pub reactivations: usize,
    /// Matrix CSR row/segment lookups performed by the delta drain: the
    /// per-bit drain pays one per removed node (`M.row(u)`), the
    /// run-aware drain under RLE χ pays one per *run* of consecutive
    /// removed nodes (`M.rows_segment`). The entries walked — and hence
    /// `counter_decrements` — are identical either way; this gauge
    /// counts the row-pointer loads the run-aware drain saves. Like the
    /// storage gauges it is **not** a logical work counter: it is
    /// deterministic per χ backend (identical across slab backends,
    /// drain strategies and thread counts) but differs *between* χ
    /// backends, so parity gates compare [`SolveStats::logical`].
    pub row_lookups: usize,
    /// `(variable, node)` removal events drained from the delta worklist.
    pub delta_removals: usize,
    /// Removal-propagation rounds of the delta drain — the
    /// cross-inequality χ-handoff points of the sharded strategy.
    pub drain_rounds: usize,
    /// Per-inequality shard units processed across all drain rounds
    /// (identical for sequential and sharded drains by construction).
    pub shard_units: usize,
    /// Edge inequalities whose counter seeding was skipped at
    /// initialization because the seeded χ provably satisfies them.
    pub seeds_deferred: usize,
    /// Deferred inequalities seeded on first touch (a source shrink or a
    /// retraction reaching them) later on.
    pub lazy_seeds: usize,
    /// Total candidates after initialization (Σ|χ(v)|).
    pub initial_candidates: usize,
    /// Total candidates at the fixpoint.
    pub final_candidates: usize,
    /// Peak χ storage across the solve, in `u64`-equivalent words
    /// (dense: one per 64-bit block and variable; RLE: one per run),
    /// sampled after initialization and at every stabilization pass /
    /// drain round. This is a **storage metric, not a logical work
    /// counter**: it is deterministic for a fixed backend (identical
    /// across drain strategies and thread counts) but differs *between*
    /// χ backends — backend-parity gates therefore compare the
    /// [`SolveStats::logical`] projection.
    pub chi_peak_words: usize,
    /// Peak support-counter storage across the solve, in
    /// `u64`-equivalent words summed over all inequalities (dense: two
    /// `u32` counters per word and matrix column; sparse: one word per
    /// supported column), sampled after eager seeding, at every drain
    /// round and after every retraction — the counter-side mirror of
    /// [`SolveStats::chi_peak_words`]. A **storage metric, not a
    /// logical work counter**: deterministic for a fixed slab backend
    /// but different *between* backends, so parity gates compare
    /// [`SolveStats::logical`]. Always 0 under
    /// [`crate::FixpointMode::Reevaluate`] and for inequalities whose
    /// seeding stayed deferred.
    pub slab_peak_words: usize,
    /// Maintenance epochs aborted and rolled back to their pre-batch
    /// state (failpoints, out-of-vocabulary batches, budget
    /// cancellations). A rollback restores χ, counters and the logical
    /// stats exactly; this counter (carried outside the restored
    /// snapshot) is how the degradation stays observable.
    pub rollbacks: usize,
    /// Times the engine was marked poisoned — after a budget
    /// cancellation or a failed rollback — forcing the next query onto
    /// the cold-solve fallback. Carried across the rebuild by
    /// [`crate::IncrementalDualSim`].
    pub poisonings: usize,
    /// Maintenance drains cancelled at a round boundary by
    /// [`SolverConfig::drain_budget`] (each one also counts a rollback
    /// and a poisoning).
    pub budget_aborts: usize,
    /// Undo records appended to the rollback journal across the run —
    /// the journal's size gauge. Journaling adds **no** logical work
    /// (every entry shadows a mutation that already happened), so like
    /// the storage gauges this is excluded from
    /// [`SolveStats::logical`]; unlike them it is identical across
    /// backends, but it differs with [`SolverConfig::journal`] on/off,
    /// which the parity gates must not see.
    pub journal_entries: usize,
    /// A mandatory variable lost all candidates (no matches exist).
    pub emptied_mandatory: bool,
}

impl SolveStats {
    /// Unified engine-work measure: rows OR-ed + candidate rows probed
    /// (the re-evaluation engine's costs) + support-counter increments
    /// and decrements (the delta engine's costs). One unit ≈ one CSR
    /// row visit or one counter touch, so the two engines are directly
    /// comparable — this is what `BENCH_fixpoint.json` tracks.
    pub fn work_ops(&self) -> usize {
        self.rows_ored
            + self.bits_probed
            + self.counter_inits
            + self.counter_decrements
            + self.counter_increments
    }

    /// The logical-work projection: every counter except the
    /// backend-dependent gauges — χ storage (`chi_peak_words`), counter
    /// storage (`slab_peak_words`) and the drain's row-pointer loads
    /// (`row_lookups`, which the run-aware RLE-χ drain compresses) —
    /// and the robustness bookkeeping (`rollbacks`, `poisonings`,
    /// `budget_aborts`, `journal_entries`), which records degradation
    /// *events* rather than fixpoint work: an aborted epoch restores
    /// the logical counters exactly, and the journal gauge depends on
    /// [`SolverConfig::journal`], so neither belongs in a parity
    /// comparison. All χ-backend × slab-backend × drain-strategy ×
    /// thread-count combinations must agree on this projection bit for
    /// bit (the backend parity discipline, extending the PR-3
    /// drain-strategy parity).
    pub fn logical(&self) -> SolveStats {
        SolveStats {
            chi_peak_words: 0,
            slab_peak_words: 0,
            row_lookups: 0,
            rollbacks: 0,
            poisonings: 0,
            budget_aborts: 0,
            journal_entries: 0,
            ..self.clone()
        }
    }

    /// Folds a χ-storage sample into the peak metric.
    pub(crate) fn observe_chi_words(&mut self, words: usize) {
        self.chi_peak_words = self.chi_peak_words.max(words);
    }

    /// Folds a counter-storage sample into the peak metric.
    pub(crate) fn observe_slab_words(&mut self, words: usize) {
        self.slab_peak_words = self.slab_peak_words.max(words);
    }
}

/// Current χ storage footprint in `u64`-equivalent words.
pub(crate) fn chi_words(chi: &[ChiVec]) -> usize {
    chi.iter().map(ChiVec::storage_words).sum()
}

/// The largest solution of a system of inequalities.
#[derive(Debug, Clone)]
pub struct Solution {
    /// χ per SOI variable (indexed like `soi.vars`), behind the
    /// pluggable storage abstraction — dense or run-length encoded per
    /// [`SolverConfig::chi_backend`]. Equality is semantic, so
    /// solutions compare across backends.
    pub chi: Vec<ChiVec>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// Union of the χ of all SOI variables exposed for query variable
    /// `var` — the paper's final solution per query variable (renamed
    /// surrogates are subsumed via their subset inequalities, extreme
    /// cases expose several independent surrogates, Sect. 4.4). The
    /// union is materialized densely regardless of the χ backend.
    pub fn var_solution(&self, soi: &Soi, var: &str) -> BitVec {
        let n = self.chi.first().map(ChiVec::len).unwrap_or(0);
        let mut out = BitVec::zeros(n);
        for &idx in soi.vars_for(var) {
            self.chi[idx].or_into(&mut out);
        }
        out
    }

    /// `true` iff some mandatory variable has no candidates, i.e. the
    /// query's result set is certainly empty.
    pub fn is_certainly_empty(&self) -> bool {
        self.stats.emptied_mandatory
    }
}

/// Computes the largest solution of `soi` over `db` (Sect. 3.2
/// algorithm). See [`SolverConfig`] for the tunable heuristics.
pub fn solve(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> Solution {
    solve_from(db, soi, config, seed_chi(db, soi, config))
}

/// Upper bound on the seeded candidate count (Σ per variable), computed
/// from summary popcounts *without materializing any χ vector*: pinned
/// variables contribute 0/1, free variables at most the smallest
/// incident Eq.-(13) summary (or |V| under [`InitMode::AllOnes`]).
fn seeded_candidates_bound(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> usize {
    let n = db.num_nodes();
    let mut bound: Vec<usize> = soi
        .vars
        .iter()
        .map(|var| match var.pinned {
            Some(Some(_)) => 1,
            Some(None) => 0,
            None => n,
        })
        .collect();
    if config.init == InitMode::Summaries {
        let dual = soi.kind == crate::SimulationKind::Dual;
        for e in &soi.edges {
            match e.label {
                Some(a) => {
                    bound[e.src] = bound[e.src].min(db.f_summary(a).count_ones());
                    if dual {
                        bound[e.dst] = bound[e.dst].min(db.b_summary(a).count_ones());
                    }
                }
                None => {
                    bound[e.src] = 0;
                    if dual {
                        bound[e.dst] = 0;
                    }
                }
            }
        }
    }
    bound.iter().sum()
}

/// The shared `Auto` predicate of the χ and counter-slab backends: a
/// compressed representation is worth it when the seeded candidate
/// density `candidates / space` is at most
/// 1/[`AUTO_RLE_DENSITY_DIVISOR`]. One definition, three call sites
/// (χ pre-seed estimate, χ exact resolution, slab resolution), so the
/// documented "same bound" invariant cannot drift.
#[inline]
pub(crate) fn auto_prefers_compressed(candidates: usize, space: usize) -> bool {
    space > 0 && candidates * AUTO_RLE_DENSITY_DIVISOR <= space
}

/// The χ backend the *seeding* phase materializes in. `Auto` decides
/// here, before any χ vector exists, from the summary-popcount upper
/// bound on the seeded candidate count — so a solve that resolves to
/// dense never pays a fragmented RLE seed, and one that resolves to RLE
/// never pays a dense allocation. The engines re-resolve against the
/// *exact* seeded counts after initialization
/// ([`SolvePlan::resolve`]); that second decision can only tighten
/// dense → RLE, whose conversion is bounded (runs ≤ candidates ≤
/// space / [`AUTO_RLE_DENSITY_DIVISOR`] = the dense block count).
fn seeding_backend(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> ChiBackend {
    match config.chi_backend {
        ChiBackend::Dense => ChiBackend::Dense,
        ChiBackend::Rle => ChiBackend::Rle,
        ChiBackend::Auto => {
            let space = soi.vars.len() * db.num_nodes();
            let bound = seeded_candidates_bound(db, soi, config);
            if auto_prefers_compressed(bound, space) {
                ChiBackend::Rle
            } else {
                ChiBackend::Dense
            }
        }
    }
}

/// The Eq.-(12) starting relation with the Sect.-4.5 constant alteration:
/// all ones per variable, except constants pinned to their singleton (or
/// emptied when the constant is absent from the database).
pub(crate) fn seed_chi(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> Vec<ChiVec> {
    let n = db.num_nodes();
    let backend = seeding_backend(db, soi, config);
    soi.vars
        .iter()
        .map(|var| match var.pinned {
            Some(Some(node)) => ChiVec::from_indices(n, &[node], backend),
            Some(None) => ChiVec::zeros(n, backend), // constant absent from the DB
            None => ChiVec::ones(n, backend),
        })
        .collect()
}

/// Applies the Eq.-(13) summary tightening in place (no-op under
/// [`InitMode::AllOnes`]). Shared by both fixpoint engines.
pub(crate) fn apply_summary_init(db: &GraphDb, soi: &Soi, config: &SolverConfig, chi: &mut [ChiVec]) {
    if config.init != InitMode::Summaries {
        return;
    }
    let dual = soi.kind == crate::SimulationKind::Dual;
    for e in &soi.edges {
        match e.label {
            Some(a) => {
                chi[e.src].and_assign_dense(db.f_summary(a));
                if dual {
                    // Forward-only simulation puts no incoming-edge
                    // requirement on objects (Def. 2(ii) is dropped).
                    chi[e.dst].and_assign_dense(db.b_summary(a));
                }
            }
            None => {
                // The predicate does not occur in the database: no
                // node supports the edge.
                chi[e.src].clear_all();
                if dual {
                    chi[e.dst].clear_all();
                }
            }
        }
    }
}

/// The order in which inequalities are (re-)evaluated, honoring
/// [`IneqOrdering`]. Shared by both engines (the delta engine uses it
/// for its one-time seeding pass).
pub(crate) fn evaluation_order(db: &GraphDb, soi: &Soi, config: &SolverConfig) -> Vec<u32> {
    let mut order: Vec<u32> = (0..soi.ineqs.len() as u32).collect();
    if config.ordering == IneqOrdering::SparsityFirst {
        // Fewer non-empty columns of the multiplied matrix first. The
        // columns of F^a that contain a bit are exactly the set bits of
        // b^a (and vice versa), so the key is the popcount of the
        // opposite-direction summary. The keys are materialized up
        // front: sort_by_key re-evaluates its key function O(m log m)
        // times, and each popcount is a full pass over a summary vector.
        let keys: Vec<usize> = soi
            .ineqs
            .iter()
            .map(|ineq| match *ineq {
                Inequality::Subset { .. } => 0,
                Inequality::Edge { label: None, .. } => 0,
                Inequality::Edge {
                    label: Some(a),
                    forward,
                    ..
                } => {
                    if forward {
                        db.b_summary(a).count_ones()
                    } else {
                        db.f_summary(a).count_ones()
                    }
                }
            })
            .collect();
        order.sort_by_key(|&i| (keys[i as usize], i));
    }
    order
}

/// Runs the fixpoint from a caller-provided starting relation.
///
/// `initial_chi` must be a *superset* of the largest solution (e.g. the
/// previous solution after triples were **deleted** — the largest dual
/// simulation is monotone in the database edges, so it can only shrink);
/// the fixpoint then converges to the new largest solution without
/// re-seeding from `V₁ × V₂`. This is the warm-start primitive behind
/// incremental maintenance.
///
/// # Panics
/// Panics if `initial_chi` has the wrong arity or vector lengths.
pub fn solve_from(
    db: &GraphDb,
    soi: &Soi,
    config: &SolverConfig,
    initial_chi: Vec<ChiVec>,
) -> Solution {
    let n = db.num_nodes();
    assert_eq!(initial_chi.len(), soi.vars.len(), "one χ per SOI variable");
    for c in &initial_chi {
        assert_eq!(c.len(), n, "χ length must match the node count");
    }
    match config.fixpoint {
        FixpointMode::Reevaluate => solve_reevaluate(db, soi, config, initial_chi),
        FixpointMode::DeltaCounting => crate::delta::solve_delta(db, soi, config, initial_chi),
    }
}

/// The whole-inequality re-evaluation engine ([`FixpointMode::Reevaluate`]).
fn solve_reevaluate(
    db: &GraphDb,
    soi: &Soi,
    config: &SolverConfig,
    initial_chi: Vec<ChiVec>,
) -> Solution {
    let n = db.num_nodes();
    let nv = soi.vars.len();
    let mut stats = SolveStats::default();

    // ---- Initialization: Eq. (12) / Eq. (13) plus constant pinning. ----
    let mut chi = initial_chi;
    apply_summary_init(db, soi, config, &mut chi);
    let mut counts: Vec<usize> = chi.iter().map(ChiVec::count_ones).collect();
    stats.initial_candidates = counts.iter().sum();
    let plan = SolvePlan::resolve(config, stats.initial_candidates, nv, n);
    plan.install_kernel();
    plan.apply_chi(&mut chi);
    stats.observe_chi_words(chi_words(&chi));

    if let Some(result) = check_empty_mandatory(soi, &mut chi, &counts, &mut stats, config) {
        return result;
    }

    // ---- Dependency lists: ineqs to re-mark when a variable shrinks. ----
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (i, ineq) in soi.ineqs.iter().enumerate() {
        let rhs = match *ineq {
            Inequality::Edge { source, .. } => source,
            Inequality::Subset { sup, .. } => sup,
        };
        dependents[rhs].push(i as u32);
    }

    // ---- Evaluation order. ----
    let order = evaluation_order(db, soi, config);

    // ---- Fixpoint loop (step 2 of the Sect. 3.2 algorithm). ----
    let mut unstable = vec![true; soi.ineqs.len()];
    let mut n_unstable = soi.ineqs.len();
    let mut scratch = BitVec::zeros(n);
    let mut removed_scratch: Vec<u32> = Vec::new();
    // Lazily-created snapshot buffer for self-loop pattern edges,
    // reused across evaluations (allocated in the resolved χ backend on
    // first use).
    let mut snapshot_scratch: Option<ChiVec> = None;
    while n_unstable > 0 {
        stats.iterations += 1;
        for &i in &order {
            if !unstable[i as usize] {
                continue;
            }
            unstable[i as usize] = false;
            n_unstable -= 1;
            stats.evaluations += 1;
            let updated = match soi.ineqs[i as usize] {
                Inequality::Edge {
                    target,
                    source,
                    label,
                    forward,
                } => {
                    let changed = match label {
                        None => {
                            let had = counts[target] > 0;
                            chi[target].clear_all();
                            had
                        }
                        Some(a) => {
                            let row_wise = match config.strategy {
                                EvalStrategy::RowWise => true,
                                EvalStrategy::ColumnWise => false,
                                EvalStrategy::Adaptive => counts[source] <= counts[target],
                            };
                            if row_wise {
                                stats.rowwise += 1;
                                let matrix = if forward {
                                    db.forward(a)
                                } else {
                                    db.backward(a)
                                };
                                // The selector is walked in its own
                                // representation (RLE runs never
                                // densify); only the shared product
                                // scratch is dense. Fused product +
                                // subset test: a target already inside
                                // the product is stable without a
                                // second intersection pass.
                                let (rows, stable) = matrix.multiply_subset_into(
                                    &chi[source],
                                    &mut scratch,
                                    &chi[target],
                                );
                                stats.rows_ored += rows;
                                if stable {
                                    false
                                } else {
                                    chi[target].and_assign_dense(&scratch)
                                }
                            } else {
                                stats.colwise += 1;
                                // Column j of F^a is row j of B^a: probe
                                // the transpose.
                                let transpose = if forward {
                                    db.backward(a)
                                } else {
                                    db.forward(a)
                                };
                                let (changed, probed) = if source == target {
                                    // Self-loop pattern edge (v, a, v):
                                    // probe against a snapshot so the
                                    // evaluation reads the pre-update χ.
                                    let snapshot = match snapshot_scratch.as_mut() {
                                        Some(s) => {
                                            s.copy_from(&chi[source]);
                                            &*s
                                        }
                                        None => snapshot_scratch.insert(chi[source].clone()),
                                    };
                                    transpose.retain_intersecting_chi(
                                        &mut chi[target],
                                        snapshot,
                                        &mut removed_scratch,
                                    )
                                } else {
                                    let (probe, target_chi) = split_pair(&mut chi, source, target);
                                    transpose.retain_intersecting_chi(
                                        target_chi,
                                        probe,
                                        &mut removed_scratch,
                                    )
                                };
                                stats.bits_probed += probed;
                                changed
                            }
                        }
                    };
                    changed.then_some(target)
                }
                Inequality::Subset { sub, sup } => {
                    let (sup_chi, sub_chi) = split_pair(&mut chi, sup, sub);
                    sub_chi.and_assign(sup_chi).then_some(sub)
                }
            };
            if let Some(v) = updated {
                stats.updates += 1;
                counts[v] = chi[v].count_ones();
                if counts[v] == 0 && soi.vars[v].mandatory {
                    stats.emptied_mandatory = true;
                    if config.early_exit {
                        return empty_solution(&mut chi, stats);
                    }
                }
                // Re-mark every inequality whose right-hand side mentions
                // the shrunk variable — including the current one for
                // self-loop patterns (v, a, v), whose product may have
                // shrunk along with χ(v).
                for &j in &dependents[v] {
                    if !unstable[j as usize] {
                        unstable[j as usize] = true;
                        n_unstable += 1;
                    }
                }
            }
        }
        // χ-storage sample per stabilization pass: interior clears can
        // *grow* the RLE run count (splits), so the peak is not at
        // initialization.
        stats.observe_chi_words(chi_words(&chi));
    }
    stats.final_candidates = counts.iter().sum();
    Solution { chi, stats }
}

/// Immutable/mutable split borrow of two distinct vector slots.
pub(crate) fn split_pair<T>(chi: &mut [T], read: usize, write: usize) -> (&T, &mut T) {
    assert_ne!(read, write, "inequality with identical sides");
    if read < write {
        let (lo, hi) = chi.split_at_mut(write);
        (&lo[read], &mut hi[0])
    } else {
        let (lo, hi) = chi.split_at_mut(read);
        (&hi[0], &mut lo[write])
    }
}

fn check_empty_mandatory(
    soi: &Soi,
    chi: &mut [ChiVec],
    counts: &[usize],
    stats: &mut SolveStats,
    config: &SolverConfig,
) -> Option<Solution> {
    for (v, var) in soi.vars.iter().enumerate() {
        if counts[v] == 0 && var.mandatory {
            stats.emptied_mandatory = true;
            if config.early_exit {
                return Some(empty_solution(chi, stats.clone()));
            }
        }
    }
    None
}

pub(crate) fn empty_solution(chi: &mut [ChiVec], mut stats: SolveStats) -> Solution {
    for v in chi.iter_mut() {
        v.clear_all();
    }
    stats.final_candidates = 0;
    Solution {
        chi: chi.to_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_sois;
    use dualsim_graph::{GraphDb, GraphDbBuilder};
    use dualsim_query::parse;

    /// The example database of Fig. 1(a). Edge directions follow the
    /// paper's narrative: only B. De Palma and G. Hamilton have both an
    /// outgoing `directed` and an outgoing `worked_with` edge, so the
    /// largest dual simulation of (X1) is exactly relation (2).
    fn fig1_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("B. De Palma", "directed", "Mission: Impossible")
            .unwrap();
        b.add_triple("B. De Palma", "worked_with", "D. Koepp")
            .unwrap();
        b.add_triple("B. De Palma", "born_in", "Newark").unwrap();
        b.add_triple("Mission: Impossible", "awarded", "Oscar")
            .unwrap();
        b.add_triple("Mission: Impossible", "genre", "Action")
            .unwrap();
        b.add_triple("Goldfinger", "genre", "Action").unwrap();
        b.add_triple("G. Hamilton", "directed", "Goldfinger")
            .unwrap();
        b.add_triple("G. Hamilton", "born_in", "Paris").unwrap();
        b.add_triple("G. Hamilton", "worked_with", "H. Saltzman")
            .unwrap();
        b.add_triple("Thunderball", "sequel_of", "Goldfinger")
            .unwrap();
        b.add_triple("From Russia with Love", "prequel_of", "Goldfinger")
            .unwrap();
        b.add_triple("Thunderball", "awarded", "BAFTA Awards")
            .unwrap();
        b.add_triple("H. Saltzman", "born_in", "Saint John")
            .unwrap();
        b.add_triple("T. Young", "directed", "From Russia with Love")
            .unwrap();
        b.add_triple("T. Young", "directed", "Thunderball").unwrap();
        b.add_triple("P.R. Hunt", "worked_with", "T. Young")
            .unwrap();
        b.add_triple("D. Koepp", "directed", "Mortdecai").unwrap();
        b.add_attribute("Newark", "population", "277140").unwrap();
        b.add_attribute("Paris", "population", "2220445").unwrap();
        b.add_attribute("Saint John", "population", "70063")
            .unwrap();
        b.finish()
    }

    fn names(db: &GraphDb, v: &dualsim_bitmatrix::BitVec) -> Vec<String> {
        v.iter_ones()
            .map(|i| db.node_name(i as u32).to_owned())
            .collect()
    }

    /// Dual simulation (2) of the paper: solving (X1) against Fig. 1(a)
    /// keeps exactly the two bold subgraphs.
    #[test]
    fn x1_against_fig1_reproduces_simulation_2() {
        let db = fig1_db();
        let q = parse("{ ?director directed ?movie . ?director worked_with ?coworker }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        assert!(!sol.is_certainly_empty());
        let mut directors = names(&db, &sol.var_solution(soi, "director"));
        directors.sort();
        assert_eq!(directors, vec!["B. De Palma", "G. Hamilton"]);
        let mut movies = names(&db, &sol.var_solution(soi, "movie"));
        movies.sort();
        assert_eq!(movies, vec!["Goldfinger", "Mission: Impossible"]);
        let mut coworkers = names(&db, &sol.var_solution(soi, "coworker"));
        coworkers.sort();
        assert_eq!(coworkers, vec!["D. Koepp", "H. Saltzman"]);
    }

    /// The Fig. 4 example (adapted from Ma et al.): the largest dual
    /// simulation of P = {(v,knows,w),(w,knows,v)} in K contains p4 for v
    /// even though p4 belongs to no homomorphic match.
    #[test]
    fn fig4_p4_is_not_discriminated() {
        let mut b = GraphDbBuilder::new();
        b.add_triple("p1", "knows", "p2").unwrap();
        b.add_triple("p2", "knows", "p1").unwrap();
        b.add_triple("p3", "knows", "p2").unwrap();
        b.add_triple("p2", "knows", "p3").unwrap();
        b.add_triple("p3", "knows", "p4").unwrap();
        b.add_triple("p4", "knows", "p1").unwrap();
        let db = b.finish();
        let q = parse("{ ?v knows ?w . ?w knows ?v }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        let v = sol.var_solution(soi, "v");
        assert!(v.get(db.node_id("p4").unwrap() as usize));
        assert_eq!(v.count_ones(), 4, "all four nodes dual-simulate v");
    }

    #[test]
    fn unsatisfiable_query_empties_everything_with_early_exit() {
        let db = fig1_db();
        // `awarded` sources are movies; movies are never born anywhere.
        let q = parse("{ ?m awarded ?a . ?m born_in ?p }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        assert!(sol.is_certainly_empty());
        assert!(sol.chi.iter().all(|c| c.none_set()));
    }

    #[test]
    fn disconnected_components_survive_without_early_exit() {
        let db = fig1_db();
        let q = parse("{ ?m awarded ?a . ?m born_in ?p . ?x genre ?g }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let cfg = SolverConfig {
            early_exit: false,
            ..SolverConfig::default()
        };
        let sol = solve(&db, soi, &cfg);
        assert!(sol.stats.emptied_mandatory);
        // The satisfiable genre-component keeps its candidates in the
        // largest solution even though the query as a whole has no match.
        assert!(sol.var_solution(soi, "x").any_set());
        assert!(sol.var_solution(soi, "m").none_set());
    }

    #[test]
    fn unknown_predicate_empties_incident_variables() {
        let db = fig1_db();
        let q = parse("{ ?x no_such_predicate ?y }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        assert!(sol.is_certainly_empty());
    }

    #[test]
    fn constants_restrict_solutions() {
        let db = fig1_db();
        let q = parse("{ ?d directed <Mission: Impossible> }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        assert_eq!(names(&db, &sol.var_solution(soi, "d")), vec!["B. De Palma"]);
    }

    #[test]
    fn all_strategies_agree() {
        let db = fig1_db();
        let queries = [
            "{ ?d directed ?m . ?d worked_with ?c }",
            "{ ?d directed ?m . ?m awarded ?prize . ?d born_in ?city }",
            "{ ?a directed ?m . ?m sequel_of ?m2 . ?b directed ?m2 }",
        ];
        for text in queries {
            let q = parse(text).unwrap();
            let soi = &build_sois(&db, &q)[0];
            let mut solutions = Vec::new();
            for strategy in [
                EvalStrategy::RowWise,
                EvalStrategy::ColumnWise,
                EvalStrategy::Adaptive,
            ] {
                for ordering in [IneqOrdering::QueryOrder, IneqOrdering::SparsityFirst] {
                    for init in [InitMode::AllOnes, InitMode::Summaries] {
                        for fixpoint in [FixpointMode::Reevaluate, FixpointMode::DeltaCounting] {
                            let cfg = SolverConfig {
                                strategy,
                                ordering,
                                init,
                                fixpoint,
                                early_exit: false,
                                ..SolverConfig::default()
                            };
                            solutions.push(solve(&db, soi, &cfg).chi);
                        }
                    }
                }
            }
            for s in &solutions[1..] {
                assert_eq!(s, &solutions[0], "strategies disagree on {text}");
            }
        }
    }

    #[test]
    fn summary_init_starts_tighter_than_all_ones() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m . ?d worked_with ?c }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let ones = solve(
            &db,
            soi,
            &SolverConfig {
                init: InitMode::AllOnes,
                ..SolverConfig::default()
            },
        );
        let summ = solve(&db, soi, &SolverConfig::default());
        assert!(summ.stats.initial_candidates < ones.stats.initial_candidates);
        assert_eq!(summ.stats.final_candidates, ones.stats.final_candidates);
    }

    #[test]
    fn optional_subset_inequality_is_enforced() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m OPTIONAL { ?d worked_with ?c } }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        // The mandatory director solution contains T. Young (directed),
        // and the optional surrogate is a subset of it.
        let d = soi.vars_for("d")[0];
        let surrogate = (0..soi.vars.len())
            .find(|&i| i != d && soi.vars[i].origin.as_deref() == Some("d"))
            .expect("renamed optional occurrence of d");
        assert!(sol.chi[surrogate].is_subset_of(&sol.chi[d]));
        assert!(sol.var_solution(soi, "d").count_ones() >= 4);
    }

    #[test]
    fn stats_reflect_the_chosen_strategy() {
        let db = fig1_db();
        let q = parse("{ ?d directed ?m . ?d worked_with ?c }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let row = solve(
            &db,
            soi,
            &SolverConfig {
                strategy: EvalStrategy::RowWise,
                ..SolverConfig::default()
            },
        );
        assert!(row.stats.rowwise > 0);
        assert_eq!(row.stats.colwise, 0);
        let col = solve(
            &db,
            soi,
            &SolverConfig {
                strategy: EvalStrategy::ColumnWise,
                ..SolverConfig::default()
            },
        );
        assert!(col.stats.colwise > 0);
        assert_eq!(col.stats.rowwise, 0);
        // Evaluations cover at least every inequality once; updates never
        // exceed evaluations; the fixpoint shrinks or keeps candidates.
        for sol in [&row, &col] {
            assert!(sol.stats.evaluations >= soi.ineqs.len());
            assert!(sol.stats.updates <= sol.stats.evaluations);
            assert!(sol.stats.final_candidates <= sol.stats.initial_candidates);
            assert!(sol.stats.iterations >= 1);
        }
    }

    #[test]
    fn colwise_handles_self_loop_patterns() {
        // Regression: the column-wise path on (v, a, v) needs a snapshot
        // instead of an aliased split borrow.
        let mut b = GraphDbBuilder::new();
        b.add_triple("x", "p", "x").unwrap();
        b.add_triple("a", "p", "b").unwrap();
        let db = b.finish();
        let q = parse("{ ?v p ?v }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(
            &db,
            soi,
            &SolverConfig {
                strategy: EvalStrategy::ColumnWise,
                early_exit: false,
                ..SolverConfig::default()
            },
        );
        let v = soi.vars_for("v")[0];
        assert_eq!(sol.chi[v].to_indices(), vec![db.node_id("x").unwrap()]);
    }

    #[test]
    fn empty_bgp_solves_trivially() {
        let db = fig1_db();
        let q = parse("{ }").unwrap();
        let soi = &build_sois(&db, &q)[0];
        let sol = solve(&db, soi, &SolverConfig::default());
        assert!(sol.chi.is_empty());
        assert!(!sol.is_certainly_empty());
    }
}
