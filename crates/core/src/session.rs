//! Resident multi-query sessions: shared-batch maintenance with
//! per-query fault isolation, deterministic retry/backoff healing, and
//! stale-serving degradation.
//!
//! [`QuerySession`] is the server half of the resident-query direction:
//! a registry of N standing queries over **one** mutable [`GraphDb`].
//! Each registered query owns one [`IncrementalDualSim`] per union
//! branch; [`QuerySession::apply_batch`] validates and dedups a signed
//! triple batch **once**, then fans it out to every registered query,
//! collecting per-query match-set deltas (candidates gained/dropped).
//!
//! The robustness contract is the headline:
//!
//! * **Isolation** — every query's engines run inside their own update
//!   epochs with their own rollback journals, so a failure in one query
//!   (failpoint, drain-budget abort, I/O error, poisoned engine) rolls
//!   back and degrades **only that query**. All other queries commit
//!   the batch normally and stay bit-identical — χ *and* logical
//!   [`crate::SolveStats`] — to an uninterrupted run (proptest-gated).
//! * **Health ladder** — `Healthy → Degraded → Quarantined`
//!   ([`QueryHealth`]). A degraded query keeps serving its last
//!   committed match set, marked stale; missed batches accumulate in a
//!   bounded backlog.
//! * **Healing** — deterministic retry with attempt-count-driven
//!   backoff (no wall clocks anywhere in the logic): after a failure at
//!   session epoch `E`, attempt `a` becomes due at epoch
//!   `E + backoff_base · 2^(a-1)`. A due attempt replays the backlog
//!   through the ordinary maintenance paths (bit-identical to the
//!   uninterrupted run, because the rollback journal restored the
//!   pre-batch state exactly); after [`SessionOptions::max_retries`]
//!   failed replays — or when the backlog overflowed — the attempt
//!   escalates to a **cold rebuild** against the current graph. Only a
//!   rebuild that itself fails (durable state that cannot be recreated)
//!   quarantines the query; a quarantined query still serves its stale
//!   set and can be revived with an explicit [`QuerySession::heal`].
//! * **Durability composes per query** — with a
//!   [`SessionDurability`] root, every branch gets its own WAL/snapshot
//!   directory (`<root>/query-<name>/branch-<i>/`), and
//!   [`QuerySession::recover`] recovers every branch independently,
//!   quarantining unrecoverable queries instead of failing the session.

use crate::durability::DurabilityOptions;
use crate::errors::SessionError;
use crate::failpoints;
use crate::incremental::{in_vocabulary, IncrementalDualSim};
use crate::{build_sois, MaintainError, Soi, Solution, SolveStats, SolverConfig};
use dualsim_graph::{GraphDb, Triple};
use dualsim_query::parse;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

/// Per-query durability policy of a session (the per-branch
/// [`DurabilityOptions`] are derived from this root).
#[derive(Debug, Clone)]
pub struct SessionDurability {
    /// Root directory; each query gets `<root>/query-<name>/branch-<i>`.
    pub root: PathBuf,
    /// Automatic snapshot cadence per branch
    /// ([`DurabilityOptions::snapshot_every`]).
    pub snapshot_every: Option<u64>,
    /// Whether WAL appends and snapshots fsync.
    pub fsync: bool,
    /// Snapshot retention per branch
    /// ([`DurabilityOptions::keep_snapshots`]).
    pub keep_snapshots: usize,
}

impl SessionDurability {
    /// Durability under `root` with the library defaults (fsync on, no
    /// automatic snapshots, two retained snapshots).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SessionDurability {
            root: root.into(),
            snapshot_every: None,
            fsync: true,
            keep_snapshots: 2,
        }
    }

    fn branch_opts(&self, name: &str, branch: usize, meta: &str) -> DurabilityOptions {
        DurabilityOptions {
            dir: branch_dir(&query_dir(&self.root, name), branch),
            snapshot_every: self.snapshot_every,
            fsync: self.fsync,
            meta: meta.to_string(),
            keep_snapshots: self.keep_snapshots,
        }
    }
}

/// The durability directory of one registered query.
pub fn query_dir(root: &Path, name: &str) -> PathBuf {
    root.join(format!("query-{name}"))
}

/// The durability directory of one union branch of a query.
pub fn branch_dir(query_dir: &Path, branch: usize) -> PathBuf {
    query_dir.join(format!("branch-{branch}"))
}

/// Session policy knobs. All healing is attempt-count-driven: the only
/// "clock" is the session epoch counter, so every run is deterministic.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Backlog-replay attempts before a due heal escalates to a cold
    /// rebuild (0 = rebuild on the first due attempt).
    pub max_retries: u32,
    /// Base of the exponential backoff, in session epochs: failed
    /// attempt `a` schedules the next one `backoff_base · 2^(a-1)`
    /// epochs later (minimum 1).
    pub backoff_base: u64,
    /// Missed batches a degraded query may accumulate for replay
    /// healing; past this the backlog is dropped and the next due
    /// attempt goes straight to a cold rebuild.
    pub max_backlog: usize,
    /// `false` sends a failed query straight to `Quarantined` (serving
    /// stale until an explicit [`QuerySession::heal`]) instead of the
    /// degrade/retry ladder.
    pub auto_heal: bool,
    /// Per-query durability; `None` keeps the session memory-only.
    pub durability: Option<SessionDurability>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_retries: 2,
            backoff_base: 1,
            max_backlog: 32,
            auto_heal: true,
            durability: None,
        }
    }
}

/// Where a registered query sits on the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryHealth {
    /// Tracking the session graph; its match set is current.
    Healthy,
    /// A batch failed: the query serves its last committed match set
    /// (stale), missed batches accumulate in the backlog, and healing
    /// retries are scheduled by attempt-count backoff.
    Degraded {
        /// The last session epoch this query's match set fully reflects.
        stale_since_epoch: u64,
        /// Failed healing attempts so far.
        attempts: u32,
        /// The session epoch at which the next healing attempt is due.
        next_attempt_epoch: u64,
    },
    /// Healing gave up (a cold rebuild itself failed) or recovery could
    /// not reconstruct the query. Serves its stale set — possibly a
    /// subset of branches, possibly nothing — until an explicit
    /// [`QuerySession::heal`] succeeds.
    Quarantined {
        /// The last session epoch this query's match set fully reflects.
        stale_since_epoch: u64,
        /// Why the query was quarantined.
        detail: String,
    },
}

impl QueryHealth {
    /// `true` iff the query's served match set tracks the session graph.
    pub fn is_healthy(&self) -> bool {
        matches!(self, QueryHealth::Healthy)
    }
}

impl std::fmt::Display for QueryHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryHealth::Healthy => write!(f, "healthy"),
            QueryHealth::Degraded {
                stale_since_epoch,
                attempts,
                next_attempt_epoch,
            } => write!(
                f,
                "degraded (serving epoch {stale_since_epoch} stale, {attempts} failed \
                 attempt(s), next attempt at epoch {next_attempt_epoch})"
            ),
            QueryHealth::Quarantined {
                stale_since_epoch,
                detail,
            } => write!(
                f,
                "quarantined (serving epoch {stale_since_epoch} stale: {detail})"
            ),
        }
    }
}

/// How one query fared in one shared batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The batch applied; the match-set delta and whether every branch
    /// was served warm (incrementally).
    Committed {
        /// Candidates that entered the match set.
        gained: usize,
        /// Candidates that left the match set.
        dropped: usize,
        /// `true` iff every branch served the batch incrementally.
        warm: bool,
    },
    /// The query failed this batch and was degraded (or quarantined);
    /// its engines were rolled back to the pre-batch state, which it
    /// keeps serving as stale.
    Failed {
        /// The per-query maintenance error.
        error: MaintainError,
        /// The health the failure left the query in.
        health: QueryHealth,
    },
    /// The query was already degraded/quarantined and no healing
    /// attempt was due: the batch went to its backlog (or was dropped
    /// past the backlog bound) and it keeps serving stale.
    Stale {
        /// The query's (unchanged) health.
        health: QueryHealth,
    },
    /// A due healing attempt succeeded: the query is `Healthy` again
    /// and current through this batch. The delta is measured against
    /// the stale set it served before healing.
    Healed {
        /// Which escalation rung healed it.
        via: HealPath,
        /// Candidates gained relative to the stale served set.
        gained: usize,
        /// Candidates dropped relative to the stale served set.
        dropped: usize,
    },
}

/// Which rung of the healing escalation succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealPath {
    /// The missed-batch backlog replayed through the ordinary
    /// maintenance paths (bit-identical to the uninterrupted run).
    Replay,
    /// Fresh engines were cold-built against the current graph.
    Rebuild,
}

/// What one [`QuerySession::apply_batch`] call did.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The session epoch this batch committed as.
    pub epoch: u64,
    /// `true` for an insertion batch, `false` for a deletion batch.
    pub insert: bool,
    /// Triples actually applied after dedup and no-op filtering.
    pub applied: usize,
    /// Duplicate triples dropped by the shared dedup.
    pub deduped: usize,
    /// No-op triples dropped (inserts of present / deletes of absent).
    pub noops: usize,
    /// Per-query outcome, in registry (name) order.
    pub outcomes: BTreeMap<String, QueryOutcome>,
}

/// Cumulative session-level counters (engine-level work lives in each
/// branch's [`SolveStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batches committed by [`QuerySession::apply_batch`].
    pub batches: usize,
    /// Triples validated by the shared vocabulary check (once per
    /// batch, not once per query — the amortization the session buys).
    pub triples_validated: usize,
    /// Duplicates dropped by the shared dedup.
    pub duplicates_dropped: usize,
    /// No-op triples dropped by the shared filter.
    pub noops_dropped: usize,
    /// Per-branch engine applications fanned out (commits and the
    /// replay applications of healing).
    pub fanout_applications: usize,
    /// Per-query batch failures (each one degraded or quarantined a
    /// query).
    pub failures: usize,
    /// Backlog-replay healing attempts that failed and re-scheduled.
    pub failed_retries: usize,
    /// Queries healed by backlog replay.
    pub replay_heals: usize,
    /// Queries healed by cold rebuild.
    pub rebuild_heals: usize,
    /// Transitions into `Quarantined`.
    pub quarantines: usize,
}

/// One registered standing query: its per-branch engines plus the
/// healing state machine around them.
#[derive(Debug)]
struct RegisteredQuery {
    /// The query text (also each branch's durability metadata) —
    /// rebuilds re-derive the SOIs from it.
    text: String,
    config: SolverConfig,
    /// One engine per union branch. Normally `build_sois(text).len()`
    /// long; a quarantined query recovered from partial durable state
    /// may hold fewer (heal rebuilds the full set from `text`).
    branches: Vec<IncrementalDualSim>,
    health: QueryHealth,
    /// Triple set of the graph this query last fully reflected; the
    /// replay base for healing. `None` forces the next due heal to a
    /// cold rebuild.
    base: Option<BTreeSet<Triple>>,
    /// Missed effective batches since degradation, oldest first.
    backlog: VecDeque<(bool, Vec<Triple>)>,
}

impl RegisteredQuery {
    /// Total candidates over every branch's current χ — the served
    /// match-set size.
    fn candidates(&self) -> usize {
        self.branches
            .iter()
            .map(|b| b.solution().chi.iter().map(|v| v.count_ones()).sum::<usize>())
            .sum()
    }
}

/// How one query came out of [`QuerySession::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRecovery {
    /// Every branch recovered and agrees with the session graph; the
    /// query serves current results.
    Recovered {
        /// Sum of WAL records replayed across branches.
        records_replayed: usize,
        /// Sum of snapshots skipped (corrupt, fell back) across branches.
        snapshots_skipped: usize,
    },
    /// Every branch recovered but the query's graph lags the session's
    /// (e.g. the crash hit mid-fan-out): registered `Degraded`, serving
    /// its recovered state as stale; the next batch (or an explicit
    /// heal) cold-rebuilds it against the session graph.
    Stale,
    /// One or more branches were unrecoverable: registered
    /// `Quarantined`, serving whatever branches did recover (possibly
    /// none) as stale until an explicit heal rebuilds from the query
    /// text.
    Quarantined {
        /// The first unrecoverable branch's error.
        detail: String,
    },
}

/// The result of [`QuerySession::recover`]: the serving session plus a
/// per-query account of how recovery went.
#[derive(Debug)]
pub struct SessionRecovery {
    /// The recovered session, serving immediately.
    pub session: QuerySession,
    /// Per-query recovery outcome, in registry order.
    pub reports: BTreeMap<String, QueryRecovery>,
}

/// A registry of standing queries maintained against one shared mutable
/// graph — see the module docs for the full contract.
#[derive(Debug)]
pub struct QuerySession {
    db: GraphDb,
    /// The current triple set (the session's own dedup/no-op filter and
    /// the healing replay bases are set operations over it).
    present: BTreeSet<Triple>,
    queries: BTreeMap<String, RegisteredQuery>,
    /// Committed shared batches.
    epoch: u64,
    opts: SessionOptions,
    stats: SessionStats,
}

impl QuerySession {
    /// Opens a session over `db` with no registered queries.
    pub fn new(db: GraphDb, opts: SessionOptions) -> Self {
        let present = db.triples().collect();
        QuerySession {
            db,
            present,
            queries: BTreeMap::new(),
            epoch: 0,
            opts,
            stats: SessionStats::default(),
        }
    }

    /// Registers a standing query under `name`: parses `text`, builds
    /// its union-branch SOIs against the current graph, cold-solves
    /// each branch (durably, when the session has a durability root —
    /// any previous durable state under the query's directory is
    /// discarded), and starts maintaining it from the current epoch.
    /// Returns the number of union branches.
    ///
    /// # Errors
    ///
    /// [`SessionError::DuplicateQuery`], [`SessionError::InvalidName`],
    /// [`SessionError::Parse`], or [`SessionError::Query`] if durable
    /// initial state cannot be written.
    pub fn register(
        &mut self,
        name: &str,
        text: &str,
        config: SolverConfig,
    ) -> Result<usize, SessionError> {
        if self.queries.contains_key(name) {
            return Err(SessionError::DuplicateQuery { name: name.into() });
        }
        validate_name(name)?;
        let branches = build_branches(&self.db, name, text, &config, self.opts.durability.as_ref())?;
        let n = branches.len();
        self.queries.insert(
            name.to_string(),
            RegisteredQuery {
                text: text.to_string(),
                config,
                branches,
                health: QueryHealth::Healthy,
                base: None,
                backlog: VecDeque::new(),
            },
        );
        Ok(n)
    }

    /// Removes a standing query from the registry. Durable state on
    /// disk is left in place (recovery will report it; re-registering
    /// the name discards it).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn deregister(&mut self, name: &str) -> Result<(), SessionError> {
        self.queries
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// Applies one signed batch to the whole registry: validates and
    /// dedups **once**, commits the session graph, and fans the
    /// effective batch out to every registered query in name order —
    /// healthy queries apply it under their own epoch/journal, degraded
    /// queries backlog it or run a due healing attempt, quarantined
    /// queries keep serving stale. Per-query failures never surface
    /// here: they degrade only the affected query and are reported in
    /// the returned [`BatchReport`].
    ///
    /// # Errors
    ///
    /// [`SessionError::Batch`] if a triple fails vocabulary validation
    /// — the whole batch is rejected and **no** query (and no session
    /// state) is touched.
    pub fn apply_batch(
        &mut self,
        insert: bool,
        triples: &[Triple],
    ) -> Result<BatchReport, SessionError> {
        // One shared validation + dedup + no-op filter for all queries.
        for t in triples {
            if !in_vocabulary(&self.db, t) {
                return Err(SessionError::Batch {
                    error: MaintainError::OutOfVocabulary { triple: *t },
                });
            }
        }
        self.stats.triples_validated += triples.len();
        let mut seen = BTreeSet::new();
        let mut batch = Vec::with_capacity(triples.len());
        let mut noops = 0usize;
        for t in triples {
            if !seen.insert(*t) {
                continue;
            }
            if insert == self.present.contains(t) {
                noops += 1;
                continue;
            }
            batch.push(*t);
        }
        let deduped = triples.len() - seen.len();
        self.stats.duplicates_dropped += deduped;
        self.stats.noops_dropped += noops;
        if batch.is_empty() {
            // Nothing effective: no epoch, no fan-out — every engine
            // sees exactly the same call sequence as a session fed
            // pre-filtered batches.
            return Ok(BatchReport {
                epoch: self.epoch,
                insert,
                applied: 0,
                deduped,
                noops,
                outcomes: BTreeMap::new(),
            });
        }

        let mut next_present = self.present.clone();
        for t in &batch {
            if insert {
                next_present.insert(*t);
            } else {
                next_present.remove(t);
            }
        }
        let next_triples: Vec<Triple> = next_present.iter().copied().collect();
        let db_after = self.db.with_triples(&next_triples).map_err(|e| {
            SessionError::Batch {
                error: MaintainError::Corrupt {
                    detail: format!("validated batch failed graph rebuild: {e}"),
                },
            }
        })?;
        let target_epoch = self.epoch + 1;

        let mut outcomes = BTreeMap::new();
        for (name, q) in self.queries.iter_mut() {
            let outcome = match &q.health {
                QueryHealth::Healthy => fan_healthy(
                    q,
                    &self.present,
                    &self.db,
                    &db_after,
                    insert,
                    &batch,
                    target_epoch,
                    &self.opts,
                    &mut self.stats,
                ),
                QueryHealth::Degraded {
                    next_attempt_epoch, ..
                } if target_epoch >= *next_attempt_epoch => heal_due(
                    q,
                    name,
                    &db_after,
                    insert,
                    &batch,
                    target_epoch,
                    &self.opts,
                    &mut self.stats,
                ),
                QueryHealth::Degraded { .. } => {
                    push_backlog(q, insert, &batch, self.opts.max_backlog);
                    QueryOutcome::Stale {
                        health: q.health.clone(),
                    }
                }
                QueryHealth::Quarantined { .. } => QueryOutcome::Stale {
                    health: q.health.clone(),
                },
            };
            outcomes.insert(name.clone(), outcome);
        }

        self.db = db_after;
        self.present = next_present;
        self.epoch = target_epoch;
        self.stats.batches += 1;
        Ok(BatchReport {
            epoch: target_epoch,
            insert,
            applied: batch.len(),
            deduped,
            noops,
            outcomes,
        })
    }

    /// Forces a healing attempt for one query, out of band: a degraded
    /// query with a replay base replays its backlog; otherwise (or on a
    /// quarantined query) its engines are cold-rebuilt from the query
    /// text against the current graph. On success the query is
    /// `Healthy` and current.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`]; [`SessionError::Query`] if the
    /// attempt failed (the query keeps its previous health and stale
    /// serving).
    pub fn heal(&mut self, name: &str) -> Result<(), SessionError> {
        let q = self
            .queries
            .get_mut(name)
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })?;
        if q.health.is_healthy() {
            return Ok(());
        }
        if q.base.is_some() {
            if replay_backlog(q, &self.db, &mut self.stats) {
                q.health = QueryHealth::Healthy;
                q.base = None;
                self.stats.replay_heals += 1;
                return Ok(());
            }
            self.stats.failed_retries += 1;
        }
        match rebuild(q, name, &self.db, &self.opts) {
            Ok(()) => {
                self.stats.rebuild_heals += 1;
                Ok(())
            }
            Err(error) => {
                quarantine(q, &mut self.stats, error.to_string());
                Err(SessionError::Query {
                    name: name.into(),
                    error,
                })
            }
        }
    }

    /// Recovers a durable session from its root directory: every
    /// `query-<name>/branch-<i>` directory is recovered independently
    /// through [`IncrementalDualSim::recover`]. The first fully
    /// recovered query (in name order — the fan-out order, so it is
    /// the furthest-committed one after a mid-fan-out crash) defines
    /// the session graph; queries lagging it come back `Degraded`
    /// (stale-serving, healed by rebuild on the next batch), and
    /// queries with unrecoverable branches come back `Quarantined`
    /// instead of failing the session.
    ///
    /// # Errors
    ///
    /// [`SessionError::Recovery`] if `opts` has no durability root, the
    /// root has no query directories, or no query recovers fully (there
    /// is then no graph to serve against).
    pub fn recover(opts: SessionOptions) -> Result<SessionRecovery, SessionError> {
        let sd = opts
            .durability
            .clone()
            .ok_or_else(|| SessionError::Recovery {
                detail: "session options carry no durability root".into(),
            })?;
        let names = scan_query_dirs(&sd.root)?;
        if names.is_empty() {
            return Err(SessionError::Recovery {
                detail: format!("{}: no query-* directories", sd.root.display()),
            });
        }

        struct BranchSet {
            sims: Vec<IncrementalDualSim>,
            db: Option<GraphDb>,
            text: String,
            records_replayed: usize,
            snapshots_skipped: usize,
            failure: Option<String>,
            complete: bool,
        }
        let mut recovered: BTreeMap<String, BranchSet> = BTreeMap::new();
        for name in &names {
            let dir = query_dir(&sd.root, name);
            let (branch_count, scan_failure) = match scan_branch_dirs(&dir) {
                Ok(0) => (0, Some(format!("{}: no branch-* directories", dir.display()))),
                Ok(n) => (n, None),
                Err(e) => (0, Some(e.to_string())),
            };
            let mut set = BranchSet {
                sims: Vec::new(),
                db: None,
                text: String::new(),
                records_replayed: 0,
                snapshots_skipped: 0,
                failure: scan_failure,
                complete: branch_count > 0,
            };
            for i in 0..branch_count {
                let bopts = sd.branch_opts(name, i, "");
                match IncrementalDualSim::recover(&bopts) {
                    Ok(rec) => {
                        // Branches of one query must agree on the graph
                        // they reflect (their epochs may differ — undo
                        // histories are per branch).
                        if let Some(db) = &set.db {
                            if !same_triples(db, &rec.db) {
                                set.complete = false;
                                set.failure.get_or_insert(format!(
                                    "branch {i} disagrees with branch 0 on the recovered graph"
                                ));
                            }
                        } else {
                            set.db = Some(rec.db);
                        }
                        set.text = rec.meta;
                        set.records_replayed += rec.report.records_replayed;
                        set.snapshots_skipped += rec.report.snapshots_skipped;
                        set.sims.push(rec.sim);
                    }
                    Err(e) => {
                        set.complete = false;
                        set.failure.get_or_insert(format!("branch {i}: {e}"));
                    }
                }
            }
            recovered.insert(name.clone(), set);
        }

        // The session graph: from the first fully recovered query in
        // name order (= fan-out order).
        let canonical = recovered
            .values()
            .find(|s| s.complete && s.db.is_some())
            .and_then(|s| s.db.clone())
            .ok_or_else(|| SessionError::Recovery {
                detail: format!("{}: no query recovered fully", sd.root.display()),
            })?;

        let mut session = QuerySession::new(canonical, opts);
        let mut reports = BTreeMap::new();
        for (name, set) in recovered {
            let config = set
                .sims
                .first()
                .map(|s| s.config().clone())
                .unwrap_or_default();
            let (health, report) = if !set.complete {
                let detail = set
                    .failure
                    .unwrap_or_else(|| "unrecoverable branch".into());
                (
                    QueryHealth::Quarantined {
                        stale_since_epoch: 0,
                        detail: detail.clone(),
                    },
                    QueryRecovery::Quarantined { detail },
                )
            } else if set
                .db
                .as_ref()
                .is_some_and(|db| same_triples(db, &session.db))
            {
                (
                    QueryHealth::Healthy,
                    QueryRecovery::Recovered {
                        records_replayed: set.records_replayed,
                        snapshots_skipped: set.snapshots_skipped,
                    },
                )
            } else {
                // Recovered, but against an older graph than the
                // session's: serve stale, rebuild on the next batch.
                (
                    QueryHealth::Degraded {
                        stale_since_epoch: 0,
                        attempts: u32::MAX,
                        next_attempt_epoch: 0,
                    },
                    QueryRecovery::Stale,
                )
            };
            if matches!(report, QueryRecovery::Quarantined { .. }) {
                session.stats.quarantines += 1;
            }
            session.queries.insert(
                name.clone(),
                RegisteredQuery {
                    text: set.text,
                    config,
                    branches: set.sims,
                    health,
                    base: None,
                    backlog: VecDeque::new(),
                },
            );
            reports.insert(name, report);
        }
        Ok(SessionRecovery { session, reports })
    }

    /// The registered query names, in registry (fan-out) order.
    pub fn query_names(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    /// The number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` iff no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The committed shared-batch count.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current session graph.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// Cumulative session-level counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// One query's health.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn health(&self, name: &str) -> Result<&QueryHealth, SessionError> {
        self.queries
            .get(name)
            .map(|q| &q.health)
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// `true` iff the query's served match set does *not* track the
    /// session graph (degraded or quarantined).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn is_stale(&self, name: &str) -> Result<bool, SessionError> {
        self.health(name).map(|h| !h.is_healthy())
    }

    /// One query's registered text.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn query_text(&self, name: &str) -> Result<&str, SessionError> {
        self.queries
            .get(name)
            .map(|q| q.text.as_str())
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// The per-union-branch solutions a query currently serves (the
    /// last committed ones — stale iff [`Self::is_stale`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn solutions(&self, name: &str) -> Result<Vec<&Solution>, SessionError> {
        self.queries
            .get(name)
            .map(|q| q.branches.iter().map(IncrementalDualSim::solution).collect())
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// The per-union-branch SOIs of a query (parallel to
    /// [`Self::solutions`] — a quarantined query recovered from partial
    /// durable state may expose fewer branches than its text implies).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn sois(&self, name: &str) -> Result<Vec<&Soi>, SessionError> {
        self.queries
            .get(name)
            .map(|q| q.branches.iter().map(IncrementalDualSim::soi).collect())
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// Total candidates across every branch χ of a query — the size of
    /// its served match set.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn candidates(&self, name: &str) -> Result<usize, SessionError> {
        self.queries
            .get(name)
            .map(RegisteredQuery::candidates)
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }

    /// The per-branch maintenance statistics of a query (see
    /// [`IncrementalDualSim::maintenance_stats`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownQuery`].
    pub fn maintenance_stats(&self, name: &str) -> Result<Vec<&SolveStats>, SessionError> {
        self.queries
            .get(name)
            .map(|q| {
                q.branches
                    .iter()
                    .map(IncrementalDualSim::maintenance_stats)
                    .collect()
            })
            .ok_or_else(|| SessionError::UnknownQuery { name: name.into() })
    }
}

/// Deterministic exponential backoff: epochs until attempt `attempt`
/// (1-based) is due, `backoff_base · 2^(attempt-1)`, saturating.
fn backoff(base: u64, attempt: u32) -> u64 {
    base.max(1)
        .saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX))
}

/// `[A-Za-z0-9._-]+` — names double as durability path components.
fn validate_name(name: &str) -> Result<(), SessionError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(SessionError::InvalidName { name: name.into() })
    }
}

/// Parses a query and cold-builds one engine per union branch
/// (durably when the session is durable).
fn build_branches(
    db: &GraphDb,
    name: &str,
    text: &str,
    config: &SolverConfig,
    durability: Option<&SessionDurability>,
) -> Result<Vec<IncrementalDualSim>, SessionError> {
    let query = parse(text).map_err(|e| SessionError::Parse {
        name: name.into(),
        message: e.to_string(),
    })?;
    let sois = build_sois(db, &query);
    if sois.is_empty() {
        return Err(SessionError::Parse {
            name: name.into(),
            message: "query yields no SOI branches".into(),
        });
    }
    let mut branches = Vec::with_capacity(sois.len());
    for (i, soi) in sois.into_iter().enumerate() {
        let sim = match durability {
            Some(sd) => {
                let bopts = sd.branch_opts(name, i, text);
                IncrementalDualSim::new_durable(db, soi, config.clone(), &bopts).map_err(
                    |error| SessionError::Query {
                        name: name.into(),
                        error,
                    },
                )?
            }
            None => IncrementalDualSim::new(db, soi, config.clone()),
        };
        branches.push(sim);
    }
    Ok(branches)
}

/// The isolation workhorse: applies one effective batch to every branch
/// of a query. If a branch fails *rolled back*, the branches that had
/// already committed this batch are undone with the inverse batch, so
/// the whole query lands back on its pre-batch state. A branch error
/// whose epoch still advanced (the documented post-commit snapshot
/// failure) counts as committed. Returns `Ok(warm)` or the error plus
/// whether the undo itself failed (leaving branches inconsistent — a
/// replay can no longer fix that query, only a rebuild can).
fn fan_branches(
    q: &mut RegisteredQuery,
    db_before: &GraphDb,
    db_after: &GraphDb,
    insert: bool,
    batch: &[Triple],
    stats: &mut SessionStats,
) -> Result<bool, (MaintainError, bool)> {
    let pre_epochs: Vec<u64> = q.branches.iter().map(IncrementalDualSim::epoch).collect();
    let mut warm = true;
    let mut failure: Option<MaintainError> = None;
    for (b, pre) in q.branches.iter_mut().zip(&pre_epochs) {
        stats.fanout_applications += 1;
        let res = if insert {
            b.apply_insertions(db_after, batch).map(|_| ())
        } else {
            b.apply_deletions(db_after, batch).map(|_| ())
        };
        match res {
            Ok(()) => warm &= b.last_update_was_warm(),
            Err(e) if b.epoch() > *pre => {
                // Committed; only the post-commit snapshot failed. The
                // branch state is the post-batch one and durable.
                warm &= b.last_update_was_warm();
                let _ = e;
            }
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    let Some(error) = failure else {
        return Ok(warm);
    };
    // Undo the sibling branches that already committed this batch, so
    // every branch of the query serves the same (pre-batch) state.
    let mut undo_failed = false;
    for (b, pre) in q.branches.iter_mut().zip(&pre_epochs) {
        if b.epoch() <= *pre {
            continue;
        }
        stats.fanout_applications += 1;
        let undo_pre = b.epoch();
        let res = if insert {
            b.apply_deletions(db_before, batch).map(|_| ())
        } else {
            b.apply_insertions(db_before, batch).map(|_| ())
        };
        match res {
            Ok(()) => {}
            Err(_) if b.epoch() > undo_pre => {} // committed, snapshot-only failure
            Err(_) => undo_failed = true,
        }
    }
    Err((error, undo_failed))
}

/// A healthy query's share of the fan-out: the session failpoint, then
/// the batch through every branch, with the health transition on
/// failure. `pre_present` is the session's pre-batch triple set — the
/// graph a cleanly rolled-back query still reflects, and therefore the
/// replay base should the batch fail.
#[allow(clippy::too_many_arguments)]
fn fan_healthy(
    q: &mut RegisteredQuery,
    pre_present: &BTreeSet<Triple>,
    db_before: &GraphDb,
    db_after: &GraphDb,
    insert: bool,
    batch: &[Triple],
    target_epoch: u64,
    opts: &SessionOptions,
    stats: &mut SessionStats,
) -> QueryOutcome {
    let pre = q.candidates();
    // The session-layer kill site: fires before any engine is touched,
    // so the query degrades without even a rollback.
    let fanned = failpoints::check("session-fanout")
        .map_err(|e| (e, false))
        .and_then(|()| fan_branches(q, db_before, db_after, insert, batch, stats));
    match fanned {
        Ok(warm) => {
            let post = q.candidates();
            QueryOutcome::Committed {
                gained: post.saturating_sub(pre),
                dropped: pre.saturating_sub(post),
                warm,
            }
        }
        Err((error, undo_failed)) => {
            stats.failures += 1;
            degrade(
                q,
                pre_present,
                insert,
                batch,
                target_epoch,
                undo_failed,
                opts,
                stats,
                &error,
            );
            QueryOutcome::Failed {
                error,
                health: q.health.clone(),
            }
        }
    }
}

/// The `Healthy → Degraded` (or `→ Quarantined`) transition after a
/// failed batch at `target_epoch`.
#[allow(clippy::too_many_arguments)]
fn degrade(
    q: &mut RegisteredQuery,
    pre_present: &BTreeSet<Triple>,
    insert: bool,
    batch: &[Triple],
    target_epoch: u64,
    undo_failed: bool,
    opts: &SessionOptions,
    stats: &mut SessionStats,
    error: &MaintainError,
) {
    let stale_since = target_epoch - 1;
    if !opts.auto_heal {
        quarantine_at(q, stats, stale_since, error.to_string());
        return;
    }
    // The replay base is the graph the query still reflects (pre-batch);
    // an inconsistent undo forfeits replay — only a rebuild can heal.
    if undo_failed {
        q.base = None;
        q.backlog.clear();
    } else {
        q.base = Some(pre_present.clone());
        q.backlog.clear();
        q.backlog.push_back((insert, batch.to_vec()));
    }
    q.health = QueryHealth::Degraded {
        stale_since_epoch: stale_since,
        attempts: 0,
        next_attempt_epoch: target_epoch + backoff(opts.backoff_base, 1),
    };
}

/// Appends a missed batch to a degraded query's backlog; past the bound
/// the backlog (and replay base) are dropped — the next due heal goes
/// straight to a rebuild.
fn push_backlog(q: &mut RegisteredQuery, insert: bool, batch: &[Triple], max_backlog: usize) {
    if q.base.is_none() {
        return;
    }
    q.backlog.push_back((insert, batch.to_vec()));
    if q.backlog.len() > max_backlog.max(1) {
        q.base = None;
        q.backlog.clear();
    }
}

/// A due healing attempt during a batch: the current batch joins the
/// backlog, then the ladder runs — backlog replay while retry attempts
/// remain and the replay base is intact, cold rebuild once they are
/// exhausted (or the base was lost), quarantine only if the rebuild
/// itself fails.
#[allow(clippy::too_many_arguments)]
fn heal_due(
    q: &mut RegisteredQuery,
    name: &str,
    db_after: &GraphDb,
    insert: bool,
    batch: &[Triple],
    target_epoch: u64,
    opts: &SessionOptions,
    stats: &mut SessionStats,
) -> QueryOutcome {
    let QueryHealth::Degraded {
        stale_since_epoch,
        attempts,
        ..
    } = q.health.clone()
    else {
        return QueryOutcome::Stale {
            health: q.health.clone(),
        };
    };
    let pre = q.candidates();
    push_backlog(q, insert, batch, opts.max_backlog);
    let attempt = attempts.saturating_add(1);
    if attempt <= opts.max_retries && q.base.is_some() {
        if replay_backlog(q, db_after, stats) {
            q.health = QueryHealth::Healthy;
            q.base = None;
            stats.replay_heals += 1;
            let post = q.candidates();
            return QueryOutcome::Healed {
                via: HealPath::Replay,
                gained: post.saturating_sub(pre),
                dropped: pre.saturating_sub(post),
            };
        }
        stats.failed_retries += 1;
        if q.base.is_some() {
            // The replay rolled back cleanly: stay degraded, back off
            // further, and keep serving the stale set.
            q.health = QueryHealth::Degraded {
                stale_since_epoch,
                attempts: attempt,
                next_attempt_epoch: target_epoch
                    + backoff(opts.backoff_base, attempt.saturating_add(1)),
            };
            return QueryOutcome::Stale {
                health: q.health.clone(),
            };
        }
        // Inconsistent undo during the replay forfeited the base: fall
        // through to the rebuild rung immediately.
    }
    // Escalation: cold rebuild against the post-batch graph.
    match rebuild(q, name, db_after, opts) {
        Ok(()) => {
            stats.rebuild_heals += 1;
            let post = q.candidates();
            QueryOutcome::Healed {
                via: HealPath::Rebuild,
                gained: post.saturating_sub(pre),
                dropped: pre.saturating_sub(post),
            }
        }
        Err(error) => {
            quarantine_at(q, stats, stale_since_epoch, error.to_string());
            QueryOutcome::Failed {
                error,
                health: q.health.clone(),
            }
        }
    }
}

/// Replays a degraded query's backlog through the ordinary maintenance
/// paths, reconstructing each intermediate graph from the replay base —
/// so a successfully replayed query is bit-identical (χ *and* logical
/// stats) to one that never failed. Committed prefix batches are popped
/// as they land; returns `true` iff the backlog drained fully.
fn replay_backlog(q: &mut RegisteredQuery, vocab_db: &GraphDb, stats: &mut SessionStats) -> bool {
    let Some(mut cur) = q.base.clone() else {
        return q.backlog.is_empty();
    };
    let cur_vec: Vec<Triple> = cur.iter().copied().collect();
    let Ok(mut cur_db) = vocab_db.with_triples(&cur_vec) else {
        q.base = None;
        q.backlog.clear();
        return false;
    };
    while let Some((insert, batch)) = q.backlog.front().cloned() {
        let mut next = cur.clone();
        for t in &batch {
            if insert {
                next.insert(*t);
            } else {
                next.remove(t);
            }
        }
        let next_vec: Vec<Triple> = next.iter().copied().collect();
        let Ok(next_db) = vocab_db.with_triples(&next_vec) else {
            q.base = None;
            q.backlog.clear();
            return false;
        };
        match fan_branches(q, &cur_db, &next_db, insert, &batch, stats) {
            Ok(_) => {
                q.backlog.pop_front();
                cur = next;
                cur_db = next_db;
                q.base = Some(cur.clone());
            }
            Err((_, undo_failed)) => {
                if undo_failed {
                    q.base = None;
                    q.backlog.clear();
                }
                return false;
            }
        }
    }
    true
}

/// Cold-rebuilds every branch of a query from its registered text
/// against `db` (durably when the session is durable — the query's
/// branch directories restart from a fresh epoch-0 snapshot). The
/// per-branch engine counters restart with the engines; the session's
/// `rebuild_heals` counter records the event.
fn rebuild(
    q: &mut RegisteredQuery,
    name: &str,
    db: &GraphDb,
    opts: &SessionOptions,
) -> Result<(), MaintainError> {
    let branches = build_branches(db, name, &q.text, &q.config, opts.durability.as_ref())
        .map_err(|e| match e {
            SessionError::Query { error, .. } => error,
            other => MaintainError::Corrupt {
                detail: other.to_string(),
            },
        })?;
    q.branches = branches;
    q.health = QueryHealth::Healthy;
    q.base = None;
    q.backlog.clear();
    Ok(())
}

/// The transition into `Quarantined`.
fn quarantine(q: &mut RegisteredQuery, stats: &mut SessionStats, detail: String) {
    let stale_since = match &q.health {
        QueryHealth::Degraded {
            stale_since_epoch, ..
        }
        | QueryHealth::Quarantined {
            stale_since_epoch, ..
        } => *stale_since_epoch,
        QueryHealth::Healthy => 0,
    };
    quarantine_at(q, stats, stale_since, detail);
}

fn quarantine_at(
    q: &mut RegisteredQuery,
    stats: &mut SessionStats,
    stale_since_epoch: u64,
    detail: String,
) {
    if !matches!(q.health, QueryHealth::Quarantined { .. }) {
        stats.quarantines += 1;
    }
    q.health = QueryHealth::Quarantined {
        stale_since_epoch,
        detail,
    };
    q.base = None;
    q.backlog.clear();
}

/// `true` iff two databases (sharing a vocabulary lineage) hold the
/// same triple set.
fn same_triples(a: &GraphDb, b: &GraphDb) -> bool {
    a.num_triples() == b.num_triples()
        && a.num_nodes() == b.num_nodes()
        && a.num_labels() == b.num_labels()
        && a.triples().collect::<BTreeSet<_>>() == b.triples().collect::<BTreeSet<_>>()
}

/// The `query-<name>` directories under a session durability root, in
/// name order.
fn scan_query_dirs(root: &Path) -> Result<Vec<String>, SessionError> {
    let entries = std::fs::read_dir(root).map_err(|e| SessionError::Recovery {
        detail: format!("{}: {e}", root.display()),
    })?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| SessionError::Recovery {
            detail: format!("{}: {e}", root.display()),
        })?;
        let file_name = entry.file_name();
        let file_name = file_name.to_string_lossy();
        if let Some(name) = file_name.strip_prefix("query-") {
            if entry.path().is_dir() && validate_name(name).is_ok() {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// The number of contiguous `branch-<i>` directories under a query
/// directory (branch ids start at 0; a gap ends the count — the
/// missing branch will surface as unrecoverable).
fn scan_branch_dirs(dir: &Path) -> Result<usize, SessionError> {
    let entries = std::fs::read_dir(dir).map_err(|e| SessionError::Recovery {
        detail: format!("{}: {e}", dir.display()),
    })?;
    let mut ids = BTreeSet::new();
    for entry in entries {
        let entry = entry.map_err(|e| SessionError::Recovery {
            detail: format!("{}: {e}", dir.display()),
        })?;
        let file_name = entry.file_name();
        let file_name = file_name.to_string_lossy();
        if let Some(id) = file_name.strip_prefix("branch-") {
            if let Ok(id) = id.parse::<usize>() {
                if entry.path().is_dir() {
                    ids.insert(id);
                }
            }
        }
    }
    let mut count = 0;
    while ids.contains(&count) {
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::FixpointMode;
    use crate::{solve, SolverConfig};
    use dualsim_graph::GraphDbBuilder;

    const CHAIN: &str = "{ ?x p ?y . ?y q ?z }";
    const EDGE: &str = "{ ?x p ?y }";
    const UNION: &str = "{ { ?x p ?y } UNION { ?x q ?y } }";

    fn db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("b", "q", "c").unwrap();
        b.add_triple("d", "p", "e").unwrap();
        b.add_triple("e", "q", "f").unwrap();
        b.add_triple("g", "p", "h").unwrap();
        b.finish()
    }

    fn cfg() -> SolverConfig {
        SolverConfig {
            early_exit: false,
            fixpoint: FixpointMode::DeltaCounting,
            ..SolverConfig::default()
        }
    }

    fn t(db: &GraphDb, s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            db.node_id(s).unwrap(),
            db.label_id(p).unwrap(),
            db.node_id(o).unwrap(),
        )
    }

    fn tmpdir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dualsim-session-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The cold-solved candidate total of `text` on `db` — what a
    /// healthy registered query must serve.
    fn cold_candidates(db: &GraphDb, text: &str) -> usize {
        let q = parse(text).unwrap();
        build_sois(db, &q)
            .into_iter()
            .map(|soi| {
                solve(db, &soi, &cfg())
                    .chi
                    .iter()
                    .map(|v| v.count_ones())
                    .sum::<usize>()
            })
            .sum()
    }

    fn session(opts: SessionOptions) -> QuerySession {
        QuerySession::new(db(), opts)
    }

    #[test]
    fn registration_validates_names_texts_and_duplicates() {
        let mut s = session(SessionOptions::default());
        assert_eq!(s.register("chain", CHAIN, cfg()).unwrap(), 1);
        assert!(matches!(
            s.register("chain", EDGE, cfg()),
            Err(SessionError::DuplicateQuery { .. })
        ));
        assert!(matches!(
            s.register("bad name", EDGE, cfg()),
            Err(SessionError::InvalidName { .. })
        ));
        assert!(matches!(
            s.register("broken", "{ ?x p", cfg()),
            Err(SessionError::Parse { .. })
        ));
        assert_eq!(s.register("union", UNION, cfg()).unwrap(), 2, "one engine per branch");
        assert_eq!(s.query_names(), vec!["chain", "union"]);
        assert_eq!(s.query_text("chain").unwrap(), CHAIN);
        s.deregister("chain").unwrap();
        assert!(matches!(
            s.deregister("chain"),
            Err(SessionError::UnknownQuery { .. })
        ));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn one_shared_batch_fans_out_and_tracks_cold_solves() {
        let base = db();
        let mut s = session(SessionOptions::default());
        s.register("chain", CHAIN, cfg()).unwrap();
        s.register("union", UNION, cfg()).unwrap();
        for name in ["chain", "union"] {
            assert_eq!(
                s.candidates(name).unwrap(),
                cold_candidates(&base, s.query_text(name).unwrap()),
                "{name} serves its cold solve at registration"
            );
        }

        // One batch: a real deletion, a duplicate of it, and a no-op
        // (delete of an absent triple) — validated and filtered once.
        let del = t(&base, "b", "q", "c");
        let report = s
            .apply_batch(false, &[del, del, t(&base, "a", "p", "a")])
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.applied, 1);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.noops, 1);
        let after = base
            .with_triples(&base.triples().filter(|x| *x != del).collect::<Vec<_>>())
            .unwrap();
        for name in ["chain", "union"] {
            assert!(matches!(
                report.outcomes[name],
                QueryOutcome::Committed { .. }
            ));
            assert!(s.health(name).unwrap().is_healthy());
            assert_eq!(
                s.candidates(name).unwrap(),
                cold_candidates(&after, s.query_text(name).unwrap()),
                "{name} tracks the post-batch graph"
            );
        }
        match report.outcomes["chain"] {
            QueryOutcome::Committed { gained, dropped, .. } => {
                assert_eq!(gained, 0);
                assert!(dropped > 0, "the a→b→c chain lost its q edge");
            }
            ref other => panic!("chain: expected Committed, got {other:?}"),
        }

        // Re-inserting restores the original match sets.
        s.apply_batch(true, &[del]).unwrap();
        for name in ["chain", "union"] {
            assert_eq!(
                s.candidates(name).unwrap(),
                cold_candidates(&base, s.query_text(name).unwrap())
            );
        }

        // The shared pipeline validated each incoming triple once —
        // not once per query.
        assert_eq!(s.stats().triples_validated, 4);
        assert_eq!(s.stats().duplicates_dropped, 1);
        assert_eq!(s.stats().noops_dropped, 1);
        assert_eq!(s.stats().batches, 2);

        // A fully no-op batch commits nothing: no epoch, no fan-out.
        let fanouts = s.stats().fanout_applications;
        let r = s.apply_batch(true, &[del]).unwrap();
        assert_eq!(r.applied, 0);
        assert_eq!(r.epoch, 2, "epoch unchanged");
        assert_eq!(s.epoch(), 2);
        assert!(r.outcomes.is_empty());
        assert_eq!(s.stats().fanout_applications, fanouts);
    }

    #[test]
    fn out_of_vocabulary_batches_are_rejected_before_any_query_is_touched() {
        let base = db();
        let mut s = session(SessionOptions::default());
        s.register("chain", CHAIN, cfg()).unwrap();
        let bad = Triple::new(base.num_nodes() as u32, 0, 0);
        let err = s.apply_batch(true, &[t(&base, "a", "p", "a"), bad]);
        assert!(matches!(
            err,
            Err(SessionError::Batch {
                error: MaintainError::OutOfVocabulary { .. }
            })
        ));
        assert_eq!(s.epoch(), 0);
        assert!(s.health("chain").unwrap().is_healthy());
        assert_eq!(s.stats().fanout_applications, 0);
    }

    #[test]
    fn a_killed_query_degrades_alone_and_heals_by_replay() {
        failpoints::disarm_all();
        let base = db();
        let mut s = session(SessionOptions::default());
        let mut reference = session(SessionOptions::default());
        for sess in [&mut s, &mut reference] {
            sess.register("a-chain", CHAIN, cfg()).unwrap();
            sess.register("b-union", UNION, cfg()).unwrap();
        }

        // Kill the first query (fan-out runs in name order) mid-drain.
        let d1 = t(&base, "b", "q", "c");
        failpoints::arm("pre-drain", 0);
        let report = s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();
        reference.apply_batch(false, &[d1]).unwrap();

        match &report.outcomes["a-chain"] {
            QueryOutcome::Failed {
                error: MaintainError::Failpoint { point },
                health:
                    QueryHealth::Degraded {
                        stale_since_epoch: 0,
                        attempts: 0,
                        next_attempt_epoch: 2,
                    },
            } => assert_eq!(*point, "pre-drain"),
            other => panic!("a-chain: expected a degraded failpoint kill, got {other:?}"),
        }
        assert!(matches!(
            report.outcomes["b-union"],
            QueryOutcome::Committed { .. }
        ));
        assert_eq!(s.stats().failures, 1);

        // The killed query serves its pre-batch match set, marked stale;
        // the other query is bit-identical to the uninterrupted session.
        assert!(s.is_stale("a-chain").unwrap());
        assert_eq!(s.candidates("a-chain").unwrap(), cold_candidates(&base, CHAIN));
        for (mine, theirs) in s
            .solutions("b-union")
            .unwrap()
            .iter()
            .zip(reference.solutions("b-union").unwrap())
        {
            assert_eq!(mine.chi, theirs.chi);
        }
        for (mine, theirs) in s
            .maintenance_stats("b-union")
            .unwrap()
            .iter()
            .zip(reference.maintenance_stats("b-union").unwrap())
        {
            assert_eq!(mine.logical(), theirs.logical());
        }

        // Next batch: the backoff has elapsed, the backlog (failed batch
        // + this one) replays, and the query is current again —
        // bit-identical in χ *and* logical stats to the reference.
        let d2 = t(&base, "d", "p", "e");
        let r2 = s.apply_batch(false, &[d2]).unwrap();
        reference.apply_batch(false, &[d2]).unwrap();
        assert!(matches!(
            r2.outcomes["a-chain"],
            QueryOutcome::Healed {
                via: HealPath::Replay,
                ..
            }
        ));
        assert!(s.health("a-chain").unwrap().is_healthy());
        assert_eq!(s.stats().replay_heals, 1);
        for name in ["a-chain", "b-union"] {
            for (mine, theirs) in s
                .solutions(name)
                .unwrap()
                .iter()
                .zip(reference.solutions(name).unwrap())
            {
                assert_eq!(mine.chi, theirs.chi, "{name}");
            }
            for (mine, theirs) in s
                .maintenance_stats(name)
                .unwrap()
                .iter()
                .zip(reference.maintenance_stats(name).unwrap())
            {
                assert_eq!(mine.logical(), theirs.logical(), "{name}");
            }
        }
    }

    #[test]
    fn a_session_fanout_kill_degrades_before_any_engine_runs() {
        failpoints::disarm_all();
        let base = db();
        let mut s = session(SessionOptions::default());
        s.register("only", CHAIN, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");

        failpoints::arm("session-fanout", 0);
        let r = s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();
        assert!(matches!(
            r.outcomes["only"],
            QueryOutcome::Failed {
                error: MaintainError::Failpoint {
                    point: "session-fanout"
                },
                ..
            }
        ));
        assert_eq!(
            s.stats().fanout_applications,
            0,
            "the kill fired before any engine was touched"
        );
        assert_eq!(s.candidates("only").unwrap(), cold_candidates(&base, CHAIN));

        // The session graph still committed; re-inserting and letting
        // the due replay run brings the query back to the same state.
        let r2 = s.apply_batch(true, &[d1]).unwrap();
        assert!(matches!(
            r2.outcomes["only"],
            QueryOutcome::Healed {
                via: HealPath::Replay,
                ..
            }
        ));
        assert_eq!(s.candidates("only").unwrap(), cold_candidates(&base, CHAIN));
    }

    #[test]
    fn missed_batches_accumulate_and_replay_heals_across_them() {
        failpoints::disarm_all();
        let base = db();
        let opts = SessionOptions {
            backoff_base: 4,
            ..SessionOptions::default()
        };
        let mut s = QuerySession::new(base.clone(), opts.clone());
        let mut reference = QuerySession::new(base.clone(), opts);
        s.register("chain", CHAIN, cfg()).unwrap();
        reference.register("chain", CHAIN, cfg()).unwrap();

        let d1 = t(&base, "b", "q", "c");
        let d2 = t(&base, "d", "p", "e");
        let d3 = t(&base, "a", "p", "b");
        failpoints::arm("pre-drain", 0);
        let r1 = s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();
        reference.apply_batch(false, &[d1]).unwrap();
        assert!(matches!(r1.outcomes["chain"], QueryOutcome::Failed { .. }));

        // Three more batches arrive before the backoff (4 epochs)
        // elapses: each goes to the backlog, the query serves stale.
        for (insert, tr) in [(true, d1), (false, d2), (false, d3)] {
            let r = s.apply_batch(insert, &[tr]).unwrap();
            reference.apply_batch(insert, &[tr]).unwrap();
            assert!(
                matches!(r.outcomes["chain"], QueryOutcome::Stale { .. }),
                "epoch {}: backoff has not elapsed",
                r.epoch
            );
            assert_eq!(s.candidates("chain").unwrap(), cold_candidates(&base, CHAIN));
        }

        // Epoch 5 = 1 + backoff(4, attempt 1): the whole backlog replays.
        let r5 = s.apply_batch(true, &[d2]).unwrap();
        reference.apply_batch(true, &[d2]).unwrap();
        assert!(matches!(
            r5.outcomes["chain"],
            QueryOutcome::Healed {
                via: HealPath::Replay,
                ..
            }
        ));
        for (mine, theirs) in s
            .solutions("chain")
            .unwrap()
            .iter()
            .zip(reference.solutions("chain").unwrap())
        {
            assert_eq!(mine.chi, theirs.chi);
        }
        for (mine, theirs) in s
            .maintenance_stats("chain")
            .unwrap()
            .iter()
            .zip(reference.maintenance_stats("chain").unwrap())
        {
            assert_eq!(mine.logical(), theirs.logical());
        }
    }

    #[test]
    fn exhausted_retries_escalate_to_a_cold_rebuild() {
        failpoints::disarm_all();
        let base = db();
        let mut s = QuerySession::new(
            base.clone(),
            SessionOptions {
                max_retries: 0,
                ..SessionOptions::default()
            },
        );
        s.register("chain", CHAIN, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");
        failpoints::arm("pre-drain", 0);
        s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();

        // With zero replay retries the first due attempt rebuilds cold.
        let d2 = t(&base, "d", "p", "e");
        let r = s.apply_batch(false, &[d2]).unwrap();
        assert!(matches!(
            r.outcomes["chain"],
            QueryOutcome::Healed {
                via: HealPath::Rebuild,
                ..
            }
        ));
        assert!(s.health("chain").unwrap().is_healthy());
        assert_eq!(s.stats().rebuild_heals, 1);
        assert_eq!(s.candidates("chain").unwrap(), cold_candidates(s.db(), CHAIN));
    }

    #[test]
    fn a_backlog_overflow_forfeits_replay_and_rebuilds() {
        failpoints::disarm_all();
        let base = db();
        let mut s = QuerySession::new(
            base.clone(),
            SessionOptions {
                max_backlog: 1,
                backoff_base: 2,
                ..SessionOptions::default()
            },
        );
        s.register("chain", CHAIN, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");
        failpoints::arm("pre-drain", 0);
        s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();

        // Epoch 2 (not yet due): the second backlogged batch overflows
        // the bound of 1 — replay is forfeited.
        let r2 = s.apply_batch(true, &[d1]).unwrap();
        assert!(matches!(r2.outcomes["chain"], QueryOutcome::Stale { .. }));

        // Epoch 3 = 1 + backoff(2, attempt 1): due, and with no backlog
        // the ladder goes straight to the rebuild rung.
        let d2 = t(&base, "d", "p", "e");
        let r3 = s.apply_batch(false, &[d2]).unwrap();
        assert!(matches!(
            r3.outcomes["chain"],
            QueryOutcome::Healed {
                via: HealPath::Rebuild,
                ..
            }
        ));
        assert_eq!(s.candidates("chain").unwrap(), cold_candidates(s.db(), CHAIN));
    }

    #[test]
    fn auto_heal_off_quarantines_and_an_explicit_heal_revives() {
        failpoints::disarm_all();
        let base = db();
        let mut s = QuerySession::new(
            base.clone(),
            SessionOptions {
                auto_heal: false,
                ..SessionOptions::default()
            },
        );
        s.register("chain", CHAIN, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");
        failpoints::arm("pre-drain", 0);
        let r = s.apply_batch(false, &[d1]).unwrap();
        failpoints::disarm_all();
        assert!(matches!(
            r.outcomes["chain"],
            QueryOutcome::Failed {
                health: QueryHealth::Quarantined { .. },
                ..
            }
        ));
        assert_eq!(s.stats().quarantines, 1);

        // Quarantined queries never auto-heal: further batches leave
        // them serving the stale set.
        let d2 = t(&base, "d", "p", "e");
        let r2 = s.apply_batch(false, &[d2]).unwrap();
        assert!(matches!(r2.outcomes["chain"], QueryOutcome::Stale { .. }));
        assert_eq!(s.candidates("chain").unwrap(), cold_candidates(&base, CHAIN));

        // An explicit heal rebuilds against the current graph.
        s.heal("chain").unwrap();
        assert!(s.health("chain").unwrap().is_healthy());
        assert_eq!(s.candidates("chain").unwrap(), cold_candidates(s.db(), CHAIN));
    }

    #[test]
    fn backoff_doubles_per_attempt_and_saturates() {
        assert_eq!(backoff(1, 1), 1);
        assert_eq!(backoff(1, 2), 2);
        assert_eq!(backoff(1, 4), 8);
        assert_eq!(backoff(3, 3), 12);
        assert_eq!(backoff(0, 1), 1, "a zero base is clamped to 1");
        assert_eq!(backoff(2, 100), u64::MAX, "shift saturates");
    }

    #[test]
    fn a_durable_session_recovers_every_query_independently() {
        failpoints::disarm_all();
        let root = tmpdir();
        let base = db();
        let opts = SessionOptions {
            durability: Some(SessionDurability::new(&root)),
            ..SessionOptions::default()
        };
        let mut s = QuerySession::new(base.clone(), opts.clone());
        s.register("chain", CHAIN, cfg()).unwrap();
        s.register("union", UNION, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");
        let d2 = t(&base, "d", "p", "e");
        s.apply_batch(false, &[d1]).unwrap();
        s.apply_batch(false, &[d2]).unwrap();
        s.apply_batch(true, &[d1]).unwrap();
        let expected: BTreeMap<&str, Vec<Vec<crate::ChiVec>>> = ["chain", "union"]
            .into_iter()
            .map(|n| {
                (
                    n,
                    s.solutions(n)
                        .unwrap()
                        .iter()
                        .map(|sol| sol.chi.clone())
                        .collect(),
                )
            })
            .collect();
        drop(s);

        let rec = QuerySession::recover(opts).unwrap();
        for name in ["chain", "union"] {
            assert!(
                matches!(rec.reports[name], QueryRecovery::Recovered { .. }),
                "{name}: {:?}",
                rec.reports[name]
            );
        }
        let mut s2 = rec.session;
        assert_eq!(s2.query_text("chain").unwrap(), CHAIN, "meta round-trips");
        for (name, chis) in &expected {
            assert!(s2.health(name).unwrap().is_healthy());
            let got: Vec<Vec<crate::ChiVec>> = s2
                .solutions(name)
                .unwrap()
                .iter()
                .map(|sol| sol.chi.clone())
                .collect();
            assert_eq!(&got, chis, "{name} recovered bit-identical");
        }

        // The recovered session keeps maintaining.
        let d3 = t(s2.db(), "a", "p", "b");
        let r = s2.apply_batch(false, &[d3]).unwrap();
        for name in ["chain", "union"] {
            assert!(matches!(r.outcomes[name], QueryOutcome::Committed { .. }));
            assert_eq!(
                s2.candidates(name).unwrap(),
                cold_candidates(s2.db(), s2.query_text(name).unwrap())
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recovery_quarantines_unrecoverable_queries_instead_of_failing() {
        failpoints::disarm_all();
        let root = tmpdir();
        let base = db();
        let opts = SessionOptions {
            durability: Some(SessionDurability::new(&root)),
            ..SessionOptions::default()
        };
        let mut s = QuerySession::new(base.clone(), opts.clone());
        s.register("chain", CHAIN, cfg()).unwrap();
        s.register("union", UNION, cfg()).unwrap();
        let d1 = t(&base, "b", "q", "c");
        s.apply_batch(false, &[d1]).unwrap();
        drop(s);

        // Wreck every file of chain's only branch: its WAL header and
        // its snapshot are both unusable.
        let chain_branch = branch_dir(&query_dir(&root, "chain"), 0);
        for entry in std::fs::read_dir(&chain_branch).unwrap() {
            let path = entry.unwrap().path();
            std::fs::write(&path, b"garbage").unwrap();
        }

        let rec = QuerySession::recover(opts).unwrap();
        assert!(matches!(
            rec.reports["chain"],
            QueryRecovery::Quarantined { .. }
        ));
        assert!(matches!(
            rec.reports["union"],
            QueryRecovery::Recovered { .. }
        ));
        let mut s2 = rec.session;
        assert!(matches!(
            s2.health("chain").unwrap(),
            QueryHealth::Quarantined { .. }
        ));

        // The survivor keeps serving and maintaining; the quarantined
        // query is revived by re-registering (its durable state was
        // unusable, so its text is gone too).
        let d2 = t(s2.db(), "d", "p", "e");
        let r = s2.apply_batch(false, &[d2]).unwrap();
        assert!(matches!(r.outcomes["union"], QueryOutcome::Committed { .. }));
        assert!(matches!(r.outcomes["chain"], QueryOutcome::Stale { .. }));
        s2.deregister("chain").unwrap();
        s2.register("chain", CHAIN, cfg()).unwrap();
        assert_eq!(
            s2.candidates("chain").unwrap(),
            cold_candidates(s2.db(), CHAIN)
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
