//! Per-query solve plans: one resolution of every pluggable axis.
//!
//! A [`SolvePlan`] pins the χ-storage backend × counter-slab backend ×
//! drain strategy × word-kernel combination a solve runs under — all
//! `Auto` selections resolved against the seeded candidate density (χ,
//! slab) and the host CPU (kernel) — **once**, at [`crate::DeltaSolver`]
//! construction / re-evaluation solve entry, instead of re-deciding
//! inside the hot loops. Everything downstream is monomorphized against
//! the plan:
//!
//! * the plan's concrete χ backend fixes which `ChiVec` variant every
//!   vector holds for the whole solve (enum dispatch on a known variant
//!   is a predictable branch, and the run-aware drain flag is derived
//!   here once rather than re-checked per round);
//! * the concrete slab backend fixes every support slab's representation
//!   up front, and the fused `CounterSlab::decrement_collect` drain
//!   hoists the remaining representation match out of the per-entry
//!   decrement loop;
//! * installing the plan ([`SolvePlan::install_kernel`]) selects the
//!   word-kernel instantiation process-wide, so every `BitVec` /
//!   `BitMatrix` inner loop below the solve runs the resolved scalar /
//!   unrolled / AVX2 code with one relaxed-load dispatch per operation
//!   (hoisted to one per multiply in the `×b` kernels).
//!
//! Every plan combination is bit-identical in χ and in the logical
//! [`crate::SolveStats`] projection — the parity harness sweeps the full
//! plan space (kernel × χ × slab × drain × threads) and pins it.

use crate::solver::{auto_prefers_compressed, DrainStrategy, SolverConfig};
use dualsim_bitmatrix::{ChiBackend, ChiVec, KernelBackend, SlabBackend};

/// The per-query resolved execution plan: every pluggable axis pinned
/// to a concrete choice for the duration of one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolvePlan {
    /// Concrete χ storage backend (never [`ChiBackend::Auto`]).
    pub chi: ChiBackend,
    /// Concrete support-counter backend (never [`SlabBackend::Auto`]).
    pub slab: SlabBackend,
    /// Worklist drain strategy (taken from the config verbatim — it has
    /// no `Auto` to resolve; the per-round inline threshold still
    /// applies underneath).
    pub drain: DrainStrategy,
    /// Concrete word-kernel instantiation (never [`KernelBackend::Auto`];
    /// `Simd` only when the CPU supports it).
    pub kernel: KernelBackend,
    /// Whether the delta drain walks removal *runs* against the matrix
    /// CSR instead of single rows — derived from the χ backend (RLE χ
    /// coalesces one round's removals into runs).
    pub run_aware: bool,
}

impl SolvePlan {
    /// Resolves a configuration into a concrete plan against the exact
    /// seeded candidate count: χ `Auto` and slab `Auto` use the shared
    /// density bound (`initial_candidates / (nv · n)` at most
    /// 1/`AUTO_RLE_DENSITY_DIVISOR` picks the compressed/sparse
    /// representation), kernel `Auto`/`Simd` resolve against the host
    /// CPU's feature set.
    pub fn resolve(
        config: &SolverConfig,
        initial_candidates: usize,
        nv: usize,
        n: usize,
    ) -> SolvePlan {
        let compressed = auto_prefers_compressed(initial_candidates, nv * n);
        let chi = match config.chi_backend {
            ChiBackend::Dense => ChiBackend::Dense,
            ChiBackend::Rle => ChiBackend::Rle,
            ChiBackend::Auto => {
                if compressed {
                    ChiBackend::Rle
                } else {
                    ChiBackend::Dense
                }
            }
        };
        let slab = match config.slab_backend {
            SlabBackend::Dense => SlabBackend::Dense,
            SlabBackend::Sparse => SlabBackend::Sparse,
            SlabBackend::Auto => {
                if compressed {
                    SlabBackend::Sparse
                } else {
                    SlabBackend::Dense
                }
            }
        };
        SolvePlan {
            chi,
            slab,
            drain: config.drain,
            kernel: config.kernel_backend.resolve(),
            run_aware: chi == ChiBackend::Rle,
        }
    }

    /// Installs the plan's word kernel as the process-wide active
    /// instantiation (one relaxed atomic store). Concurrent solves with
    /// different plans can only ever change each other's wall time, not
    /// results — every kernel instantiation is bit-identical.
    pub fn install_kernel(&self) {
        self.kernel.install();
    }

    /// Converts every χ vector to the plan's concrete backend (a no-op
    /// for vectors already there).
    pub fn apply_chi(&self, chi: &mut [ChiVec]) {
        for c in chi.iter_mut() {
            c.convert_to(self.chi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_pins_every_axis_concrete() {
        let config = SolverConfig {
            chi_backend: ChiBackend::Auto,
            slab_backend: SlabBackend::Auto,
            kernel_backend: KernelBackend::Auto,
            ..SolverConfig::default()
        };
        // Dense seeding: 1000 candidates over a 10×100 space.
        let dense = SolvePlan::resolve(&config, 1000, 10, 100);
        assert_eq!(dense.chi, ChiBackend::Dense);
        assert_eq!(dense.slab, SlabBackend::Dense);
        assert!(!dense.run_aware);
        assert_ne!(dense.kernel, KernelBackend::Auto);
        // Sparse seeding: 1 candidate over the same space.
        let sparse = SolvePlan::resolve(&config, 1, 10, 100);
        assert_eq!(sparse.chi, ChiBackend::Rle);
        assert_eq!(sparse.slab, SlabBackend::Sparse);
        assert!(sparse.run_aware);
        assert_eq!(sparse.kernel, dense.kernel, "kernel is density-blind");
    }

    #[test]
    fn explicit_backends_pass_through() {
        let config = SolverConfig {
            chi_backend: ChiBackend::Rle,
            slab_backend: SlabBackend::Dense,
            kernel_backend: KernelBackend::Unrolled,
            ..SolverConfig::default()
        };
        let plan = SolvePlan::resolve(&config, 1_000_000, 10, 100);
        assert_eq!(plan.chi, ChiBackend::Rle);
        assert_eq!(plan.slab, SlabBackend::Dense);
        assert_eq!(plan.kernel, KernelBackend::Unrolled);
        assert!(plan.run_aware);
        assert_eq!(plan.drain, config.drain);
    }
}
