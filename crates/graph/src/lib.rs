//! Edge-labeled directed graphs and RDF-style graph databases.
//!
//! Implements the data model of Sect. 2 of *Fast Dual Simulation
//! Processing of Graph Database Queries*: a graph database
//! `DB = (O_DB, Σ, E_DB)` with a finite set of database objects and
//! literals, a finite property alphabet, and a labeled edge relation in
//! which literals may only appear in object position (Def. 1).
//!
//! Nodes and labels are dictionary-encoded to dense `u32` identifiers.
//! For every label `a` the database keeps both adjacency maps of the
//! paper — the forward map `F^a` and the backward map `B^a` — as
//! compressed bit matrices ([`dualsim_bitmatrix::BitMatrix`]), which is
//! exactly the storage layout the SOI solver multiplies against.
//!
//! ```
//! use dualsim_graph::GraphDbBuilder;
//!
//! let mut b = GraphDbBuilder::new();
//! b.add_triple("B. De Palma", "directed", "Mission: Impossible").unwrap();
//! b.add_attribute("Saint John", "population", "70063").unwrap();
//! let db = b.finish();
//! assert_eq!(db.num_triples(), 2);
//! let directed = db.label_id("directed").unwrap();
//! let depalma = db.node_id("B. De Palma").unwrap();
//! assert_eq!(db.out_neighbors(depalma, directed).len(), 1);
//! ```

#![warn(missing_docs)]
// Robustness gate (shared with `dualsim-core`): library code must not
// panic on reachable input paths — errors flow through [`GraphError`].
// Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod db;
mod ntriples;
mod vocab;

#[cfg(test)]
mod proptests;

pub use db::{GraphDb, GraphDbBuilder, LabelStats, Triple};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use vocab::{NodeKind, Vocabulary};

/// Dense identifier of a database node (object or literal).
pub type NodeId = u32;
/// Dense identifier of an edge label (RDF predicate).
pub type LabelId = u32;

/// Errors raised while constructing or parsing graph databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A literal was used in subject position, violating Def. 1.
    LiteralSubject(String),
    /// The same name was used both as an IRI object and as a literal;
    /// the paper assumes the universes `O`, `L` and `P` to be disjoint.
    KindConflict(String),
    /// An N-Triples line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A triple mentions a node or label id outside the shared
    /// vocabulary ([`GraphDb::with_triples`]): derived databases reuse
    /// their parent's dictionary, so such a triple is inexpressible —
    /// usually a sign of a corrupt or misrouted update stream. Carries
    /// the offending terms (resolved against the vocabulary where the
    /// id is in range, a `#<id>` placeholder where it is not) and the
    /// triple's 1-based position in the batch, so stream tooling can
    /// point at the exact line.
    ForeignTriple {
        /// The offending triple, raw ids.
        triple: Triple,
        /// Subject term (node name, or `#<id>` if out of range).
        subject: String,
        /// Predicate term (label name, or `#<id>` if out of range).
        predicate: String,
        /// Object term (node name, or `#<id>` if out of range).
        object: String,
        /// 1-based index of the triple within the rejected batch.
        index: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::LiteralSubject(name) => {
                write!(f, "literal {name:?} may not occur in subject position")
            }
            GraphError::KindConflict(name) => {
                write!(f, "node {name:?} used both as IRI and as literal")
            }
            GraphError::Parse { line, message } => {
                write!(f, "N-Triples parse error on line {line}: {message}")
            }
            GraphError::ForeignTriple {
                subject,
                predicate,
                object,
                index,
                ..
            } => {
                write!(
                    f,
                    "triple {index} ({subject}, {predicate}, {object}) lies outside the shared vocabulary"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
