//! The in-memory graph database: per-label adjacency bit matrices plus a
//! shared vocabulary.

use crate::{GraphError, LabelId, NodeId, NodeKind, Vocabulary};
use dualsim_bitmatrix::{BitMatrix, BitVec};
use std::sync::Arc;

/// A dictionary-encoded RDF triple `(s, p, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject node (always an IRI object, never a literal).
    pub s: NodeId,
    /// Predicate label.
    pub p: LabelId,
    /// Object node (IRI object or literal).
    pub o: NodeId,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(s: NodeId, p: LabelId, o: NodeId) -> Self {
        Triple { s, p, o }
    }
}

/// Per-label cardinality statistics used by join-order and inequality-order
/// heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of `a`-labeled edges.
    pub edges: usize,
    /// Number of distinct subjects with an outgoing `a`-edge
    /// (`|f^a|` in Eq. (13) terms).
    pub distinct_subjects: usize,
    /// Number of distinct objects with an incoming `a`-edge (`|b^a|`).
    pub distinct_objects: usize,
}

#[derive(Debug, Clone)]
struct LabelData {
    forward: BitMatrix,
    backward: BitMatrix,
}

/// An immutable graph database `DB = (O_DB, Σ, E_DB)` (Def. 1).
///
/// For every label the database stores both the forward adjacency matrix
/// `F^a` and the backward adjacency matrix `B^a`; the row summaries of
/// those matrices are the `f^a` / `b^a` vectors used for initialization
/// (Eq. (13)). Databases derived from this one (e.g. per-query prunings
/// built by [`GraphDb::with_triples`]) share the same [`Vocabulary`], so
/// node identifiers are stable across original and derived instances.
#[derive(Debug, Clone)]
pub struct GraphDb {
    vocab: Arc<Vocabulary>,
    labels: Vec<LabelData>,
    n_triples: usize,
}

impl GraphDb {
    fn build(vocab: Arc<Vocabulary>, per_label: Vec<Vec<(u32, u32)>>) -> Self {
        let n = vocab.num_nodes();
        debug_assert_eq!(per_label.len(), vocab.num_labels());
        let mut labels = Vec::with_capacity(per_label.len());
        let mut n_triples = 0usize;
        for edges in &per_label {
            let forward = BitMatrix::from_edges(n, edges);
            let backward = forward.transpose();
            n_triples += forward.nnz();
            labels.push(LabelData { forward, backward });
        }
        GraphDb {
            vocab,
            labels,
            n_triples,
        }
    }

    /// The shared vocabulary (dictionaries of nodes and labels).
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Number of nodes `|O_DB|` (objects and literals).
    pub fn num_nodes(&self) -> usize {
        self.vocab.num_nodes()
    }

    /// Size of the label alphabet `|Σ|`.
    pub fn num_labels(&self) -> usize {
        self.vocab.num_labels()
    }

    /// Number of triples `|E_DB|`.
    pub fn num_triples(&self) -> usize {
        self.n_triples
    }

    /// Looks up a label by predicate name.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.vocab.label_id(name)
    }

    /// Looks up a node by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.vocab.node_id(name)
    }

    /// The name of node `id`.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.vocab.node_name(id)
    }

    /// The kind (IRI or literal) of node `id`.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.vocab.node_kind(id)
    }

    /// The name of label `id`.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.vocab.label_name(id)
    }

    /// The forward adjacency matrix `F^a`.
    pub fn forward(&self, label: LabelId) -> &BitMatrix {
        &self.labels[label as usize].forward
    }

    /// The backward adjacency matrix `B^a`.
    pub fn backward(&self, label: LabelId) -> &BitMatrix {
        &self.labels[label as usize].backward
    }

    /// Summary vector `f^a`: bit `v` set iff `v` has an outgoing `a`-edge.
    pub fn f_summary(&self, label: LabelId) -> &BitVec {
        self.labels[label as usize].forward.row_summary()
    }

    /// Summary vector `b^a`: bit `v` set iff `v` has an incoming `a`-edge.
    pub fn b_summary(&self, label: LabelId) -> &BitVec {
        self.labels[label as usize].backward.row_summary()
    }

    /// Successors of `v` via `a`-labeled edges (`F^a(v)`), sorted.
    pub fn out_neighbors(&self, v: NodeId, label: LabelId) -> &[u32] {
        self.labels[label as usize].forward.row(v as usize)
    }

    /// Predecessors of `v` via `a`-labeled edges (`B^a(v)`), sorted.
    pub fn in_neighbors(&self, v: NodeId, label: LabelId) -> &[u32] {
        self.labels[label as usize].backward.row(v as usize)
    }

    /// Membership test for a triple.
    pub fn contains_triple(&self, t: Triple) -> bool {
        (t.p as usize) < self.labels.len()
            && self.labels[t.p as usize]
                .forward
                .get(t.s as usize, t.o as usize)
    }

    /// Number of `a`-labeled edges.
    pub fn num_label_triples(&self, label: LabelId) -> usize {
        self.labels[label as usize].forward.nnz()
    }

    /// Heap bytes of the adjacency matrices of one label (forward plus
    /// backward).
    pub fn label_memory(&self, label: LabelId) -> usize {
        let data = &self.labels[label as usize];
        data.forward.heap_bytes() + data.backward.heap_bytes()
    }

    /// Total heap bytes of all adjacency matrices — the §5.1 memory
    /// accounting ("the space our tool allocates for storing the
    /// adjacency matrices").
    pub fn memory_footprint(&self) -> usize {
        (0..self.labels.len() as u32)
            .map(|l| self.label_memory(l))
            .sum()
    }

    /// Cardinality statistics for a label.
    pub fn label_stats(&self, label: LabelId) -> LabelStats {
        let data = &self.labels[label as usize];
        LabelStats {
            edges: data.forward.nnz(),
            distinct_subjects: data.forward.nonempty_rows(),
            distinct_objects: data.backward.nonempty_rows(),
        }
    }

    /// All `(s, o)` pairs of `a`-labeled edges, ascending by subject.
    pub fn label_pairs(&self, label: LabelId) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.labels[label as usize].forward.entries()
    }

    /// Iterator over every triple of the database.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.labels.len() as u32).flat_map(move |p| {
            self.labels[p as usize]
                .forward
                .entries()
                .map(move |(s, o)| Triple { s, p, o })
        })
    }

    /// Builds a database over the same vocabulary containing exactly the
    /// given triples. This is how per-query prunings and update-stream
    /// snapshots are materialized: identifiers remain valid across both
    /// instances.
    ///
    /// A triple mentioning a label or node unknown to this database is
    /// rejected with [`GraphError::ForeignTriple`]: it cannot be
    /// expressed over the shared vocabulary, and dropping it silently
    /// (the historical behavior in release builds) made corrupt update
    /// streams vanish instead of surfacing.
    pub fn with_triples(&self, triples: &[Triple]) -> Result<GraphDb, GraphError> {
        let mut per_label: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.vocab.num_labels()];
        let n = self.vocab.num_nodes() as u32;
        for (idx, t) in triples.iter().enumerate() {
            if (t.p as usize) >= per_label.len() || t.s >= n || t.o >= n {
                let node = |id: u32| {
                    if id < n {
                        self.vocab.node_name(id).to_owned()
                    } else {
                        format!("#{id}")
                    }
                };
                let label = if (t.p as usize) < per_label.len() {
                    self.vocab.label_name(t.p).to_owned()
                } else {
                    format!("#{}", t.p)
                };
                return Err(GraphError::ForeignTriple {
                    triple: *t,
                    subject: node(t.s),
                    predicate: label,
                    object: node(t.o),
                    index: idx + 1,
                });
            }
            per_label[t.p as usize].push((t.s, t.o));
        }
        Ok(GraphDb::build(Arc::clone(&self.vocab), per_label))
    }
}

/// Incremental builder for [`GraphDb`].
#[derive(Debug, Default)]
pub struct GraphDbBuilder {
    vocab: Vocabulary,
    per_label: Vec<Vec<(u32, u32)>>,
}

impl GraphDbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node without adding edges (useful for isolated objects).
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> Result<NodeId, GraphError> {
        self.vocab.intern_node(name, kind)
    }

    /// Adds an object-to-object triple `(s, p, o)`.
    pub fn add_triple(&mut self, s: &str, p: &str, o: &str) -> Result<(), GraphError> {
        let s = self.vocab.intern_node(s, NodeKind::Iri)?;
        let o = self.vocab.intern_node(o, NodeKind::Iri)?;
        let p = self.vocab.intern_label(p);
        self.push_edge(s, p, o);
        Ok(())
    }

    /// Adds an attribute triple `(s, p, literal)`; the object is a
    /// literal and can never occur in subject position (Def. 1).
    pub fn add_attribute(&mut self, s: &str, p: &str, literal: &str) -> Result<(), GraphError> {
        let s = self.vocab.intern_node(s, NodeKind::Iri)?;
        let o = self.vocab.intern_node(literal, NodeKind::Literal)?;
        let p = self.vocab.intern_label(p);
        self.push_edge(s, p, o);
        Ok(())
    }

    /// Adds a triple with pre-interned identifiers.
    ///
    /// # Errors
    /// Returns [`GraphError::LiteralSubject`] if `s` is a literal.
    pub fn add_triple_ids(&mut self, s: NodeId, p: LabelId, o: NodeId) -> Result<(), GraphError> {
        if self.vocab.node_kind(s) == NodeKind::Literal {
            return Err(GraphError::LiteralSubject(
                self.vocab.node_name(s).to_owned(),
            ));
        }
        self.push_edge(s, p, o);
        Ok(())
    }

    /// Interns a label without adding edges.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let id = self.vocab.intern_label(name);
        self.ensure_label(id);
        id
    }

    /// Read access to the vocabulary under construction.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    fn push_edge(&mut self, s: NodeId, p: LabelId, o: NodeId) {
        self.ensure_label(p);
        self.per_label[p as usize].push((s, o));
    }

    fn ensure_label(&mut self, p: LabelId) {
        if self.per_label.len() <= p as usize {
            self.per_label.resize(p as usize + 1, Vec::new());
        }
    }

    /// Finalizes the database: builds all adjacency matrices.
    pub fn finish(mut self) -> GraphDb {
        // Nodes may have been interned after the last label was created;
        // make sure the per-label table covers the whole alphabet.
        self.per_label.resize(self.vocab.num_labels(), Vec::new());
        GraphDb::build(Arc::new(self.vocab), self.per_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fragment of the Fig. 1(a) movie database.
    fn movie_db() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.add_triple("B. De Palma", "directed", "Mission: Impossible")
            .unwrap();
        b.add_triple("B. De Palma", "worked_with", "D. Koepp")
            .unwrap();
        b.add_triple("G. Hamilton", "directed", "Goldfinger")
            .unwrap();
        b.add_triple("G. Hamilton", "worked_with", "H. Saltzman")
            .unwrap();
        b.add_triple("B. De Palma", "born_in", "Newark").unwrap();
        b.add_attribute("Saint John", "population", "70063")
            .unwrap();
        b.finish()
    }

    #[test]
    fn builder_counts_triples_nodes_labels() {
        let db = movie_db();
        assert_eq!(db.num_triples(), 6);
        assert_eq!(db.num_labels(), 4);
        assert_eq!(db.num_nodes(), 9);
    }

    #[test]
    fn adjacency_maps_agree_with_triples() {
        let db = movie_db();
        let directed = db.label_id("directed").unwrap();
        let depalma = db.node_id("B. De Palma").unwrap();
        let mi = db.node_id("Mission: Impossible").unwrap();
        assert_eq!(db.out_neighbors(depalma, directed), &[mi]);
        assert_eq!(db.in_neighbors(mi, directed), &[depalma]);
        assert!(db.contains_triple(Triple::new(depalma, directed, mi)));
        assert!(!db.contains_triple(Triple::new(mi, directed, depalma)));
    }

    #[test]
    fn summaries_mark_edge_endpoints() {
        let db = movie_db();
        let directed = db.label_id("directed").unwrap();
        let depalma = db.node_id("B. De Palma").unwrap();
        let hamilton = db.node_id("G. Hamilton").unwrap();
        let f = db.f_summary(directed);
        assert!(f.get(depalma as usize) && f.get(hamilton as usize));
        assert_eq!(f.count_ones(), 2);
        let goldfinger = db.node_id("Goldfinger").unwrap();
        assert!(db.b_summary(directed).get(goldfinger as usize));
    }

    #[test]
    fn literal_subject_is_rejected() {
        let mut b = GraphDbBuilder::new();
        b.add_attribute("s", "population", "42").unwrap();
        let lit = b.vocab().node_id("42").unwrap();
        let p = b.vocab().label_id("population").unwrap();
        let err = b.add_triple_ids(lit, p, 0).unwrap_err();
        assert!(matches!(err, GraphError::LiteralSubject(_)));
    }

    #[test]
    fn duplicate_triples_are_stored_once() {
        let mut b = GraphDbBuilder::new();
        b.add_triple("a", "p", "b").unwrap();
        b.add_triple("a", "p", "b").unwrap();
        let db = b.finish();
        assert_eq!(db.num_triples(), 1);
    }

    #[test]
    fn with_triples_shares_vocabulary_and_filters_edges() {
        let db = movie_db();
        let keep: Vec<Triple> = db
            .triples()
            .filter(|t| db.label_name(t.p) == "directed")
            .collect();
        let pruned = db.with_triples(&keep).unwrap();
        assert_eq!(pruned.num_triples(), 2);
        assert_eq!(pruned.num_nodes(), db.num_nodes());
        assert_eq!(
            pruned.node_id("B. De Palma"),
            db.node_id("B. De Palma"),
            "identifiers must be stable across pruning"
        );
        let ww = db.label_id("worked_with").unwrap();
        assert_eq!(pruned.num_label_triples(ww), 0);
    }

    #[test]
    fn label_stats_report_cardinalities() {
        let db = movie_db();
        let directed = db.label_id("directed").unwrap();
        let stats = db.label_stats(directed);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.distinct_subjects, 2);
        assert_eq!(stats.distinct_objects, 2);
    }

    #[test]
    fn memory_footprint_sums_label_matrices() {
        let db = movie_db();
        let total: usize = (0..db.num_labels() as u32)
            .map(|l| db.label_memory(l))
            .sum();
        assert_eq!(db.memory_footprint(), total);
        assert!(total > 0);
        // The biggest label holds the most edges, hence the most memory.
        let directed = db.label_id("directed").unwrap();
        let population = db.label_id("population").unwrap();
        assert!(db.label_memory(directed) >= db.label_memory(population) - 16);
    }

    #[test]
    fn triples_iterator_round_trips() {
        let db = movie_db();
        let all: Vec<Triple> = db.triples().collect();
        assert_eq!(all.len(), db.num_triples());
        let rebuilt = db.with_triples(&all).unwrap();
        assert_eq!(rebuilt.num_triples(), db.num_triples());
        for t in all {
            assert!(rebuilt.contains_triple(t));
        }
    }

    #[test]
    fn with_triples_rejects_out_of_vocabulary_triples() {
        let db = movie_db();
        let n = db.num_nodes() as u32;
        let p = db.label_id("directed").unwrap();
        for foreign in [
            Triple::new(n, p, 0),
            Triple::new(0, db.num_labels() as u32, 1),
            Triple::new(0, p, n + 7),
        ] {
            let err = db.with_triples(&[foreign]).unwrap_err();
            let GraphError::ForeignTriple { triple, index, .. } = &err else {
                panic!("expected ForeignTriple, got {err:?}");
            };
            assert_eq!(*triple, foreign);
            assert_eq!(*index, 1);
            assert!(err.to_string().contains("outside the shared vocabulary"));
        }
    }

    #[test]
    fn foreign_triple_reports_terms_and_batch_position() {
        let db = movie_db();
        let n = db.num_nodes() as u32;
        let p = db.label_id("directed").unwrap();
        let ok: Triple = db.triples().next().unwrap();
        // The in-range ids resolve to their interned names; the
        // out-of-range object becomes a placeholder; the index is the
        // 1-based position within the batch.
        let bad = Triple::new(0, p, n + 7);
        let err = db.with_triples(&[ok, bad]).unwrap_err();
        let GraphError::ForeignTriple {
            subject,
            predicate,
            object,
            index,
            ..
        } = &err
        else {
            panic!("expected ForeignTriple, got {err:?}");
        };
        assert_eq!(subject, db.node_name(0));
        assert_eq!(predicate, "directed");
        assert_eq!(object, &format!("#{}", n + 7));
        assert_eq!(*index, 2);
        let msg = err.to_string();
        assert!(msg.contains("triple 2"), "{msg}");
        assert!(msg.contains("directed"), "{msg}");
    }

    #[test]
    fn empty_database_is_well_behaved() {
        let db = GraphDbBuilder::new().finish();
        assert_eq!(db.num_nodes(), 0);
        assert_eq!(db.num_triples(), 0);
        assert_eq!(db.triples().count(), 0);
    }
}
