//! Property tests for the graph substrate: adjacency-map duality,
//! N-Triples round trips, and pruning-view invariants.

use crate::{parse_ntriples, write_ntriples, GraphDb, GraphDbBuilder, Triple};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec((0u8..15, 0u8..4, 0u8..15), 0..60).prop_map(|triples| {
        let mut b = GraphDbBuilder::new();
        for (s, p, o) in triples {
            b.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"))
                .unwrap();
        }
        b.finish()
    })
}

proptest! {
    /// Forward and backward adjacency maps are transposes of each other:
    /// `w ∈ F^a(v) ⟺ v ∈ B^a(w)`.
    #[test]
    fn adjacency_maps_are_dual(db in arb_db()) {
        for t in db.triples() {
            prop_assert!(db.out_neighbors(t.s, t.p).contains(&t.o));
            prop_assert!(db.in_neighbors(t.o, t.p).contains(&t.s));
            prop_assert!(db.contains_triple(t));
        }
        for label in 0..db.num_labels() as u32 {
            let fwd: usize = (0..db.num_nodes() as u32)
                .map(|v| db.out_neighbors(v, label).len())
                .sum();
            let bwd: usize = (0..db.num_nodes() as u32)
                .map(|v| db.in_neighbors(v, label).len())
                .sum();
            prop_assert_eq!(fwd, bwd);
            prop_assert_eq!(fwd, db.num_label_triples(label));
        }
    }

    /// Summary vectors mark exactly the nodes with incident edges.
    #[test]
    fn summaries_match_adjacency(db in arb_db()) {
        for label in 0..db.num_labels() as u32 {
            for v in 0..db.num_nodes() {
                prop_assert_eq!(
                    db.f_summary(label).get(v),
                    !db.out_neighbors(v as u32, label).is_empty()
                );
                prop_assert_eq!(
                    db.b_summary(label).get(v),
                    !db.in_neighbors(v as u32, label).is_empty()
                );
            }
        }
    }

    /// Serializing and re-parsing preserves the triple multiset at the
    /// name level.
    #[test]
    fn ntriples_round_trip(db in arb_db()) {
        let text = write_ntriples(&db);
        let db2 = parse_ntriples(&text).unwrap();
        prop_assert_eq!(db.num_triples(), db2.num_triples());
        let names = |db: &GraphDb| {
            let mut v: Vec<(String, String, String)> = db
                .triples()
                .map(|t| (
                    db.node_name(t.s).to_owned(),
                    db.label_name(t.p).to_owned(),
                    db.node_name(t.o).to_owned(),
                ))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(names(&db), names(&db2));
    }

    /// `with_triples` behaves as a filter: the derived database contains
    /// exactly the requested subset, over the same vocabulary.
    #[test]
    fn with_triples_is_a_filter(db in arb_db(), keep_mask in proptest::collection::vec(any::<bool>(), 60)) {
        let all: Vec<Triple> = db.triples().collect();
        let kept: Vec<Triple> = all
            .iter()
            .zip(keep_mask.iter().cycle())
            .filter_map(|(t, &keep)| keep.then_some(*t))
            .collect();
        let derived = db.with_triples(&kept).unwrap();
        prop_assert_eq!(derived.num_triples(), kept.len());
        prop_assert_eq!(derived.num_nodes(), db.num_nodes());
        for t in &kept {
            prop_assert!(derived.contains_triple(*t));
        }
        for t in &all {
            if !kept.contains(t) {
                prop_assert!(!derived.contains_triple(*t));
            }
        }
    }

    /// Memory accounting is consistent and grows with edges.
    #[test]
    fn memory_footprint_is_additive(db in arb_db()) {
        let total: usize = (0..db.num_labels() as u32)
            .map(|l| db.label_memory(l))
            .sum();
        prop_assert_eq!(db.memory_footprint(), total);
    }
}
