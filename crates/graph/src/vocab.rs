//! Dictionary encoding of node names and edge labels.

use crate::{GraphError, LabelId, NodeId};
use std::collections::HashMap;

/// Whether a node is a database object (IRI) or a literal value.
///
/// Literals stem from arbitrary data domains and may only occur in the
/// object position of triples (Def. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A database object, addressable by IRI.
    Iri,
    /// A literal attribute value.
    Literal,
}

#[derive(Debug, Default, Clone)]
struct Interner {
    map: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    fn get_or_insert(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The shared dictionary of a graph database: node names with their
/// kinds, and the label alphabet `Σ`.
///
/// Vocabularies are shared (via `Arc`) between a database and databases
/// derived from it, e.g. per-query prunings, so node identifiers remain
/// comparable across the original and the pruned instance.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    nodes: Interner,
    kinds: Vec<NodeKind>,
    labels: Interner,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node name with the given kind.
    ///
    /// # Errors
    /// Returns [`GraphError::KindConflict`] if the name was previously
    /// interned with the other kind.
    pub fn intern_node(&mut self, name: &str, kind: NodeKind) -> Result<NodeId, GraphError> {
        let id = self.nodes.get_or_insert(name);
        if id as usize == self.kinds.len() {
            self.kinds.push(kind);
        } else if self.kinds[id as usize] != kind {
            return Err(GraphError::KindConflict(name.to_owned()));
        }
        Ok(id)
    }

    /// Interns an edge label (predicate).
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        self.labels.get_or_insert(name)
    }

    /// Looks up a node by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name)
    }

    /// Looks up a label by name.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name)
    }

    /// The name of node `id`.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.nodes.name(id)
    }

    /// The kind (IRI or literal) of node `id`.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id as usize]
    }

    /// The name of label `id`.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id)
    }

    /// Number of interned nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of interned labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern_node("a", NodeKind::Iri).unwrap();
        let a2 = v.intern_node("a", NodeKind::Iri).unwrap();
        assert_eq!(a, a2);
        assert_eq!(v.num_nodes(), 1);
        assert_eq!(v.node_name(a), "a");
        assert_eq!(v.node_kind(a), NodeKind::Iri);
    }

    #[test]
    fn kind_conflicts_are_rejected() {
        let mut v = Vocabulary::new();
        v.intern_node("x", NodeKind::Iri).unwrap();
        let err = v.intern_node("x", NodeKind::Literal).unwrap_err();
        assert_eq!(err, GraphError::KindConflict("x".into()));
    }

    #[test]
    fn labels_and_nodes_are_separate_namespaces() {
        let mut v = Vocabulary::new();
        let n = v.intern_node("directed", NodeKind::Iri).unwrap();
        let l = v.intern_label("directed");
        assert_eq!(n, 0);
        assert_eq!(l, 0);
        assert_eq!(v.num_nodes(), 1);
        assert_eq!(v.num_labels(), 1);
    }

    #[test]
    fn lookup_of_unknown_names_is_none() {
        let v = Vocabulary::new();
        assert_eq!(v.node_id("nope"), None);
        assert_eq!(v.label_id("nope"), None);
    }
}
