//! Minimal N-Triples import/export.
//!
//! Supports the line-based subset needed for the benchmark datasets:
//! `<iri> <iri> <iri> .` and `<iri> <iri> "literal" .` with the standard
//! string escapes. Language tags and datatype suffixes after the closing
//! quote are preserved verbatim as part of the literal text, which is all
//! the dual-simulation machinery needs (literals are opaque nodes).

use crate::{GraphDb, GraphDbBuilder, GraphError, NodeKind};
use std::fmt::Write as _;

/// Parses an N-Triples document into a [`GraphDb`].
///
/// Empty lines and `#` comment lines are skipped.
pub fn parse_ntriples(input: &str) -> Result<GraphDb, GraphError> {
    let mut builder = GraphDbBuilder::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line_no = idx + 1;
        let mut rest = line;
        let s = take_iri(&mut rest, line_no)?;
        let p = take_iri(&mut rest, line_no)?;
        let rest_trim = rest.trim_start();
        if let Some(stripped) = rest_trim.strip_prefix('"') {
            let (lit, tail) = take_literal(stripped, line_no)?;
            expect_dot(tail, line_no)?;
            builder.add_attribute(&s, &p, &lit)?;
        } else {
            let mut tail = rest_trim;
            let o = take_iri(&mut tail, line_no)?;
            expect_dot(tail, line_no)?;
            builder.add_triple(&s, &p, &o)?;
        }
    }
    Ok(builder.finish())
}

/// Serializes a [`GraphDb`] as N-Triples, one triple per line, sorted by
/// `(label, subject, object)` identifier for determinism.
pub fn write_ntriples(db: &GraphDb) -> String {
    let mut out = String::new();
    for t in db.triples() {
        let s = db.node_name(t.s);
        let p = db.label_name(t.p);
        match db.node_kind(t.o) {
            NodeKind::Iri => {
                let _ = writeln!(out, "<{s}> <{p}> <{}> .", db.node_name(t.o));
            }
            NodeKind::Literal => {
                let _ = writeln!(out, "<{s}> <{p}> \"{}\" .", escape(db.node_name(t.o)));
            }
        }
    }
    out
}

fn take_iri(rest: &mut &str, line: usize) -> Result<String, GraphError> {
    let trimmed = rest.trim_start();
    let Some(stripped) = trimmed.strip_prefix('<') else {
        return Err(GraphError::Parse {
            line,
            message: format!("expected '<', found {:?}", head(trimmed)),
        });
    };
    let Some(end) = stripped.find('>') else {
        return Err(GraphError::Parse {
            line,
            message: "unterminated IRI".into(),
        });
    };
    let iri = stripped[..end].to_owned();
    *rest = &stripped[end + 1..];
    Ok(iri)
}

fn take_literal(s: &str, line: usize) -> Result<(String, &str), GraphError> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                // Keep any language tag / datatype annotation as part of
                // the literal text so round-tripping stays lossless enough.
                let mut tail = &s[i + 1..];
                if let Some(tag_end) = annotation_end(tail) {
                    out.push_str(&tail[..tag_end]);
                    tail = &tail[tag_end..];
                }
                return Ok((out, tail));
            }
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return Err(GraphError::Parse {
                        line,
                        message: format!("unknown escape \\{other}"),
                    })
                }
                None => {
                    return Err(GraphError::Parse {
                        line,
                        message: "dangling escape at end of literal".into(),
                    })
                }
            },
            _ => out.push(c),
        }
    }
    Err(GraphError::Parse {
        line,
        message: "unterminated literal".into(),
    })
}

/// Length of a `@lang` or `^^<iri>` annotation prefix of `tail`, if any.
fn annotation_end(tail: &str) -> Option<usize> {
    if tail.starts_with('@') {
        let end = tail.find(|c: char| c.is_whitespace()).unwrap_or(tail.len());
        Some(end)
    } else if tail.starts_with("^^<") {
        tail.find('>').map(|i| i + 1)
    } else {
        None
    }
}

fn expect_dot(rest: &str, line: usize) -> Result<(), GraphError> {
    let t = rest.trim();
    if t == "." {
        Ok(())
    } else {
        Err(GraphError::Parse {
            line,
            message: format!("expected terminating '.', found {:?}", head(t)),
        })
    }
}

fn head(s: &str) -> &str {
    &s[..s.len().min(12)]
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_object_and_literal_triples() {
        let db = parse_ntriples(
            "# the Saint John example of Fig. 1(a)\n\
             <H. Saltzman> <born_in> <Saint John> .\n\
             <Saint John> <population> \"70063\" .\n",
        )
        .unwrap();
        assert_eq!(db.num_triples(), 2);
        let sj = db.node_id("Saint John").unwrap();
        assert_eq!(db.node_kind(sj), NodeKind::Iri);
        let lit = db.node_id("70063").unwrap();
        assert_eq!(db.node_kind(lit), NodeKind::Literal);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let db = parse_ntriples("\n# nothing\n   \n<a> <p> <b> .\n").unwrap();
        assert_eq!(db.num_triples(), 1);
    }

    #[test]
    fn literal_escapes_round_trip() {
        let mut b = GraphDbBuilder::new();
        b.add_attribute("s", "p", "line1\nline2 \"quoted\" \\ end")
            .unwrap();
        let db = b.finish();
        let text = write_ntriples(&db);
        let db2 = parse_ntriples(&text).unwrap();
        assert_eq!(db2.num_triples(), 1);
        assert!(db2.node_id("line1\nline2 \"quoted\" \\ end").is_some());
    }

    #[test]
    fn language_tags_and_datatypes_are_preserved() {
        let db = parse_ntriples(
            "<a> <p> \"hallo\"@de .\n\
             <a> <q> \"1\"^^<http://www.w3.org/2001/XMLSchema#int> .\n",
        )
        .unwrap();
        assert!(db.node_id("hallo@de").is_some());
        assert!(db
            .node_id("1^^<http://www.w3.org/2001/XMLSchema#int>")
            .is_some());
    }

    #[test]
    fn round_trip_is_stable() {
        let text = "<a> <p> <b> .\n<a> <q> \"lit\" .\n<b> <p> <c> .\n";
        let db = parse_ntriples(text).unwrap();
        let text2 = write_ntriples(&db);
        let db2 = parse_ntriples(&text2).unwrap();
        // Identifiers may be assigned in a different order, so compare at
        // the name level.
        let names = |db: &GraphDb| {
            let mut v: Vec<(String, String, String)> = db
                .triples()
                .map(|t| {
                    (
                        db.node_name(t.s).to_owned(),
                        db.label_name(t.p).to_owned(),
                        db.node_name(t.o).to_owned(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&db), names(&db2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_ntriples("<a> <p> <b> .\nnot a triple\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        assert!(matches!(
            parse_ntriples("<a> <p> \"oops .\n"),
            Err(GraphError::Parse { .. })
        ));
    }
}
