//! Support-counter slabs for delta-counting fixpoint engines.
//!
//! A [`CounterSlab`] holds one `u32` counter per matrix column — the
//! per-(inequality, candidate) *support* array of an HHK-style counting
//! engine: `slab[w] = |column w of M ∩ χ(source)|`. Slabs are plain
//! owned data (`Send + Sync`), which is what makes the sharded parallel
//! drain (and the sharded parallel *seeding*) safe: support arrays are
//! disjoint *per inequality*, so a drain round can `std::mem::take` each
//! touched inequality's slab, hand it to a scoped worker thread, and put
//! it back at the merge point — no locks, no atomics, no sharing.
//!
//! Storage is pluggable the same way χ storage is ([`SlabBackend`],
//! mirroring `ChiBackend`):
//!
//! * [`SlabBackend::Dense`] — one `u32` per matrix column, O(|V|) words
//!   per inequality regardless of how few columns ever have support;
//! * [`SlabBackend::Sparse`] — hash counters keyed by column index, one
//!   `u64`-equivalent word per *supported* column in the logical
//!   storage model. Should the supported population ever cross half
//!   the dense word cost, the slab spills to a dense array mid-seed
//!   (checked per inserted entry), so a sparse slab **never stores
//!   more words than dense** — the margin of two covers the hash
//!   table's physical overhead (load factor, control bytes,
//!   power-of-two capacity), making the bound hold for real memory
//!   too, the hard counterpart of the χ `Auto` divisor-64 guarantee;
//! * [`SlabBackend::Auto`] — resolved per solve from the same seeded
//!   candidate-density bound the χ `Auto` uses (`dualsim-core` resolves
//!   it before constructing any slab).
//!
//! The two concrete backends are logically interchangeable: `seed`
//! performs the identical increments in the identical order (and reports
//! the identical increment count), `count`/`decrement` observe identical
//! values — only [`CounterSlab::storage_words`] differs, which is the
//! gauge `SolveStats::slab_peak_words` tracks.
//!
//! A slab starts *unseeded* (no storage) and is seeded on demand from a
//! matrix and a selector vector ([`CounterSlab::seed`]); engines use the
//! unseeded state to defer seeding cost for inequalities that are never
//! violated.

use crate::{BitMatrix, RowSelector};
use std::collections::HashMap;

/// Support-counter storage backend selection, configured per solve
/// (`SolverConfig::slab_backend` in `dualsim-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlabBackend {
    /// One dense `u32` counter per matrix column: constant-time access,
    /// O(|V|) words per seeded inequality — the right choice when most
    /// columns carry support.
    #[default]
    Dense,
    /// Hash counters below a population threshold: one word per
    /// *supported* column, spilling to dense storage once the
    /// population crosses half the dense word cost (the margin covers
    /// the hash table's physical overhead) — the right choice when
    /// only a few columns ever have support (rare predicates,
    /// selective labels).
    Sparse,
    /// Decide per solve from the seeded candidate density, using the
    /// same bound as `ChiBackend::Auto` (density ≤
    /// 1/`AUTO_RLE_DENSITY_DIVISOR` picks sparse).
    Auto,
}

impl SlabBackend {
    /// Parses a backend name (`dense` / `sparse` / `auto`), as accepted
    /// by the `sparqlsim --slab-backend` flag.
    pub fn from_name(name: &str) -> Option<SlabBackend> {
        match name {
            "dense" => Some(SlabBackend::Dense),
            "sparse" => Some(SlabBackend::Sparse),
            "auto" => Some(SlabBackend::Auto),
            _ => None,
        }
    }

    /// The backend's display name.
    pub fn name(self) -> &'static str {
        match self {
            SlabBackend::Dense => "dense",
            SlabBackend::Sparse => "sparse",
            SlabBackend::Auto => "auto",
        }
    }
}

/// Dense counter cost of a `dim`-column matrix in `u64`-equivalent
/// words (`u32` counters, two per word).
#[inline]
fn dense_words(dim: usize) -> usize {
    dim.div_ceil(2)
}

/// The sparse slab spills to dense storage once its population exceeds
/// `dense_words(dim) / SPARSE_SPILL_DIVISOR`. The divisor of 2 is the
/// safety margin for the hash table's real allocation (load factor,
/// control bytes, power-of-two capacity — roughly 2 words per entry in
/// the worst case versus the 1 word per entry the *logical* storage
/// gauge counts), so at the spill point even the physical sparse
/// memory is about the dense cost, never a multiple of it.
const SPARSE_SPILL_DIVISOR: usize = 2;

#[inline]
fn spill_threshold(dim: usize) -> usize {
    dense_words(dim) / SPARSE_SPILL_DIVISOR
}

/// Hash-counter storage of a sparse slab: `map[w] = support of column
/// w`, with a dense spill once the distinct-column population reaches
/// the dense word cost (the slab then costs exactly as much as a dense
/// one, never more).
#[derive(Debug, Clone, Default)]
struct SparseCounters {
    map: HashMap<u32, u32>,
    /// Dense spill storage; `Some` once the population exceeded
    /// [`dense_words`] during seeding.
    dense: Option<Vec<u32>>,
    dim: usize,
}

impl SparseCounters {
    #[inline]
    fn count(&self, w: usize) -> u32 {
        assert!(w < self.dim, "candidate {w} out of bounds {}", self.dim);
        match &self.dense {
            Some(d) => d[w],
            None => self.map.get(&(w as u32)).copied().unwrap_or(0),
        }
    }

    #[inline]
    fn decrement(&mut self, w: usize) -> u32 {
        assert!(w < self.dim, "candidate {w} out of bounds {}", self.dim);
        match &mut self.dense {
            Some(d) => {
                let c = &mut d[w];
                debug_assert!(*c > 0, "support underflow on candidate {w}");
                *c = c.wrapping_sub(1);
                *c
            }
            None => match self.map.get_mut(&(w as u32)) {
                Some(c) => {
                    debug_assert!(*c > 0, "support underflow on candidate {w}");
                    *c = c.wrapping_sub(1);
                    *c
                }
                None => {
                    // Keep the dense wrapping semantics (0 − 1 =
                    // u32::MAX) so a hypothetical engine underflow bug
                    // cannot make release-build backends diverge: a
                    // wrapped counter proposes no removal either way.
                    debug_assert!(false, "support underflow on candidate {w}");
                    self.map.insert(w as u32, u32::MAX);
                    u32::MAX
                }
            },
        }
    }

    #[inline]
    fn increment(&mut self, w: usize) -> u32 {
        assert!(w < self.dim, "candidate {w} out of bounds {}", self.dim);
        if self.dense.is_none() {
            let c = self.map.entry(w as u32).or_insert(0);
            *c += 1;
            let new = *c;
            // The same population bound the seeding pass enforces:
            // insertion maintenance must not grow a sparse slab past
            // the dense cost either.
            if self.map.len() > spill_threshold(self.dim) {
                let mut d = vec![0u32; self.dim];
                for (&k, &c) in &self.map {
                    d[k as usize] = c;
                }
                self.map.clear();
                self.dense = Some(d);
            }
            return new;
        }
        let d = self.dense.as_mut().expect("spilled storage");
        d[w] += 1;
        d[w]
    }

    fn storage_words(&self) -> usize {
        match &self.dense {
            Some(_) => dense_words(self.dim),
            // One word per entry: a u32 column index plus a u32 count.
            None => self.map.len(),
        }
    }
}

/// Counter storage state: unseeded slabs remember which concrete
/// backend to materialize on first seed.
#[derive(Debug, Clone)]
enum Repr {
    Unseeded { sparse: bool },
    Dense(Vec<u32>),
    Sparse(SparseCounters),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Unseeded { sparse: false }
    }
}

/// Serializable state of a seeded [`CounterSlab`] as returned by
/// [`CounterSlab::export_state`]: counter dimension, sparse-spill flag,
/// and the non-zero `(column, count)` entries in ascending column order.
pub type SeededSlabState = (usize, bool, Vec<(u32, u32)>);

/// A slab of per-column support counters, lazily seeded, stored densely
/// or as hash counters per [`SlabBackend`].
#[derive(Debug, Clone, Default)]
pub struct CounterSlab {
    repr: Repr,
}

impl CounterSlab {
    /// An unseeded slab: no storage, no counters; seeds into the given
    /// concrete backend on first [`CounterSlab::seed`].
    ///
    /// # Panics
    /// Panics on [`SlabBackend::Auto`] — the caller resolves `Auto`
    /// before constructing slabs (mirroring the χ `Auto` contract).
    pub fn unseeded(backend: SlabBackend) -> Self {
        let sparse = match backend {
            SlabBackend::Dense => false,
            SlabBackend::Sparse => true,
            SlabBackend::Auto => {
                panic!("Auto must be resolved to a concrete backend before constructing slabs")
            }
        };
        CounterSlab {
            repr: Repr::Unseeded { sparse },
        }
    }

    /// `true` once [`CounterSlab::seed`] ran.
    #[inline]
    pub fn is_seeded(&self) -> bool {
        !matches!(self.repr, Repr::Unseeded { .. })
    }

    /// The slab's storage backend (unseeded slabs report the backend
    /// they will seed into; a spilled sparse slab still reports
    /// `Sparse` — the spill is a storage bound, not a backend change).
    pub fn backend(&self) -> SlabBackend {
        match &self.repr {
            Repr::Unseeded { sparse: false } | Repr::Dense(_) => SlabBackend::Dense,
            Repr::Unseeded { sparse: true } | Repr::Sparse(_) => SlabBackend::Sparse,
        }
    }

    /// Storage footprint in `u64`-equivalent words: 0 while unseeded,
    /// `⌈dim/2⌉` for dense counters, one word per supported column for
    /// sparse ones (capped at the dense cost by the spill). The gauge
    /// behind `SolveStats::slab_peak_words`.
    ///
    /// Like `RleBitVec::storage_words` (one word per run, `Vec`
    /// capacity ignored), this counts the *logical* storage model:
    /// sparse entries are one `u32` key plus one `u32` count, the hash
    /// table's physical overhead (capacity slack, control bytes) is
    /// not included. The spill threshold's margin of two keeps even
    /// the physical sparse footprint at or below the dense cost.
    pub fn storage_words(&self) -> usize {
        match &self.repr {
            Repr::Unseeded { .. } => 0,
            Repr::Dense(counts) => dense_words(counts.len()),
            Repr::Sparse(s) => s.storage_words(),
        }
    }

    /// (Re-)seeds the slab to `slab[w] = |column w of matrix ∩ x|`. The
    /// selector is any [`RowSelector`] — dense or run-length encoded χ
    /// alike; a run-length selector is walked run by run, touching one
    /// CSR segment per run ([`BitMatrix::rows_segment`]) instead of one
    /// row per bit. The increments performed (and the returned count —
    /// the seeding work measure) are identical for every selector
    /// representation and every slab backend.
    ///
    /// Reseeding reuses the existing allocation: a dense slab of the
    /// same dimension is `fill(0)`-reset instead of freed and
    /// re-grown, a sparse slab keeps its map capacity.
    ///
    /// # Panics
    /// Panics if `x` does not have the matrix dimension.
    pub fn seed<S: RowSelector>(&mut self, matrix: &BitMatrix, x: &S) -> usize {
        let dim = matrix.dim();
        match &mut self.repr {
            Repr::Unseeded { sparse: false } => {
                let mut counts = vec![0u32; dim];
                let inits = matrix.count_into(x, &mut counts);
                self.repr = Repr::Dense(counts);
                inits
            }
            Repr::Dense(counts) => {
                // Reseed fast path: reuse the allocation, re-zeroing in
                // place when the dimension is unchanged.
                if counts.len() == dim {
                    counts.fill(0);
                } else {
                    counts.clear();
                    counts.resize(dim, 0);
                }
                matrix.count_into(x, counts)
            }
            repr @ Repr::Unseeded { sparse: true } => {
                let (sparse, inits) = seed_sparse(SparseCounters::default(), matrix, x);
                *repr = Repr::Sparse(sparse);
                inits
            }
            Repr::Sparse(s) => {
                let mut prev = std::mem::take(s);
                prev.map.clear();
                prev.dense = None;
                let (sparse, inits) = seed_sparse(prev, matrix, x);
                self.repr = Repr::Sparse(sparse);
                inits
            }
        }
    }

    /// Current support of candidate `w`.
    ///
    /// # Panics
    /// Panics if the slab is unseeded or `w` is out of bounds.
    #[inline]
    pub fn count(&self, w: usize) -> u32 {
        match &self.repr {
            Repr::Unseeded { .. } => panic!("count on an unseeded slab"),
            Repr::Dense(counts) => counts[w],
            Repr::Sparse(s) => s.count(w),
        }
    }

    /// Increments the support of candidate `w` and returns the new
    /// value; `1` means the candidate just gained its *first* witness —
    /// the 0→1 transition that makes it a re-activation candidate
    /// under insertion maintenance. A sparse slab whose population
    /// crosses the spill threshold spills to dense storage here too
    /// (callers re-observe [`CounterSlab::storage_words`] after
    /// increments — insertion maintenance can grow the footprint).
    ///
    /// # Panics
    /// Panics if the slab is unseeded or `w` is out of bounds.
    #[inline]
    pub fn increment(&mut self, w: usize) -> u32 {
        match &mut self.repr {
            Repr::Unseeded { .. } => panic!("increment on an unseeded slab"),
            Repr::Dense(counts) => {
                counts[w] += 1;
                counts[w]
            }
            Repr::Sparse(s) => s.increment(w),
        }
    }

    /// Decrements the support of candidate `w` and returns the new
    /// value; `0` means the candidate just lost its last witness.
    ///
    /// # Panics
    /// Panics if the slab is unseeded or `w` is out of bounds; debug
    /// builds additionally assert against underflow.
    #[inline]
    pub fn decrement(&mut self, w: usize) -> u32 {
        match &mut self.repr {
            Repr::Unseeded { .. } => panic!("decrement on an unseeded slab"),
            Repr::Dense(counts) => {
                let c = &mut counts[w];
                debug_assert!(*c > 0, "support underflow on candidate {w}");
                *c = c.wrapping_sub(1);
                *c
            }
            Repr::Sparse(s) => s.decrement(w),
        }
    }

    /// Fused decrement + zero-test drain: decrements the support of
    /// every column in `columns` (in order, with exactly the semantics
    /// of [`CounterSlab::decrement`] per entry) and calls `zeroed` for
    /// each column whose support reaches exactly zero, in the order the
    /// zeros occur. The representation match is hoisted out of the
    /// per-entry loop — one dispatch per batch instead of one per
    /// decrement — and zero-support columns are collected *during* the
    /// decrement walk instead of by a follow-up probe pass.
    ///
    /// A column appearing multiple times in `columns` is decremented
    /// once per occurrence and reported at most once (at the occurrence
    /// that hits zero), identical to a per-entry
    /// `decrement(w) == 0` loop.
    ///
    /// # Panics
    /// Panics if the slab is unseeded or any column is out of bounds;
    /// debug builds additionally assert against underflow.
    #[inline]
    pub fn decrement_collect(&mut self, columns: &[u32], mut zeroed: impl FnMut(u32)) {
        match &mut self.repr {
            Repr::Unseeded { .. } => panic!("decrement on an unseeded slab"),
            Repr::Dense(counts) => {
                for &w in columns {
                    let c = &mut counts[w as usize];
                    debug_assert!(*c > 0, "support underflow on candidate {w}");
                    *c = c.wrapping_sub(1);
                    if *c == 0 {
                        zeroed(w);
                    }
                }
            }
            Repr::Sparse(s) => match &mut s.dense {
                Some(d) => {
                    for &w in columns {
                        assert!((w as usize) < s.dim, "candidate {w} out of bounds {}", s.dim);
                        let c = &mut d[w as usize];
                        debug_assert!(*c > 0, "support underflow on candidate {w}");
                        *c = c.wrapping_sub(1);
                        if *c == 0 {
                            zeroed(w);
                        }
                    }
                }
                None => {
                    for &w in columns {
                        assert!((w as usize) < s.dim, "candidate {w} out of bounds {}", s.dim);
                        if s.decrement(w as usize) == 0 {
                            zeroed(w);
                        }
                    }
                }
            },
        }
    }

    /// Drops the seeded storage, returning the slab to the unseeded
    /// state for its current backend — the rollback-journal inverse of
    /// a lazy-seed promotion. A spilled sparse slab unseeds back to
    /// plain sparse (the spill is storage-local and reproduced
    /// deterministically on re-seed). No-op on an unseeded slab.
    pub fn unseed(&mut self) {
        let sparse = self.backend() == SlabBackend::Sparse;
        self.repr = Repr::Unseeded { sparse };
    }

    /// Serializable view of the slab: `None` while unseeded, otherwise
    /// the counter dimension, whether a sparse slab has spilled to
    /// dense storage, and every non-zero `(column, count)` entry in
    /// ascending column order. Together with [`CounterSlab::backend`]
    /// this captures the slab exactly — [`CounterSlab::restore`]
    /// rebuilds a bit-identical slab (same backend, same spill state,
    /// same counters, same [`CounterSlab::storage_words`]).
    pub fn export_state(&self) -> Option<SeededSlabState> {
        match &self.repr {
            Repr::Unseeded { .. } => None,
            Repr::Dense(counts) => {
                let entries = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(w, &c)| (w as u32, c))
                    .collect();
                Some((counts.len(), false, entries))
            }
            Repr::Sparse(s) => {
                let spilled = s.dense.is_some();
                let mut entries: Vec<(u32, u32)> = match &s.dense {
                    Some(d) => d
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != 0)
                        .map(|(w, &c)| (w as u32, c))
                        .collect(),
                    None => s.map.iter().map(|(&w, &c)| (w, c)).collect(),
                };
                entries.sort_unstable();
                Some((s.dim, spilled, entries))
            }
        }
    }

    /// Rebuilds a seeded slab from an [`CounterSlab::export_state`]
    /// view: `backend` selects the representation, `spilled` restores a
    /// sparse slab's dense spill storage (so the restored slab reports
    /// the exact pre-export [`CounterSlab::storage_words`] and spills —
    /// or doesn't — at the same future increments).
    ///
    /// # Panics
    /// Panics on [`SlabBackend::Auto`] (resolved before slabs exist)
    /// and on an entry column at or past `dim`.
    pub fn restore(backend: SlabBackend, dim: usize, spilled: bool, entries: &[(u32, u32)]) -> Self {
        assert!(
            entries.iter().all(|&(w, _)| (w as usize) < dim),
            "slab entry column out of bounds"
        );
        let repr = match backend {
            SlabBackend::Dense => {
                let mut counts = vec![0u32; dim];
                for &(w, c) in entries {
                    counts[w as usize] = c;
                }
                Repr::Dense(counts)
            }
            SlabBackend::Sparse => {
                let mut s = SparseCounters {
                    dim,
                    ..SparseCounters::default()
                };
                if spilled {
                    let mut d = vec![0u32; dim];
                    for &(w, c) in entries {
                        d[w as usize] = c;
                    }
                    s.dense = Some(d);
                } else {
                    s.map = entries.iter().map(|&(w, c)| (w, c)).collect();
                }
                Repr::Sparse(s)
            }
            SlabBackend::Auto => {
                panic!("Auto must be resolved to a concrete backend before constructing slabs")
            }
        };
        CounterSlab { repr }
    }
}

/// The sparse seeding pass: hash-counter increments per selected run's
/// CSR segment, spilling to a dense array the moment the population
/// crosses [`spill_threshold`] — checked per *entry*, not per run, so
/// even one long all-ones run cannot grow the map past the bound
/// before the spill triggers (identical increments either way).
fn seed_sparse<S: RowSelector>(
    mut sparse: SparseCounters,
    matrix: &BitMatrix,
    x: &S,
) -> (SparseCounters, usize) {
    let dim = matrix.dim();
    sparse.dim = dim;
    let spill_at = spill_threshold(dim);
    let mut inits = 0usize;
    x.for_each_selected_run(|start, end| {
        let segment = matrix.rows_segment(start, end);
        inits += segment.len();
        match &mut sparse.dense {
            Some(d) => {
                for &j in segment {
                    d[j as usize] += 1;
                }
            }
            None => {
                let mut idx = 0usize;
                while idx < segment.len() {
                    *sparse.map.entry(segment[idx]).or_insert(0) += 1;
                    idx += 1;
                    if sparse.map.len() > spill_at {
                        let mut d = vec![0u32; dim];
                        for (&k, &c) in &sparse.map {
                            d[k as usize] = c;
                        }
                        sparse.map.clear();
                        // Finish the segment on the dense path; later
                        // runs re-dispatch through the outer match.
                        for &r in &segment[idx..] {
                            d[r as usize] += 1;
                        }
                        sparse.dense = Some(d);
                        break;
                    }
                }
            }
        }
    });
    (sparse, inits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitVec, RleBitVec};

    const BACKENDS: [SlabBackend; 2] = [SlabBackend::Dense, SlabBackend::Sparse];

    #[test]
    fn slab_starts_unseeded_and_seeds_on_demand() {
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            assert!(!slab.is_seeded());
            assert_eq!(slab.storage_words(), 0);
            // 0 -> {1, 2}, 1 -> {0}, 3 -> {3}
            let m = BitMatrix::from_edges(5, &[(0, 1), (0, 2), (1, 0), (3, 3)]);
            let x = BitVec::from_indices(5, &[0, 1]);
            let inits = slab.seed(&m, &x);
            assert!(slab.is_seeded());
            assert_eq!(slab.backend(), backend);
            assert_eq!(inits, 3);
            assert_eq!(
                (0..5).map(|w| slab.count(w)).collect::<Vec<_>>(),
                vec![1, 1, 1, 0, 0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "Auto must be resolved")]
    fn auto_cannot_construct_a_slab() {
        let _ = CounterSlab::unseeded(SlabBackend::Auto);
    }

    #[test]
    fn decrement_reports_the_zero_crossing() {
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            let m = BitMatrix::from_edges(3, &[(0, 2), (1, 2)]);
            slab.seed(&m, &BitVec::ones(3));
            assert_eq!(slab.count(2), 2);
            assert_eq!(slab.decrement(2), 1);
            assert_eq!(slab.decrement(2), 0);
        }
    }

    #[test]
    fn reseeding_overwrites_previous_counters() {
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            let m = BitMatrix::from_edges(3, &[(0, 1), (2, 1)]);
            slab.seed(&m, &BitVec::ones(3));
            assert_eq!(slab.count(1), 2);
            slab.seed(&m, &BitVec::from_indices(3, &[0]));
            assert_eq!(slab.count(1), 1);
        }
    }

    #[test]
    fn dense_reseed_reuses_the_allocation() {
        let mut slab = CounterSlab::unseeded(SlabBackend::Dense);
        let m = BitMatrix::from_edges(200, &[(0, 1), (5, 199), (63, 64)]);
        slab.seed(&m, &BitVec::ones(200));
        let capacity = match &slab.repr {
            Repr::Dense(c) => c.capacity(),
            _ => unreachable!(),
        };
        // Same-dimension reseed: fill(0) in place, no reallocation.
        let inits = slab.seed(&m, &BitVec::from_indices(200, &[5]));
        assert_eq!(inits, 1);
        assert_eq!(slab.count(199), 1);
        assert_eq!(slab.count(1), 0, "stale counters were re-zeroed");
        // Smaller-dimension reseed also stays within the allocation.
        let small = BitMatrix::from_edges(100, &[(1, 2)]);
        slab.seed(&small, &BitVec::ones(100));
        assert_eq!(slab.count(2), 1);
        let after = match &slab.repr {
            Repr::Dense(c) => c.capacity(),
            _ => unreachable!(),
        };
        assert_eq!(capacity, after, "reseeding must not grow the allocation");
    }

    #[test]
    fn sparse_counts_one_word_per_supported_column() {
        let mut slab = CounterSlab::unseeded(SlabBackend::Sparse);
        // 1000 columns, support lands on exactly 3 of them.
        let m = BitMatrix::from_edges(1000, &[(0, 7), (1, 7), (2, 500), (3, 999)]);
        slab.seed(&m, &BitVec::ones(1000));
        assert_eq!(slab.count(7), 2);
        assert_eq!(slab.count(500), 1);
        assert_eq!(slab.count(4), 0, "unsupported columns read as zero");
        assert_eq!(slab.storage_words(), 3);
        let dense_cost = {
            let mut d = CounterSlab::unseeded(SlabBackend::Dense);
            d.seed(&m, &BitVec::ones(1000));
            d.storage_words()
        };
        assert_eq!(dense_cost, 500);
        assert!(slab.storage_words() * 100 < dense_cost);
    }

    #[test]
    fn sparse_spills_to_dense_and_never_costs_more() {
        // Every column of a 10-column matrix gets support: the sparse
        // population (10) exceeds the spill threshold (half the dense
        // word cost of 5, i.e. 2), so the slab spills and caps its
        // storage at the dense cost.
        let dim = 10;
        let edges: Vec<(u32, u32)> = (0..dim as u32).map(|j| (0, j)).collect();
        let m = BitMatrix::from_edges(dim, &edges);
        let mut sparse = CounterSlab::unseeded(SlabBackend::Sparse);
        sparse.seed(&m, &BitVec::ones(dim));
        assert_eq!(sparse.backend(), SlabBackend::Sparse);
        assert_eq!(sparse.storage_words(), dense_words(dim));
        for w in 0..dim {
            assert_eq!(sparse.count(w), 1);
        }
        assert_eq!(sparse.decrement(9), 0, "spilled slabs still decrement");
    }

    #[test]
    fn increment_reports_the_first_witness() {
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            let m = BitMatrix::from_edges(3, &[(0, 2)]);
            slab.seed(&m, &BitVec::ones(3));
            assert_eq!(slab.increment(1), 1, "0→1 is the re-activation signal");
            assert_eq!(slab.increment(1), 2);
            assert_eq!(slab.increment(2), 2, "existing support just grows");
            assert_eq!(slab.decrement(1), 1);
        }
    }

    #[test]
    fn increment_spills_a_sparse_slab_at_the_population_bound() {
        let dim = 100; // dense cost 50 words, spill threshold 25
        let m = BitMatrix::from_edges(dim, &[(0, 0)]);
        let mut slab = CounterSlab::unseeded(SlabBackend::Sparse);
        slab.seed(&m, &BitVec::ones(dim));
        assert_eq!(slab.storage_words(), 1);
        for w in 1..40 {
            assert_eq!(slab.increment(w), 1);
        }
        // Population 40 > 25: spilled, capped at the dense cost.
        assert_eq!(slab.storage_words(), dense_words(dim));
        assert_eq!(slab.backend(), SlabBackend::Sparse);
        for w in 0..40 {
            assert_eq!(slab.count(w), 1, "column {w} survives the spill");
        }
        assert_eq!(slab.increment(0), 2, "spilled slabs still increment");
    }

    #[test]
    fn backends_agree_on_counts_increments_and_decrements() {
        let m = BitMatrix::from_edges(130, &[(0, 64), (1, 64), (63, 129), (64, 0), (129, 64)]);
        for x in [
            BitVec::ones(130),
            BitVec::from_indices(130, &[0, 1, 129]),
            BitVec::zeros(130),
        ] {
            let mut dense = CounterSlab::unseeded(SlabBackend::Dense);
            let mut sparse = CounterSlab::unseeded(SlabBackend::Sparse);
            assert_eq!(dense.seed(&m, &x), sparse.seed(&m, &x));
            for w in 0..130 {
                assert_eq!(dense.count(w), sparse.count(w), "column {w}");
            }
            if dense.count(64) > 0 {
                assert_eq!(dense.decrement(64), sparse.decrement(64));
            }
            assert!(sparse.storage_words() <= dense.storage_words());
        }
    }

    #[test]
    fn rle_selectors_seed_identically_to_dense_selectors() {
        let m = BitMatrix::from_edges(130, &[(0, 1), (1, 1), (2, 5), (64, 5), (65, 129)]);
        let indices = [0u32, 1, 2, 64, 65, 100];
        let dense_x = BitVec::from_indices(130, &indices);
        let rle_x = RleBitVec::from_indices(130, &indices);
        for backend in BACKENDS {
            let mut a = CounterSlab::unseeded(backend);
            let mut b = CounterSlab::unseeded(backend);
            assert_eq!(a.seed(&m, &dense_x), b.seed(&m, &rle_x));
            for w in 0..130 {
                assert_eq!(a.count(w), b.count(w), "column {w} ({backend:?})");
            }
            assert_eq!(a.storage_words(), b.storage_words());
        }
    }

    #[test]
    fn unseed_reverses_a_lazy_seed_promotion() {
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            let m = BitMatrix::from_edges(5, &[(0, 1), (0, 2), (1, 0)]);
            slab.seed(&m, &BitVec::ones(5));
            assert!(slab.is_seeded());
            slab.unseed();
            assert!(!slab.is_seeded());
            assert_eq!(slab.storage_words(), 0);
            assert_eq!(slab.backend(), backend, "backend survives the unseed");
            // Re-seeding after an unseed reproduces the original state.
            let inits = slab.seed(&m, &BitVec::ones(5));
            assert_eq!(inits, 3);
            assert_eq!(slab.count(1), 1);
        }
    }

    #[test]
    fn export_restore_round_trips_every_representation() {
        // Unseeded slabs export None for either backend.
        for backend in BACKENDS {
            assert_eq!(CounterSlab::unseeded(backend).export_state(), None);
        }
        let m = BitMatrix::from_edges(100, &[(0, 3), (1, 3), (2, 97)]);
        for backend in BACKENDS {
            let mut slab = CounterSlab::unseeded(backend);
            slab.seed(&m, &BitVec::ones(100));
            let (dim, spilled, entries) = slab.export_state().unwrap();
            assert_eq!(dim, 100);
            assert!(!spilled);
            assert_eq!(entries, vec![(3, 2), (97, 1)]);
            let restored = CounterSlab::restore(backend, dim, spilled, &entries);
            assert_eq!(restored.backend(), backend);
            assert_eq!(restored.storage_words(), slab.storage_words());
            for w in 0..100 {
                assert_eq!(restored.count(w), slab.count(w), "column {w}");
            }
        }
        // A spilled sparse slab restores as spilled: dense storage cost,
        // still reporting the sparse backend.
        let dim = 10;
        let edges: Vec<(u32, u32)> = (0..dim as u32).map(|j| (0, j)).collect();
        let wide = BitMatrix::from_edges(dim, &edges);
        let mut sparse = CounterSlab::unseeded(SlabBackend::Sparse);
        sparse.seed(&wide, &BitVec::ones(dim));
        let (d, spilled, entries) = sparse.export_state().unwrap();
        assert!(spilled);
        let restored = CounterSlab::restore(SlabBackend::Sparse, d, spilled, &entries);
        assert_eq!(restored.backend(), SlabBackend::Sparse);
        assert_eq!(restored.storage_words(), dense_words(dim));
        for w in 0..dim {
            assert_eq!(restored.count(w), 1);
        }
    }

    #[test]
    fn restored_slabs_keep_mutating_like_the_original() {
        let m = BitMatrix::from_edges(100, &[(0, 0), (1, 1)]);
        for backend in BACKENDS {
            let mut a = CounterSlab::unseeded(backend);
            a.seed(&m, &BitVec::ones(100));
            let (dim, spilled, entries) = a.export_state().unwrap();
            let mut b = CounterSlab::restore(backend, dim, spilled, &entries);
            // Drive both through the same mutation trace, incl. enough
            // increments to cross a sparse slab's spill threshold.
            for w in 0..40 {
                assert_eq!(a.increment(w), b.increment(w), "column {w}");
            }
            assert_eq!(a.decrement(0), b.decrement(0));
            assert_eq!(a.storage_words(), b.storage_words());
            assert_eq!(a.export_state(), b.export_state());
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [SlabBackend::Dense, SlabBackend::Sparse, SlabBackend::Auto] {
            assert_eq!(SlabBackend::from_name(backend.name()), Some(backend));
        }
        assert_eq!(SlabBackend::from_name("rle"), None);
    }
}
