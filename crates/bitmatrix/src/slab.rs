//! Support-counter slabs for delta-counting fixpoint engines.
//!
//! A [`CounterSlab`] holds one dense `u32` counter per matrix column —
//! the per-(inequality, candidate) *support* array of an HHK-style
//! counting engine: `slab[w] = |column w of M ∩ χ(source)|`. Slabs are
//! plain owned data (`Send + Sync`), which is what makes the sharded
//! parallel drain safe: support arrays are disjoint *per inequality*, so
//! a drain round can `std::mem::take` each touched inequality's slab,
//! hand it to a scoped worker thread, and put it back at the merge
//! point — no locks, no atomics, no sharing.
//!
//! A slab starts *unseeded* (no storage) and is seeded on demand from a
//! matrix and a selector vector ([`CounterSlab::seed`]); engines use the
//! unseeded state to defer seeding cost for inequalities that are never
//! violated.

use crate::{BitMatrix, RowSelector};

/// A dense slab of per-column support counters, lazily seeded.
#[derive(Debug, Clone, Default)]
pub struct CounterSlab {
    counts: Vec<u32>,
    seeded: bool,
}

impl CounterSlab {
    /// An unseeded slab: no storage, no counters.
    pub fn unseeded() -> Self {
        CounterSlab::default()
    }

    /// `true` once [`CounterSlab::seed`] ran.
    #[inline]
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// (Re-)seeds the slab to `slab[w] = |column w of matrix ∩ x|` via
    /// [`BitMatrix::count_into`]. The selector is any [`RowSelector`] —
    /// dense or run-length encoded χ alike, with identical increment
    /// counts. Returns the number of counter increments performed (the
    /// seeding work measure).
    ///
    /// # Panics
    /// Panics if `x` does not have the matrix dimension.
    pub fn seed<S: RowSelector>(&mut self, matrix: &BitMatrix, x: &S) -> usize {
        self.counts.clear();
        self.counts.resize(matrix.dim(), 0);
        self.seeded = true;
        matrix.count_into(x, &mut self.counts)
    }

    /// Current support of candidate `w`.
    ///
    /// # Panics
    /// Panics if the slab is unseeded or `w` is out of bounds.
    #[inline]
    pub fn count(&self, w: usize) -> u32 {
        self.counts[w]
    }

    /// Decrements the support of candidate `w` and returns the new
    /// value; `0` means the candidate just lost its last witness.
    ///
    /// # Panics
    /// Panics if the slab is unseeded or `w` is out of bounds; debug
    /// builds additionally assert against underflow.
    #[inline]
    pub fn decrement(&mut self, w: usize) -> u32 {
        let c = &mut self.counts[w];
        debug_assert!(*c > 0, "support underflow on candidate {w}");
        *c -= 1;
        *c
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    #[test]
    fn slab_starts_unseeded_and_seeds_on_demand() {
        let mut slab = CounterSlab::unseeded();
        assert!(!slab.is_seeded());
        // 0 -> {1, 2}, 1 -> {0}, 3 -> {3}
        let m = BitMatrix::from_edges(5, &[(0, 1), (0, 2), (1, 0), (3, 3)]);
        let x = BitVec::from_indices(5, &[0, 1]);
        let inits = slab.seed(&m, &x);
        assert!(slab.is_seeded());
        assert_eq!(inits, 3);
        assert_eq!(
            (0..5).map(|w| slab.count(w)).collect::<Vec<_>>(),
            vec![1, 1, 1, 0, 0]
        );
    }

    #[test]
    fn decrement_reports_the_zero_crossing() {
        let mut slab = CounterSlab::unseeded();
        let m = BitMatrix::from_edges(3, &[(0, 2), (1, 2)]);
        slab.seed(&m, &BitVec::ones(3));
        assert_eq!(slab.count(2), 2);
        assert_eq!(slab.decrement(2), 1);
        assert_eq!(slab.decrement(2), 0);
    }

    #[test]
    fn reseeding_overwrites_previous_counters() {
        let mut slab = CounterSlab::unseeded();
        let m = BitMatrix::from_edges(3, &[(0, 1), (2, 1)]);
        slab.seed(&m, &BitVec::ones(3));
        assert_eq!(slab.count(1), 2);
        slab.seed(&m, &BitVec::from_indices(3, &[0]));
        assert_eq!(slab.count(1), 1);
    }
}
