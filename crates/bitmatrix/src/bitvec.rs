//! Dense, fixed-length bit vectors.
//!
//! [`BitVec`] is the representation of the characteristic function rows
//! `χ_S(v)` of Sect. 3.2: one bit per data-graph node. All mutating set
//! operations report whether they changed the vector, which is what the
//! fixpoint solver uses to decide when inequalities must be re-marked
//! unstable.
//!
//! The word-level inner loops (`∧`, `∨`, `∧¬`, subset, popcount, drain)
//! route through the pluggable [`kernels`](crate::kernels) layer, so the
//! per-solve [`KernelBackend`](crate::KernelBackend) selection applies
//! to every `BitVec` operation uniformly.

use crate::kernels;

pub(crate) const BLOCK_BITS: usize = 64;

/// A fixed-length vector of bits backed by `u64` blocks.
///
/// Bits beyond `len` inside the last block are always kept at zero, so
/// whole-block operations (`count_ones`, equality, subset tests) need no
/// special casing.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    blocks: Box<[u64]>,
    len: usize,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        let nblocks = len.div_ceil(BLOCK_BITS);
        BitVec {
            blocks: vec![0u64; nblocks].into_boxed_slice(),
            len,
        }
    }

    /// Creates a vector of `len` one bits (the vector `1` of Eq. (12)).
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        v.set_all();
        v
    }

    /// Creates a vector with exactly the given bit indices set.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            v.set(i as usize);
        }
        v
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff no bit is set (the empty relation row).
    #[inline]
    pub fn none_set(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `true` iff at least one bit is set.
    #[inline]
    pub fn any_set(&self) -> bool {
        !self.none_set()
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of bounds {}", self.len);
        (self.blocks[i / BLOCK_BITS] >> (i % BLOCK_BITS)) & 1 == 1
    }

    /// Sets bit `i` to one.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds {}", self.len);
        self.blocks[i / BLOCK_BITS] |= 1u64 << (i % BLOCK_BITS);
    }

    /// Sets bit `i` to zero.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds {}", self.len);
        self.blocks[i / BLOCK_BITS] &= !(1u64 << (i % BLOCK_BITS));
    }

    /// Sets every bit to one.
    pub fn set_all(&mut self) {
        self.blocks.fill(!0u64);
        self.mask_tail();
    }

    /// Sets every bit to zero.
    pub fn clear_all(&mut self) {
        self.blocks.fill(0);
    }

    /// Number of set bits (`|χ_S(v)|`), used by the adaptive row/column
    /// strategy choice.
    #[inline]
    pub fn count_ones(&self) -> usize {
        kernels::count_ones_words(&self.blocks)
    }

    /// In-place intersection `self ∧= other`; returns `true` iff `self`
    /// changed. This is the update step 2(b) of the solver algorithm.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) -> bool {
        self.check_len(other);
        kernels::and_assign_words(&mut self.blocks, &other.blocks)
    }

    /// In-place union `self ∨= other`; returns `true` iff `self` changed.
    pub fn or_assign(&mut self, other: &BitVec) -> bool {
        self.check_len(other);
        kernels::or_assign_words(&mut self.blocks, &other.blocks)
    }

    /// In-place intersection that *records* the removals: `self ∧= other`,
    /// appending the index of every bit this clears to `removed` (the
    /// buffer is not cleared first, so callers can accumulate deltas from
    /// several intersections into one reusable buffer). Returns `true`
    /// iff `self` changed.
    ///
    /// This is the removal-event primitive of the delta-counting fixpoint
    /// engine: instead of re-evaluating an inequality after a shrink, the
    /// engine drains exactly the cleared bits into its worklist.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn drain_cleared(&mut self, other: &BitVec, removed: &mut Vec<u32>) -> bool {
        self.check_len(other);
        kernels::drain_cleared_words(&mut self.blocks, &other.blocks, removed)
    }

    /// In-place difference `self ∧= ¬other`; returns `true` iff `self`
    /// changed.
    pub fn and_not_assign(&mut self, other: &BitVec) -> bool {
        self.check_len(other);
        kernels::and_not_assign_words(&mut self.blocks, &other.blocks)
    }

    /// Subset test `self ≤ other` (component-wise, as in the inequalities
    /// of Eq. (10)/(11)).
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.check_len(other);
        kernels::is_subset_words(&self.blocks, &other.blocks)
    }

    /// `true` iff `self ∩ other ≠ ∅` (the test of Eq. (4)).
    pub fn intersects(&self, other: &BitVec) -> bool {
        self.check_len(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (bi, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(bi * BLOCK_BITS + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over the indices of set bits, in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set-bit indices into a vector (`u32` indices, matching
    /// the node-id width used throughout the workspace).
    ///
    /// Walks whole blocks with the same all-zero block skip the dense
    /// fast path of `BitMatrix::multiply_into` uses (plus an all-ones
    /// run emit), instead of probing bit by bit through the iterator.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (bi, &block) in self.blocks.iter().enumerate() {
            if block == 0 {
                continue;
            }
            let base = (bi * BLOCK_BITS) as u32;
            if block == !0u64 {
                out.extend(base..base + BLOCK_BITS as u32);
                continue;
            }
            let mut b = block;
            while b != 0 {
                out.push(base + b.trailing_zeros());
                b &= b - 1;
            }
        }
        out
    }

    /// Copies `other` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.check_len(other);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Sets the bits listed in `indices` (used for OR-ing a compressed
    /// matrix row into an accumulator).
    #[inline]
    pub fn set_indices(&mut self, indices: &[u32]) {
        #[cfg(debug_assertions)]
        for &i in indices {
            debug_assert!((i as usize) < self.len);
        }
        kernels::or_scatter(&mut self.blocks, indices);
    }

    /// `true` iff any index in the sorted run is a set bit
    /// (`row ∩ self ≠ ∅` for a compressed matrix row).
    #[inline]
    pub fn intersects_indices(&self, indices: &[u32]) -> bool {
        indices.iter().any(|&i| self.get(i as usize))
    }

    /// Sets every bit in `[start, end)` to one — the dense counterpart
    /// of appending one RLE run, used when expanding run-length encoded
    /// χ vectors into dense accumulators.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "range [{start}, {end}) out of bounds");
        if start == end {
            return;
        }
        let (first, last) = (start / BLOCK_BITS, (end - 1) / BLOCK_BITS);
        let head = !0u64 << (start % BLOCK_BITS);
        let tail = !0u64 >> (BLOCK_BITS - 1 - (end - 1) % BLOCK_BITS);
        if first == last {
            self.blocks[first] |= head & tail;
        } else {
            self.blocks[first] |= head;
            for b in &mut self.blocks[first + 1..last] {
                *b = !0u64;
            }
            self.blocks[last] |= tail;
        }
    }

    /// `true` iff some bit in `[start, end)` is set. Walks whole blocks,
    /// so run-length encoded vectors can test their gaps against a dense
    /// vector in O(range / 64).
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn any_in_range(&self, start: usize, end: usize) -> bool {
        assert!(start <= end && end <= self.len, "range [{start}, {end}) out of bounds");
        if start == end {
            return false;
        }
        let (first, last) = (start / BLOCK_BITS, (end - 1) / BLOCK_BITS);
        let head = !0u64 << (start % BLOCK_BITS);
        let tail = !0u64 >> (BLOCK_BITS - 1 - (end - 1) % BLOCK_BITS);
        if first == last {
            return self.blocks[first] & head & tail != 0;
        }
        self.blocks[first] & head != 0
            || self.blocks[first + 1..last].iter().any(|&b| b != 0)
            || self.blocks[last] & tail != 0
    }

    /// `true` iff every bit in `[start, end)` is set — the dense subset
    /// test for one RLE run.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn all_in_range(&self, start: usize, end: usize) -> bool {
        assert!(start <= end && end <= self.len, "range [{start}, {end}) out of bounds");
        if start == end {
            return true;
        }
        let (first, last) = (start / BLOCK_BITS, (end - 1) / BLOCK_BITS);
        let head = !0u64 << (start % BLOCK_BITS);
        let tail = !0u64 >> (BLOCK_BITS - 1 - (end - 1) % BLOCK_BITS);
        if first == last {
            let mask = head & tail;
            return self.blocks[first] & mask == mask;
        }
        self.blocks[first] & head == head
            && self.blocks[first + 1..last].iter().all(|&b| b == !0u64)
            && self.blocks[last] & tail == tail
    }

    /// Heap bytes held by the block storage.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u64>()
    }

    /// Storage words (`u64` blocks) — the dense side of the χ-storage
    /// accounting that `BENCH_chi.json` reports per backend.
    pub fn storage_words(&self) -> usize {
        self.blocks.len()
    }

    /// The raw `u64` blocks (low bit of block 0 is bit 0); tail bits
    /// beyond `len` are guaranteed zero. Used by the dense fast path of
    /// `BitMatrix::multiply_into`.
    #[inline]
    pub(crate) fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable view of the raw blocks, for callers that hoist the kernel
    /// dispatch out of their own loops (`BitMatrix::multiply_into`).
    /// Writers must preserve the zero-tail invariant.
    #[inline]
    pub(crate) fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    fn mask_tail(&mut self) {
        let rem = self.len % BLOCK_BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[inline]
    fn check_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit-vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitVec")
            .field("len", &self.len)
            .field("ones", &self.to_indices())
            .finish()
    }
}

/// Iterator over set-bit indices of a [`BitVec`].
pub struct Ones<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx * BLOCK_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_bits_set() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.none_set());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.first_one(), None);
    }

    #[test]
    fn ones_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 200] {
            let v = BitVec::ones(len);
            assert_eq!(v.count_ones(), len, "len={len}");
            assert_eq!(v.iter_ones().count(), len);
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0);
        v.set(63);
        v.set(64);
        v.set(99);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        v.clear(63);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut v = BitVec::zeros(10);
        v.set(10);
    }

    #[test]
    fn and_assign_reports_change() {
        let mut a = BitVec::from_indices(70, &[1, 5, 69]);
        let b = BitVec::from_indices(70, &[1, 5, 69]);
        assert!(!a.and_assign(&b), "intersection with superset is a no-op");
        let c = BitVec::from_indices(70, &[5]);
        assert!(a.and_assign(&c));
        assert_eq!(a.to_indices(), vec![5]);
    }

    #[test]
    fn or_and_not_assign() {
        let mut a = BitVec::from_indices(70, &[1]);
        let b = BitVec::from_indices(70, &[2, 69]);
        assert!(a.or_assign(&b));
        assert_eq!(a.to_indices(), vec![1, 2, 69]);
        assert!(!a.or_assign(&b));
        assert!(a.and_not_assign(&b));
        assert_eq!(a.to_indices(), vec![1]);
        assert!(!a.and_not_assign(&b));
    }

    #[test]
    fn drain_cleared_records_exactly_the_removed_bits() {
        let mut a = BitVec::from_indices(130, &[1, 63, 64, 100, 129]);
        let b = BitVec::from_indices(130, &[1, 64, 77]);
        let mut removed = vec![42u32]; // pre-existing content must survive
        assert!(a.drain_cleared(&b, &mut removed));
        assert_eq!(a.to_indices(), vec![1, 64]);
        assert_eq!(removed, vec![42, 63, 100, 129]);
        // A second drain against the same superset is a recorded no-op.
        removed.clear();
        assert!(!a.drain_cleared(&b, &mut removed));
        assert!(removed.is_empty());
    }

    #[test]
    fn subset_and_intersects() {
        let small = BitVec::from_indices(100, &[3, 50]);
        let big = BitVec::from_indices(100, &[3, 50, 99]);
        let other = BitVec::from_indices(100, &[4]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.intersects(&big));
        assert!(!small.intersects(&other));
        let empty = BitVec::zeros(100);
        assert!(empty.is_subset_of(&small));
        assert!(!empty.intersects(&small));
    }

    #[test]
    fn iter_ones_crosses_block_boundaries() {
        let idx = [0u32, 1, 63, 64, 65, 127, 128, 191];
        let v = BitVec::from_indices(192, &idx);
        assert_eq!(v.to_indices(), idx.to_vec());
    }

    #[test]
    fn first_one_finds_lowest() {
        let v = BitVec::from_indices(200, &[130, 140]);
        assert_eq!(v.first_one(), Some(130));
    }

    #[test]
    fn set_indices_and_intersects_indices() {
        let mut v = BitVec::zeros(128);
        v.set_indices(&[7, 64, 100]);
        assert_eq!(v.to_indices(), vec![7, 64, 100]);
        assert!(v.intersects_indices(&[1, 2, 100]));
        assert!(!v.intersects_indices(&[1, 2, 3]));
        assert!(!v.intersects_indices(&[]));
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitVec::from_indices(70, &[1, 2, 3]);
        let b = BitVec::from_indices(70, &[69]);
        a.copy_from(&b);
        assert_eq!(a.to_indices(), vec![69]);
    }

    #[test]
    fn zero_length_vector_is_well_behaved() {
        let mut v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.none_set());
        v.set_all();
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.iter_ones().count(), 0);
    }

    #[test]
    fn set_range_spans_blocks() {
        for (start, end) in [(0, 0), (3, 9), (60, 70), (0, 130), (63, 64), (64, 128), (129, 130)] {
            let mut v = BitVec::zeros(130);
            v.set_range(start, end);
            for i in 0..130 {
                assert_eq!(v.get(i), (start..end).contains(&i), "bit {i} of [{start},{end})");
            }
        }
    }

    #[test]
    fn range_queries_match_per_bit_scans() {
        let v = BitVec::from_indices(130, &[3, 4, 5, 64, 65, 129]);
        for (start, end) in [(0, 3), (3, 6), (4, 64), (6, 64), (64, 66), (66, 129), (0, 130), (7, 7)] {
            let any = (start..end).any(|i| v.get(i));
            let all = (start..end).all(|i| v.get(i));
            assert_eq!(v.any_in_range(start, end), any, "[{start},{end})");
            assert_eq!(v.all_in_range(start, end), all, "[{start},{end})");
        }
    }

    #[test]
    fn set_all_masks_tail_bits() {
        let mut v = BitVec::zeros(65);
        v.set_all();
        assert_eq!(v.count_ones(), 65);
        // Equality with an independently built all-ones vector must hold,
        // which requires the tail of the last block to stay masked.
        assert_eq!(v, BitVec::ones(65));
    }
}
