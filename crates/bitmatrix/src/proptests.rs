//! Property-based tests for the bit kernel: algebraic laws of the vector
//! operations, equivalence of the two `×b` evaluation strategies,
//! dense-vs-RLE agreement of every χ-storage verb, and differential
//! fuzzing of every word-kernel backend against `Scalar`.

use crate::{
    kernels, BitMatrix, BitVec, ChiBackend, ChiRead, ChiVec, CounterSlab, RleBitVec, RowSelector,
    SlabBackend,
};
use proptest::prelude::*;

const LEN: usize = 150;

fn arb_bitvec() -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(0u32..LEN as u32, 0..60)
        .prop_map(|idx| BitVec::from_indices(LEN, &idx))
}

fn arb_matrix() -> impl Strategy<Value = BitMatrix> {
    proptest::collection::vec((0u32..LEN as u32, 0u32..LEN as u32), 0..400)
        .prop_map(|edges| BitMatrix::from_edges(LEN, &edges))
}

/// A selector that is mostly ones (a few bits cleared), exercising the
/// dense block-skip fast paths — including whole all-ones blocks.
fn arb_dense_bitvec() -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(0u32..LEN as u32, 0..12).prop_map(|cleared| {
        let mut v = BitVec::ones(LEN);
        for i in cleared {
            v.clear(i as usize);
        }
        v
    })
}

/// Reference implementation of the counter-initializing multiply: one
/// increment per (set bit of `x`, row entry) pair.
fn naive_count_into(m: &BitMatrix, x: &BitVec) -> (Vec<u32>, usize) {
    let mut counts = vec![0u32; m.dim()];
    let mut increments = 0usize;
    for i in 0..m.dim() {
        if x.get(i) {
            for &j in m.row(i) {
                counts[j as usize] += 1;
            }
            increments += m.row_len(i);
        }
    }
    (counts, increments)
}

/// Reference implementation of `x ×b A` straight from the footnote-2
/// definition: `out(j) = 1` iff `∃i. x(i) ∧ A(i,j)`.
fn naive_multiply(m: &BitMatrix, x: &BitVec) -> BitVec {
    let mut out = BitVec::zeros(m.dim());
    for i in 0..m.dim() {
        if x.get(i) {
            for &j in m.row(i) {
                out.set(j as usize);
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn and_is_intersection(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        c.and_assign(&b);
        for i in 0..LEN {
            prop_assert_eq!(c.get(i), a.get(i) && b.get(i));
        }
        prop_assert!(c.is_subset_of(&a) && c.is_subset_of(&b));
    }

    #[test]
    fn or_is_union(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        c.or_assign(&b);
        for i in 0..LEN {
            prop_assert_eq!(c.get(i), a.get(i) || b.get(i));
        }
        prop_assert!(a.is_subset_of(&c) && b.is_subset_of(&c));
    }

    #[test]
    fn and_not_is_difference(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        c.and_not_assign(&b);
        for i in 0..LEN {
            prop_assert_eq!(c.get(i), a.get(i) && !b.get(i));
        }
        prop_assert!(!c.intersects(&b));
    }

    #[test]
    fn change_reporting_is_accurate(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        let changed = c.and_assign(&b);
        prop_assert_eq!(changed, c != a);
    }

    #[test]
    fn subset_iff_intersection_is_identity(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        c.and_assign(&b);
        prop_assert_eq!(a.is_subset_of(&b), c == a);
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in arb_bitvec(), b in arb_bitvec()) {
        let mut c = a.clone();
        c.and_assign(&b);
        prop_assert_eq!(a.intersects(&b), c.any_set());
    }

    #[test]
    fn iter_ones_round_trips(a in arb_bitvec()) {
        let idx = a.to_indices();
        let rebuilt = BitVec::from_indices(LEN, &idx);
        prop_assert_eq!(&rebuilt, &a);
        prop_assert_eq!(idx.len(), a.count_ones());
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending, no dups");
    }

    #[test]
    fn rowwise_multiply_matches_definition(m in arb_matrix(), x in arb_bitvec()) {
        let mut out = BitVec::zeros(LEN);
        m.multiply_into(&x, &mut out);
        prop_assert_eq!(out, naive_multiply(&m, &x));
    }

    #[test]
    fn columnwise_equals_rowwise(m in arb_matrix(), x in arb_bitvec(), keep in arb_bitvec()) {
        // Row-wise: keep ∧ (x ×b m)
        let mut product = BitVec::zeros(LEN);
        m.multiply_into(&x, &mut product);
        let mut expected = keep.clone();
        expected.and_assign(&product);
        // Column-wise via the transpose.
        let t = m.transpose();
        let mut actual = keep.clone();
        let mut removed = Vec::new();
        t.retain_intersecting_rows(&mut actual, &x, &mut removed);
        prop_assert_eq!(&actual, &expected);
        // The scratch reports exactly keep \ result.
        let mut diff = keep.clone();
        diff.and_not_assign(&actual);
        prop_assert_eq!(removed, diff.to_indices());
    }

    /// `drain_cleared` is `and_assign` plus an exact removal log.
    #[test]
    fn drain_cleared_matches_and_assign(a in arb_bitvec(), b in arb_bitvec()) {
        let mut drained = a.clone();
        let mut removed = Vec::new();
        let changed = drained.drain_cleared(&b, &mut removed);
        let mut anded = a.clone();
        let changed_ref = anded.and_assign(&b);
        prop_assert_eq!(&drained, &anded);
        prop_assert_eq!(changed, changed_ref);
        let mut diff = a.clone();
        diff.and_not_assign(&b);
        prop_assert_eq!(removed, diff.to_indices());
    }

    /// The counter-init multiply counts exactly |column ∩ x| per column,
    /// and a column's count is zero iff the product bit is zero.
    #[test]
    fn count_into_matches_column_intersections(m in arb_matrix(), x in arb_bitvec()) {
        let mut counts = vec![0u32; LEN];
        let increments = m.count_into(&x, &mut counts);
        prop_assert_eq!(increments, counts.iter().map(|&c| c as usize).sum::<usize>());
        let t = m.transpose();
        let mut product = BitVec::zeros(LEN);
        m.multiply_into(&x, &mut product);
        for (j, &c) in counts.iter().enumerate() {
            // column j of m == row j of the transpose
            let expected = t.row(j).iter().filter(|&&i| x.get(i as usize)).count();
            prop_assert_eq!(c as usize, expected);
            prop_assert_eq!(c > 0, product.get(j));
        }
    }

    /// The dense block-skip fast path of `count_into` performs exactly
    /// the increments of the naive per-bit definition — for sparse,
    /// dense and all-ones selectors alike.
    #[test]
    fn count_into_fast_path_matches_naive(
        m in arb_matrix(),
        sparse in arb_bitvec(),
        dense in arb_dense_bitvec(),
    ) {
        for x in [&sparse, &dense, &BitVec::ones(LEN), &BitVec::zeros(LEN)] {
            let (expected, expected_increments) = naive_count_into(&m, x);
            let mut counts = vec![0u32; LEN];
            let increments = m.count_into(x, &mut counts);
            prop_assert_eq!(&counts, &expected, "selector {:?}", x);
            prop_assert_eq!(increments, expected_increments);
        }
    }

    #[test]
    fn transpose_flips_entries(m in arb_matrix()) {
        let t = m.transpose();
        for (i, j) in m.entries() {
            prop_assert!(t.get(j as usize, i as usize));
        }
        prop_assert_eq!(m.nnz(), t.nnz());
    }

    #[test]
    fn row_summary_matches_rows(m in arb_matrix()) {
        for i in 0..m.dim() {
            prop_assert_eq!(m.row_summary().get(i), !m.row(i).is_empty());
        }
    }

    /// RLE ↔ dense conversion is lossless.
    #[test]
    fn rle_round_trips(a in arb_bitvec()) {
        let rle = RleBitVec::from_bitvec(&a);
        prop_assert_eq!(rle.to_bitvec(), a.clone());
        prop_assert_eq!(rle.count_ones(), a.count_ones());
        prop_assert_eq!(rle.iter_ones().collect::<Vec<_>>(), a.iter_ones().collect::<Vec<_>>());
        for i in 0..LEN {
            prop_assert_eq!(rle.get(i), a.get(i));
        }
    }

    /// Every RLE set operation agrees with its dense counterpart.
    #[test]
    fn rle_operations_match_dense(a in arb_bitvec(), b in arb_bitvec()) {
        let (ra, rb) = (RleBitVec::from_bitvec(&a), RleBitVec::from_bitvec(&b));
        let mut and_dense = a.clone();
        and_dense.and_assign(&b);
        prop_assert_eq!(ra.and(&rb).to_bitvec(), and_dense);
        let mut or_dense = a.clone();
        or_dense.or_assign(&b);
        prop_assert_eq!(ra.or(&rb).to_bitvec(), or_dense);
        prop_assert_eq!(ra.is_subset_of(&rb), a.is_subset_of(&b));
        prop_assert_eq!(ra.intersects(&rb), a.intersects(&b));
    }

    /// Runs are maximal: consecutive indices never split across runs, so
    /// the run count is exactly the number of 0→1 transitions.
    #[test]
    fn rle_runs_are_maximal(a in arb_bitvec()) {
        let rle = RleBitVec::from_bitvec(&a);
        let mut transitions = 0usize;
        let mut prev = false;
        for i in 0..LEN {
            let cur = a.get(i);
            if cur && !prev {
                transitions += 1;
            }
            prev = cur;
        }
        prop_assert_eq!(rle.num_runs(), transitions);
    }

    /// Every in-place RLE verb matches its dense counterpart — result
    /// bits, change flag, and (for the draining verb) the exact removal
    /// order.
    #[test]
    fn rle_in_place_verbs_match_dense(a in arb_bitvec(), b in arb_bitvec(), i in 0usize..LEN) {
        // and_assign (RLE × RLE).
        let mut rd = a.clone();
        let dense_changed = rd.and_assign(&b);
        let mut rr = RleBitVec::from_bitvec(&a);
        let rle_changed = rr.and_assign(&RleBitVec::from_bitvec(&b));
        prop_assert_eq!(rr.to_bitvec(), rd.clone());
        prop_assert_eq!(rle_changed, dense_changed);
        // and_assign_dense (RLE × dense).
        let mut rr = RleBitVec::from_bitvec(&a);
        prop_assert_eq!(rr.and_assign_dense(&b), dense_changed);
        prop_assert_eq!(rr.to_bitvec(), rd);
        // drain_cleared: same survivors, same removal log, same order.
        let mut dd = a.clone();
        let mut dense_removed = vec![7u32];
        let dc = dd.drain_cleared(&b, &mut dense_removed);
        let mut rr = RleBitVec::from_bitvec(&a);
        let mut rle_removed = vec![7u32];
        let rc = rr.drain_cleared(&RleBitVec::from_bitvec(&b), &mut rle_removed);
        prop_assert_eq!(rr.to_bitvec(), dd);
        prop_assert_eq!(rle_removed, dense_removed);
        prop_assert_eq!(rc, dc);
        // clear: run splitting equals dense bit clearing.
        let mut dd = a.clone();
        dd.clear(i);
        let mut rr = RleBitVec::from_bitvec(&a);
        rr.clear(i);
        prop_assert_eq!(rr.to_bitvec(), dd);
        // Dense-side subset / cover / equality views.
        let rle_a = RleBitVec::from_bitvec(&a);
        prop_assert_eq!(rle_a.is_subset_of_dense(&b), a.is_subset_of(&b));
        prop_assert_eq!(rle_a.covers_dense(&b), b.is_subset_of(&a));
        // or_into is dense or_assign.
        let mut dense_acc = b.clone();
        dense_acc.or_assign(&a);
        let mut rle_acc = b.clone();
        rle_a.or_into(&mut rle_acc);
        prop_assert_eq!(rle_acc, dense_acc);
    }

    /// RLE and dense selectors drive identical multiplications: same
    /// product, same row count, same counter increments, same probes.
    #[test]
    fn rle_selector_matches_dense_selector(m in arb_matrix(), x in arb_bitvec(), keep in arb_bitvec()) {
        let rle_x = RleBitVec::from_bitvec(&x);
        let mut dense_out = BitVec::zeros(LEN);
        let dense_rows = m.multiply_into(&x, &mut dense_out);
        let mut rle_out = BitVec::zeros(LEN);
        let rle_rows = m.multiply_into(&rle_x, &mut rle_out);
        prop_assert_eq!(&rle_out, &dense_out);
        prop_assert_eq!(rle_rows, dense_rows);

        let mut dense_counts = vec![0u32; LEN];
        let dense_incs = m.count_into(&x, &mut dense_counts);
        let mut rle_counts = vec![0u32; LEN];
        let rle_incs = m.count_into(&rle_x, &mut rle_counts);
        prop_assert_eq!(rle_counts, dense_counts);
        prop_assert_eq!(rle_incs, dense_incs);

        // intersects_indices over sorted matrix rows.
        for j in 0..LEN {
            prop_assert_eq!(
                rle_x.intersects_indices(m.row(j)),
                x.intersects_indices(m.row(j)),
                "row {}", j
            );
        }

        // The ChiVec column-wise probe matches the dense one for both
        // backends: same survivors, same removal log, same probe count.
        let t = m.transpose();
        let mut dense_keep = keep.clone();
        let mut dense_removed = Vec::new();
        let dense_res = t.retain_intersecting_rows(&mut dense_keep, &x, &mut dense_removed);
        for backend in [ChiBackend::Dense, ChiBackend::Rle] {
            let mut chi_keep = ChiVec::from_indices(LEN, &keep.to_indices(), backend);
            let probe = ChiVec::from_indices(LEN, &x.to_indices(), backend);
            let mut chi_removed = Vec::new();
            let chi_res = t.retain_intersecting_chi(&mut chi_keep, &probe, &mut chi_removed);
            prop_assert_eq!(&chi_keep, &dense_keep);
            prop_assert_eq!(&chi_removed, &dense_removed);
            prop_assert_eq!(chi_res, dense_res, "{:?}", backend);
        }
    }

    /// `ChiVec` semantic equality is backend-blind and agrees with the
    /// dense representation.
    #[test]
    fn chivec_equality_is_semantic(a in arb_bitvec(), b in arb_bitvec()) {
        let da = ChiVec::Dense(a.clone());
        let ra = ChiVec::Rle(RleBitVec::from_bitvec(&a));
        let rb = ChiVec::Rle(RleBitVec::from_bitvec(&b));
        prop_assert_eq!(&da, &ra);
        prop_assert_eq!(&ra, &a);
        prop_assert_eq!(da == rb, a == b);
        prop_assert_eq!(ra.storage_words() <= a.count_ones().max(1), true);
    }

    /// `for_each_selected_run` partitions the selection into maximal
    /// runs, and `rows_segment` over those runs visits exactly the
    /// per-row entries in the per-bit order — for dense and RLE
    /// selectors alike.
    #[test]
    fn selected_runs_flatten_to_the_per_bit_walk(m in arb_matrix(), x in arb_bitvec()) {
        let rle_x = RleBitVec::from_bitvec(&x);
        let mut per_bit: Vec<u32> = Vec::new();
        let mut bit_lookups = 0usize;
        x.for_each_selected(|i| {
            per_bit.extend_from_slice(m.row(i));
            bit_lookups += 1;
        });
        for (name, runs) in [("dense", {
            let mut r = Vec::new();
            x.for_each_selected_run(|a, b| r.push((a, b)));
            r
        }), ("rle", {
            let mut r = Vec::new();
            rle_x.for_each_selected_run(|a, b| r.push((a, b)));
            r
        })] {
            // Maximal, ascending, non-adjacent runs covering count_ones bits.
            prop_assert!(runs.windows(2).all(|w| w[0].1 < w[1].0), "{}", name);
            let covered: usize = runs.iter().map(|&(a, b)| b - a).sum();
            prop_assert_eq!(covered, x.count_ones(), "{}", name);
            prop_assert!(runs.len() <= bit_lookups.max(1), "{}", name);
            let mut per_run: Vec<u32> = Vec::new();
            for &(a, b) in &runs {
                per_run.extend_from_slice(m.rows_segment(a, b));
            }
            prop_assert_eq!(&per_run, &per_bit, "{}", name);
        }
    }

    /// The two slab backends are logically interchangeable: identical
    /// seeding increments, identical counts per column, identical
    /// decrement results — and the sparse slab never stores more words
    /// than the dense one (the spill guarantee).
    #[test]
    fn slab_backends_agree(m in arb_matrix(), x in arb_bitvec(), picks in proptest::collection::vec(0usize..LEN, 0..10)) {
        let mut dense = CounterSlab::unseeded(SlabBackend::Dense);
        let mut sparse = CounterSlab::unseeded(SlabBackend::Sparse);
        prop_assert_eq!(dense.seed(&m, &x), sparse.seed(&m, &x));
        for w in 0..LEN {
            prop_assert_eq!(dense.count(w), sparse.count(w), "column {}", w);
        }
        prop_assert!(sparse.storage_words() <= dense.storage_words());
        for w in picks {
            if dense.count(w) > 0 {
                prop_assert_eq!(dense.decrement(w), sparse.decrement(w), "column {}", w);
            }
        }
        // RLE selectors seed both backends identically too.
        let rle_x = RleBitVec::from_bitvec(&x);
        let mut dense_rle = CounterSlab::unseeded(SlabBackend::Dense);
        let mut sparse_rle = CounterSlab::unseeded(SlabBackend::Sparse);
        let inits = dense_rle.seed(&m, &rle_x);
        prop_assert_eq!(inits, sparse_rle.seed(&m, &rle_x));
        let mut reference = vec![0u32; LEN];
        prop_assert_eq!(inits, m.count_into(&x, &mut reference));
        for (w, &c) in reference.iter().enumerate() {
            prop_assert_eq!(dense_rle.count(w), c);
            prop_assert_eq!(sparse_rle.count(w), c);
        }
    }

    #[test]
    fn multiply_result_within_row_summary_of_transpose(m in arb_matrix(), x in arb_bitvec()) {
        // Every node reachable by a forward product has an incoming edge,
        // i.e. the product is bounded by b^a = row summary of the transpose.
        let mut out = BitVec::zeros(LEN);
        m.multiply_into(&x, &mut out);
        prop_assert!(out.is_subset_of(m.transpose().row_summary()));
    }

    /// Differential fuzz of the word kernels: every backend agrees with
    /// `Scalar` on result words, change flags, subset verdicts, counts
    /// and the (ordered) drain log — on random word-array lengths,
    /// including the unrolled/SIMD tail boundaries (lengths not a
    /// multiple of 4) and all-zero/all-one words.
    #[test]
    fn kernel_backends_match_scalar_wordwise(pair in arb_word_pair()) {
        use crate::KernelBackend::Scalar;
        let (a, b) = pair;
        for k in kernels::testable_backends() {
            for op in [
                kernels::and_assign_words_with as fn(crate::KernelBackend, &mut [u64], &[u64]) -> bool,
                kernels::or_assign_words_with,
                kernels::and_not_assign_words_with,
            ] {
                let mut reference = a.clone();
                let ref_changed = op(Scalar, &mut reference, &b);
                let mut words = a.clone();
                let changed = op(k, &mut words, &b);
                prop_assert_eq!(&words, &reference, "{:?}", k);
                prop_assert_eq!(changed, ref_changed, "{:?}", k);
            }
            prop_assert_eq!(
                kernels::is_subset_words_with(k, &a, &b),
                kernels::is_subset_words_with(Scalar, &a, &b),
                "{:?}", k
            );
            prop_assert_eq!(
                kernels::count_ones_words_with(k, &a),
                kernels::count_ones_words_with(Scalar, &a),
                "{:?}", k
            );
            let mut ref_words = a.clone();
            let mut ref_removed = vec![7u32]; // pre-existing content must survive
            let ref_changed = kernels::drain_cleared_words_with(Scalar, &mut ref_words, &b, &mut ref_removed);
            let mut words = a.clone();
            let mut removed = vec![7u32];
            let changed = kernels::drain_cleared_words_with(k, &mut words, &b, &mut removed);
            prop_assert_eq!(&words, &ref_words, "{:?}", k);
            prop_assert_eq!(&removed, &ref_removed, "{:?}", k);
            prop_assert_eq!(changed, ref_changed, "{:?}", k);
        }
    }

    /// The scatter kernels (row-OR accumulate, counter increments) are
    /// backend-invariant too, including repeated indices.
    #[test]
    fn kernel_scatter_matches_scalar(indices in proptest::collection::vec(0u32..=255, 0..40)) {
        use crate::KernelBackend::Scalar;
        for k in kernels::testable_backends() {
            let mut ref_blocks = vec![0u64; 4];
            kernels::or_scatter_with(Scalar, &mut ref_blocks, &indices);
            let mut blocks = vec![0u64; 4];
            kernels::or_scatter_with(k, &mut blocks, &indices);
            prop_assert_eq!(&blocks, &ref_blocks, "{:?}", k);

            let mut ref_counts = vec![0u32; 256];
            kernels::increment_scatter_with(Scalar, &mut ref_counts, &indices);
            let mut counts = vec![0u32; 256];
            kernels::increment_scatter_with(k, &mut counts, &indices);
            prop_assert_eq!(&counts, &ref_counts, "{:?}", k);
        }
    }

    /// The fused multiply+subset kernel returns exactly the unfused
    /// pair (product, subset verdict) — for dense and RLE `within`
    /// vectors alike.
    #[test]
    fn multiply_subset_into_matches_unfused(m in arb_matrix(), x in arb_bitvec(), within in arb_bitvec()) {
        let mut expected = BitVec::zeros(LEN);
        let expected_rows = m.multiply_into(&x, &mut expected);
        let expected_ok = within.is_subset_of(&expected);
        let mut out = BitVec::zeros(LEN);
        let (rows, ok) = m.multiply_subset_into(&x, &mut out, &within);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(rows, expected_rows);
        prop_assert_eq!(ok, expected_ok);
        for backend in [ChiBackend::Dense, ChiBackend::Rle] {
            let chi_within = ChiVec::from_indices(LEN, &within.to_indices(), backend);
            let mut out = BitVec::zeros(LEN);
            let (rows, ok) = m.multiply_subset_into(&x, &mut out, &chi_within);
            prop_assert_eq!(&out, &expected, "{:?}", backend);
            prop_assert_eq!(rows, expected_rows, "{:?}", backend);
            prop_assert_eq!(ok, expected_ok, "{:?}", backend);
        }
    }

    /// The fused decrement+zero-test drain performs exactly the
    /// per-entry `decrement(w) == 0` walk: same final counters, same
    /// zero events, same order — for both slab backends (including the
    /// spilled sparse representation).
    #[test]
    fn decrement_collect_matches_per_entry_decrement(
        m in arb_matrix(),
        x in arb_bitvec(),
        picks in proptest::collection::vec(0usize..LEN, 0..30),
    ) {
        for backend in [SlabBackend::Dense, SlabBackend::Sparse] {
            let mut fused = CounterSlab::unseeded(backend);
            let mut per_entry = CounterSlab::unseeded(backend);
            fused.seed(&m, &x);
            per_entry.seed(&m, &x);
            // Cap occurrences by the live count so debug underflow
            // asserts stay quiet — exactly what the delta engine's
            // support invariant guarantees in production.
            let mut columns = Vec::new();
            for &w in &picks {
                if fused.count(w) > columns.iter().filter(|&&c| c == w as u32).count() as u32 {
                    columns.push(w as u32);
                }
            }
            let mut expected_zeroed = Vec::new();
            for &w in &columns {
                if per_entry.decrement(w as usize) == 0 {
                    expected_zeroed.push(w);
                }
            }
            let mut zeroed = Vec::new();
            let () = fused.decrement_collect(&columns, |w| zeroed.push(w));
            prop_assert_eq!(&zeroed, &expected_zeroed, "{:?}", backend);
            for w in 0..LEN {
                prop_assert_eq!(fused.count(w), per_entry.count(w), "{:?} column {}", backend, w);
            }
        }
    }

    /// `ChiRead::is_subset_of_bits` (the fused kernel's subset side)
    /// agrees with the dense subset test for every χ backend.
    #[test]
    fn chi_subset_of_bits_matches_dense(a in arb_bitvec(), b in arb_bitvec()) {
        let expected = a.is_subset_of(&b);
        prop_assert_eq!(ChiRead::is_subset_of_bits(&a, &b), expected);
        for backend in [ChiBackend::Dense, ChiBackend::Rle] {
            let chi = ChiVec::from_indices(LEN, &a.to_indices(), backend);
            prop_assert_eq!(chi.is_subset_of_bits(&b), expected, "{:?}", backend);
        }
    }
}

/// Random equal-length word arrays for the kernel differential fuzz:
/// lengths 0–12 cover the empty case, sub-chunk tails and multi-chunk
/// bodies; words are biased toward the all-zero/all-one fast-path
/// triggers.
fn arb_word_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let word = || prop_oneof![Just(0u64), Just(!0u64), any::<u64>()];
    (
        proptest::collection::vec(word(), 12..13),
        proptest::collection::vec(word(), 12..13),
        0usize..13,
    )
        .prop_map(|(mut a, mut b, n)| {
            a.truncate(n);
            b.truncate(n);
            (a, b)
        })
}
