//! Bit-vector and bit-matrix kernel for fast dual simulation processing.
//!
//! This crate implements the engineering substrate of Sect. 3.2 of
//! *Fast Dual Simulation Processing of Graph Database Queries* (Mennicke et
//! al., ICDE 2019): characteristic functions `χ_S(v)` are stored behind
//! the pluggable [`ChiVec`] abstraction — dense [`BitVec`]s over the
//! data-graph node set, or gap-length encoded [`RleBitVec`]s when the
//! candidate sets are sparse ([`ChiBackend`]) — while the per-label
//! adjacency matrices `F^a` and `B^a` are stored as [`BitMatrix`] values
//! with compressed (sorted-run) rows — the same information content as
//! the paper's gap-length encoded bit rows.
//!
//! The central operation is the bit-matrix multiplication `v ×b A`
//! (footnote 2 of the paper): `(v ×b A)(j) = 1` iff there is an `i` with
//! `v(i) = 1` and `A(i, j) = 1`. Two evaluation strategies are provided:
//!
//! * **row-wise** ([`BitMatrix::multiply_into`]): OR together the rows of
//!   `A` selected by the set bits of `v` — cheap when `v` has few bits;
//! * **column-wise** ([`BitMatrix::retain_intersecting_rows`] applied to the
//!   transpose): for every candidate bit `j`, test whether column `j` of
//!   `A` intersects `v` — cheap when the candidate vector has few bits.
//!
//! The solver in `dualsim-core` switches between the two dynamically
//! (Sect. 3.3 of the paper).
//!
//! All bitwise inner loops bottom out in the pluggable word-level
//! [`kernels`] layer ([`KernelBackend`]): scalar, portable 4×-unrolled,
//! and runtime-detected AVX2 instantiations, all bit-identical.

#![warn(missing_docs)]

mod bitvec;
mod chi;
pub mod kernels;
mod matrix;
mod rle;
mod slab;

pub use bitvec::{BitVec, Ones};
pub use chi::{ChiBackend, ChiOnes, ChiRead, ChiVec, AUTO_RLE_DENSITY_DIVISOR};
pub use kernels::KernelBackend;
pub use matrix::{BitMatrix, RowSelector};
pub use rle::{RleBitVec, RleOnes};
pub use slab::{CounterSlab, SeededSlabState, SlabBackend};

#[cfg(test)]
mod proptests;
