//! Pluggable word-level kernels for the bitwise hot loops.
//!
//! Every hot path of the engine bottoms out in a handful of loops over
//! `u64` blocks (`∧`, `∨`, `∧¬`, subset tests, popcounts, cleared-bit
//! drains) or over compressed row indices (the `×b` OR-scatter and the
//! counter-seeding increment-scatter). This module provides each of
//! those inner loops in three interchangeable instantiations, selected
//! per solve by [`KernelBackend`] (`SolverConfig::kernel_backend` /
//! `sparqlsim --kernel-backend` in the downstream crates):
//!
//! * **`Scalar`** — the straightforward one-word-at-a-time loop;
//! * **`Unrolled`** — a portable 4×-unrolled loop (one change/violation
//!   accumulator per lane, folded once per chunk), which gives the
//!   autovectorizer and the load/store units four independent chains;
//! * **`Simd`** — an explicit AVX2 `std::arch` path (256-bit lanes,
//!   `vptest`-based early exits), compiled on `x86_64` and selected
//!   only when `is_x86_feature_detected!` proves the CPU supports it;
//!   on other architectures, or without AVX2 at runtime, a request for
//!   `Simd` falls back to `Scalar`;
//! * **`Auto`** — resolves to the best available instantiation (`Simd`
//!   when detected, `Unrolled` otherwise).
//!
//! **Work-neutrality invariant.** All instantiations are bit-identical:
//! same result words, same change flags, same drain order (ascending),
//! same scatter effects. Kernels change how many *machine* operations a
//! word loop costs, never how many *logical* operations the engine
//! performs — `SolveStats::logical()` is untouched by the kernel
//! choice, which is what lets the parity harness gate kernel swaps the
//! same way it gates χ/slab backend swaps. The differential proptests
//! in this crate pin every instantiation against `Scalar` at the word
//! level (including tail-word boundaries).
//!
//! The *active* kernel is a process-wide resolved selection
//! ([`KernelBackend::install`] / [`active`]): `BitVec` and `BitMatrix`
//! route their inner loops through it with the dispatch hoisted to one
//! relaxed atomic load per operation (or per multiply, for the scatter
//! loops). Because every instantiation is bit-identical, concurrent
//! solves installing different kernels can only ever change wall time,
//! never results — the per-query plan in `dualsim-core` installs the
//! configured kernel at solve start.

use std::sync::atomic::{AtomicU8, Ordering};

/// Word-kernel backend selection, configured per solve
/// (`SolverConfig::kernel_backend` in `dualsim-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// One-word-at-a-time loops — the reference instantiation every
    /// other backend is differentially tested against.
    Scalar,
    /// Portable 4×-unrolled loops (four independent dependency chains
    /// per iteration; no target-feature requirements).
    Unrolled,
    /// Explicit AVX2 (`std::arch`) 256-bit loops with runtime feature
    /// detection; falls back to `Scalar` when AVX2 is unavailable.
    Simd,
    /// Resolve to the best available instantiation at install time:
    /// `Simd` when the CPU supports AVX2, `Unrolled` otherwise.
    #[default]
    Auto,
}

impl KernelBackend {
    /// Parses a backend name (`scalar` / `unrolled` / `simd` / `auto`),
    /// as accepted by the `sparqlsim --kernel-backend` flag.
    pub fn from_name(name: &str) -> Option<KernelBackend> {
        match name {
            "scalar" => Some(KernelBackend::Scalar),
            "unrolled" => Some(KernelBackend::Unrolled),
            "simd" => Some(KernelBackend::Simd),
            "auto" => Some(KernelBackend::Auto),
            _ => None,
        }
    }

    /// The backend's display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Unrolled => "unrolled",
            KernelBackend::Simd => "simd",
            KernelBackend::Auto => "auto",
        }
    }

    /// Resolves the selection to a concrete, runnable instantiation:
    /// `Auto` picks `Simd` when AVX2 is detected and `Unrolled`
    /// otherwise; `Simd` without AVX2 support falls back to `Scalar`
    /// (the conservative fallback an explicit request degrades to);
    /// concrete selections resolve to themselves.
    pub fn resolve(self) -> KernelBackend {
        match self {
            KernelBackend::Scalar => KernelBackend::Scalar,
            KernelBackend::Unrolled => KernelBackend::Unrolled,
            KernelBackend::Simd => {
                if simd_available() {
                    KernelBackend::Simd
                } else {
                    KernelBackend::Scalar
                }
            }
            KernelBackend::Auto => {
                if simd_available() {
                    KernelBackend::Simd
                } else {
                    KernelBackend::Unrolled
                }
            }
        }
    }

    /// Resolves the selection ([`KernelBackend::resolve`]) and installs
    /// it as the process-wide active kernel, returning the concrete
    /// backend installed. Installation is a single relaxed atomic store
    /// — cheap enough to run at every solve/maintenance entry point.
    pub fn install(self) -> KernelBackend {
        let concrete = self.resolve();
        ACTIVE.store(encode(concrete), Ordering::Relaxed);
        concrete
    }
}

/// `true` iff the explicit SIMD instantiation can run on this machine
/// (x86_64 with AVX2 and POPCNT, verified at runtime).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide active kernel, always concrete. Before anything is
/// installed this resolves `Auto` once (best available instantiation),
/// so standalone `BitVec`/`BitMatrix` users get the fast loops too.
pub fn active() -> KernelBackend {
    match ACTIVE.load(Ordering::Relaxed) {
        UNRESOLVED => KernelBackend::Auto.install(),
        raw => decode(raw),
    }
}

const UNRESOLVED: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn encode(k: KernelBackend) -> u8 {
    match k {
        KernelBackend::Scalar => 0,
        KernelBackend::Unrolled => 1,
        KernelBackend::Simd => 2,
        KernelBackend::Auto => UNRESOLVED,
    }
}

fn decode(raw: u8) -> KernelBackend {
    match raw {
        0 => KernelBackend::Scalar,
        1 => KernelBackend::Unrolled,
        _ => KernelBackend::Simd,
    }
}

// ---------------------------------------------------------------------
// Dispatchers: one relaxed load + one jump per operation. The `_with`
// variants take an explicit (concrete) backend so callers can hoist
// the dispatch out of their own loops and the differential proptests
// can pin each instantiation deterministically.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($k:expr, $scalar:expr, $unrolled:expr, $simd:expr) => {
        match $k {
            KernelBackend::Scalar | KernelBackend::Auto => $scalar,
            KernelBackend::Unrolled => $unrolled,
            // `resolve` only ever yields `Simd` when `simd_available`
            // held, so the target-feature call is safe here.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Simd => unsafe { $simd },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Simd => $scalar,
        }
    };
}

/// `a[i] &= b[i]` over all words; returns `true` iff any word changed.
#[inline]
pub(crate) fn and_assign_words(a: &mut [u64], b: &[u64]) -> bool {
    and_assign_words_with(active(), a, b)
}

/// [`and_assign_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn and_assign_words_with(k: KernelBackend, a: &mut [u64], b: &[u64]) -> bool {
    dispatch!(k, and_scalar(a, b), and_unrolled(a, b), and_avx2(a, b))
}

/// `a[i] |= b[i]` over all words; returns `true` iff any word changed.
#[inline]
pub(crate) fn or_assign_words(a: &mut [u64], b: &[u64]) -> bool {
    or_assign_words_with(active(), a, b)
}

/// [`or_assign_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn or_assign_words_with(k: KernelBackend, a: &mut [u64], b: &[u64]) -> bool {
    dispatch!(k, or_scalar(a, b), or_unrolled(a, b), or_avx2(a, b))
}

/// `a[i] &= !b[i]` over all words; returns `true` iff any word changed.
#[inline]
pub(crate) fn and_not_assign_words(a: &mut [u64], b: &[u64]) -> bool {
    and_not_assign_words_with(active(), a, b)
}

/// [`and_not_assign_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn and_not_assign_words_with(k: KernelBackend, a: &mut [u64], b: &[u64]) -> bool {
    dispatch!(
        k,
        and_not_scalar(a, b),
        and_not_unrolled(a, b),
        and_not_avx2(a, b)
    )
}

/// `true` iff `a[i] & !b[i] == 0` for every word (subset test), with an
/// early exit on the first violating word/lane.
#[inline]
pub(crate) fn is_subset_words(a: &[u64], b: &[u64]) -> bool {
    is_subset_words_with(active(), a, b)
}

/// [`is_subset_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn is_subset_words_with(k: KernelBackend, a: &[u64], b: &[u64]) -> bool {
    dispatch!(
        k,
        subset_scalar(a, b),
        subset_unrolled(a, b),
        subset_avx2(a, b)
    )
}

/// Total popcount over all words.
#[inline]
pub(crate) fn count_ones_words(a: &[u64]) -> usize {
    count_ones_words_with(active(), a)
}

/// [`count_ones_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn count_ones_words_with(k: KernelBackend, a: &[u64]) -> usize {
    dispatch!(k, count_scalar(a), count_unrolled(a), count_avx2(a))
}

/// `a[i] &= b[i]` over all words, appending the absolute bit index of
/// every cleared bit to `removed` in ascending order; returns `true`
/// iff any word changed. The unrolled/SIMD instantiations only buy a
/// faster *scan* for words with cleared bits — decode order is
/// identical across backends (the delta engine's removal log is part
/// of the bit-identical contract).
#[inline]
pub(crate) fn drain_cleared_words(a: &mut [u64], b: &[u64], removed: &mut Vec<u32>) -> bool {
    drain_cleared_words_with(active(), a, b, removed)
}

/// [`drain_cleared_words`] under an explicit concrete backend.
#[inline]
pub(crate) fn drain_cleared_words_with(
    k: KernelBackend,
    a: &mut [u64],
    b: &[u64],
    removed: &mut Vec<u32>,
) -> bool {
    dispatch!(
        k,
        drain_scalar(a, b, removed),
        drain_unrolled(a, b, removed),
        drain_avx2(a, b, removed)
    )
}

/// OR-scatter: sets bit `i` of the block array for every index in
/// `indices` (the inner loop of the row-wise `×b` accumulation). Not a
/// word-parallel shape — `Simd` shares the unrolled instantiation.
#[inline]
pub(crate) fn or_scatter(blocks: &mut [u64], indices: &[u32]) {
    or_scatter_with(active(), blocks, indices)
}

/// [`or_scatter`] under an explicit concrete backend.
#[inline]
pub(crate) fn or_scatter_with(k: KernelBackend, blocks: &mut [u64], indices: &[u32]) {
    match k {
        KernelBackend::Scalar | KernelBackend::Auto => or_scatter_scalar(blocks, indices),
        KernelBackend::Unrolled | KernelBackend::Simd => or_scatter_unrolled(blocks, indices),
    }
}

/// Increment-scatter under an explicit concrete backend: `counts[i] +=
/// 1` for every index in `indices` (the inner loop of the
/// counter-seeding `count_into`, which hoists the dispatch per seed).
/// Not a word-parallel shape — `Simd` shares the unrolled instantiation.
#[inline]
pub(crate) fn increment_scatter_with(k: KernelBackend, counts: &mut [u32], indices: &[u32]) {
    match k {
        KernelBackend::Scalar | KernelBackend::Auto => increment_scatter_scalar(counts, indices),
        KernelBackend::Unrolled | KernelBackend::Simd => {
            increment_scatter_unrolled(counts, indices)
        }
    }
}

// ---------------------------------------------------------------------
// Scalar instantiations (the reference semantics).
// ---------------------------------------------------------------------

fn and_scalar(a: &mut [u64], b: &[u64]) -> bool {
    let mut changed = false;
    for (x, &y) in a.iter_mut().zip(b) {
        let new = *x & y;
        changed |= new != *x;
        *x = new;
    }
    changed
}

fn or_scalar(a: &mut [u64], b: &[u64]) -> bool {
    let mut changed = false;
    for (x, &y) in a.iter_mut().zip(b) {
        let new = *x | y;
        changed |= new != *x;
        *x = new;
    }
    changed
}

fn and_not_scalar(a: &mut [u64], b: &[u64]) -> bool {
    let mut changed = false;
    for (x, &y) in a.iter_mut().zip(b) {
        let new = *x & !y;
        changed |= new != *x;
        *x = new;
    }
    changed
}

fn subset_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
}

fn count_scalar(a: &[u64]) -> usize {
    a.iter().map(|x| x.count_ones() as usize).sum()
}

/// Decodes the set bits of `cleared` (a word at block index `bi`) into
/// absolute indices, ascending. Shared by every drain instantiation so
/// the removal order is identical by construction.
#[inline]
fn push_cleared(bi: usize, mut cleared: u64, removed: &mut Vec<u32>) {
    let base = (bi * 64) as u32;
    while cleared != 0 {
        removed.push(base + cleared.trailing_zeros());
        cleared &= cleared - 1;
    }
}

fn drain_scalar(a: &mut [u64], b: &[u64], removed: &mut Vec<u32>) -> bool {
    let mut changed = false;
    for (bi, (x, &y)) in a.iter_mut().zip(b).enumerate() {
        let cleared = *x & !y;
        if cleared != 0 {
            changed = true;
            *x &= y;
            push_cleared(bi, cleared, removed);
        }
    }
    changed
}

fn or_scatter_scalar(blocks: &mut [u64], indices: &[u32]) {
    for &i in indices {
        blocks[i as usize / 64] |= 1u64 << (i % 64);
    }
}

fn increment_scatter_scalar(counts: &mut [u32], indices: &[u32]) {
    for &i in indices {
        counts[i as usize] += 1;
    }
}

// ---------------------------------------------------------------------
// Portable 4×-unrolled instantiations. Change detection accumulates
// XOR differences per lane and folds once per chunk — boolean-identical
// to the per-word comparison.
// ---------------------------------------------------------------------

macro_rules! unrolled_assign {
    ($name:ident, $op:expr) => {
        fn $name(a: &mut [u64], b: &[u64]) -> bool {
            let op = $op;
            let whole = a.len() & !3;
            let (a4, a_tail) = a.split_at_mut(whole);
            let (b4, b_tail) = b.split_at(whole);
            let mut diff = 0u64;
            for (ca, cb) in a4.chunks_exact_mut(4).zip(b4.chunks_exact(4)) {
                let n0 = op(ca[0], cb[0]);
                let n1 = op(ca[1], cb[1]);
                let n2 = op(ca[2], cb[2]);
                let n3 = op(ca[3], cb[3]);
                diff |= (n0 ^ ca[0]) | (n1 ^ ca[1]) | (n2 ^ ca[2]) | (n3 ^ ca[3]);
                ca[0] = n0;
                ca[1] = n1;
                ca[2] = n2;
                ca[3] = n3;
            }
            for (x, &y) in a_tail.iter_mut().zip(b_tail) {
                let new = op(*x, y);
                diff |= new ^ *x;
                *x = new;
            }
            diff != 0
        }
    };
}

unrolled_assign!(and_unrolled, |x: u64, y: u64| x & y);
unrolled_assign!(or_unrolled, |x: u64, y: u64| x | y);
unrolled_assign!(and_not_unrolled, |x: u64, y: u64| x & !y);

fn subset_unrolled(a: &[u64], b: &[u64]) -> bool {
    let whole = a.len() & !3;
    for (ca, cb) in a[..whole].chunks_exact(4).zip(b[..whole].chunks_exact(4)) {
        let v = (ca[0] & !cb[0]) | (ca[1] & !cb[1]) | (ca[2] & !cb[2]) | (ca[3] & !cb[3]);
        if v != 0 {
            return false;
        }
    }
    a[whole..].iter().zip(&b[whole..]).all(|(&x, &y)| x & !y == 0)
}

fn count_unrolled(a: &[u64]) -> usize {
    let whole = a.len() & !3;
    let mut c0 = 0usize;
    let mut c1 = 0usize;
    let mut c2 = 0usize;
    let mut c3 = 0usize;
    for ca in a[..whole].chunks_exact(4) {
        c0 += ca[0].count_ones() as usize;
        c1 += ca[1].count_ones() as usize;
        c2 += ca[2].count_ones() as usize;
        c3 += ca[3].count_ones() as usize;
    }
    c0 + c1 + c2 + c3 + a[whole..].iter().map(|x| x.count_ones() as usize).sum::<usize>()
}

fn drain_unrolled(a: &mut [u64], b: &[u64], removed: &mut Vec<u32>) -> bool {
    let whole = a.len() & !3;
    let mut changed = false;
    let mut bi = 0usize;
    {
        let (a4, _) = a.split_at_mut(whole);
        let (b4, _) = b.split_at(whole);
        for (ca, cb) in a4.chunks_exact_mut(4).zip(b4.chunks_exact(4)) {
            let c0 = ca[0] & !cb[0];
            let c1 = ca[1] & !cb[1];
            let c2 = ca[2] & !cb[2];
            let c3 = ca[3] & !cb[3];
            // Fast skip: most chunks clear nothing in late drain rounds.
            if c0 | c1 | c2 | c3 != 0 {
                changed = true;
                ca[0] &= cb[0];
                ca[1] &= cb[1];
                ca[2] &= cb[2];
                ca[3] &= cb[3];
                push_cleared(bi, c0, removed);
                push_cleared(bi + 1, c1, removed);
                push_cleared(bi + 2, c2, removed);
                push_cleared(bi + 3, c3, removed);
            }
            bi += 4;
        }
    }
    for (off, (x, &y)) in a[whole..].iter_mut().zip(&b[whole..]).enumerate() {
        let cleared = *x & !y;
        if cleared != 0 {
            changed = true;
            *x &= y;
            push_cleared(whole + off, cleared, removed);
        }
    }
    changed
}

fn or_scatter_unrolled(blocks: &mut [u64], indices: &[u32]) {
    let mut chunks = indices.chunks_exact(4);
    for c in &mut chunks {
        // The four read-modify-writes run in program order, so indices
        // landing in the same block compose exactly like the scalar loop.
        blocks[c[0] as usize / 64] |= 1u64 << (c[0] % 64);
        blocks[c[1] as usize / 64] |= 1u64 << (c[1] % 64);
        blocks[c[2] as usize / 64] |= 1u64 << (c[2] % 64);
        blocks[c[3] as usize / 64] |= 1u64 << (c[3] % 64);
    }
    for &i in chunks.remainder() {
        blocks[i as usize / 64] |= 1u64 << (i % 64);
    }
}

fn increment_scatter_unrolled(counts: &mut [u32], indices: &[u32]) {
    let mut chunks = indices.chunks_exact(4);
    for c in &mut chunks {
        counts[c[0] as usize] += 1;
        counts[c[1] as usize] += 1;
        counts[c[2] as usize] += 1;
        counts[c[3] as usize] += 1;
    }
    for &i in chunks.remainder() {
        counts[i as usize] += 1;
    }
}

// ---------------------------------------------------------------------
// AVX2 instantiations (x86_64 only; callers guarantee runtime support
// via `KernelBackend::resolve`). 256-bit lanes = 4 words per step; the
// tail (< 4 words) runs the scalar loop. Change/violation detection
// uses `vptest` on an accumulated difference vector — boolean-identical
// to the scalar comparison.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::push_cleared;
    use std::arch::x86_64::*;

    macro_rules! avx2_assign {
        ($name:ident, $combine:expr, $scalar_op:expr) => {
            /// # Safety
            /// Requires AVX2 (checked by `KernelBackend::resolve`).
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(a: &mut [u64], b: &[u64]) -> bool {
                let whole = a.len() & !3;
                let ap = a.as_mut_ptr();
                let bp = b.as_ptr();
                let mut diff = _mm256_setzero_si256();
                let mut i = 0usize;
                while i < whole {
                    let va = _mm256_loadu_si256(ap.add(i).cast());
                    let vb = _mm256_loadu_si256(bp.add(i).cast());
                    let vn = $combine(va, vb);
                    diff = _mm256_or_si256(diff, _mm256_xor_si256(vn, va));
                    _mm256_storeu_si256(ap.add(i).cast(), vn);
                    i += 4;
                }
                let mut changed = _mm256_testz_si256(diff, diff) == 0;
                for (x, &y) in a[whole..].iter_mut().zip(&b[whole..]) {
                    let new = $scalar_op(*x, y);
                    changed |= new != *x;
                    *x = new;
                }
                changed
            }
        };
    }

    avx2_assign!(
        and_avx2,
        |va, vb| _mm256_and_si256(va, vb),
        |x: u64, y: u64| x & y
    );
    avx2_assign!(
        or_avx2,
        |va, vb| _mm256_or_si256(va, vb),
        |x: u64, y: u64| x | y
    );
    avx2_assign!(
        and_not_avx2,
        // `andnot(vb, va)` computes `!vb & va` = `va & !vb`.
        |va, vb| _mm256_andnot_si256(vb, va),
        |x: u64, y: u64| x & !y
    );

    /// # Safety
    /// Requires AVX2 (checked by `KernelBackend::resolve`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn subset_avx2(a: &[u64], b: &[u64]) -> bool {
        let whole = a.len() & !3;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0usize;
        while i < whole {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            // violation lanes: va & !vb
            let v = _mm256_andnot_si256(vb, va);
            if _mm256_testz_si256(v, v) == 0 {
                return false;
            }
            i += 4;
        }
        a[whole..].iter().zip(&b[whole..]).all(|(&x, &y)| x & !y == 0)
    }

    /// # Safety
    /// Requires AVX2 + POPCNT (checked by `KernelBackend::resolve`).
    ///
    /// Word-wise `popcnt` over four independent accumulators — AVX2 has
    /// no vector popcount, but the enabled `popcnt` target feature
    /// guarantees the hardware instruction for each lane.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn count_avx2(a: &[u64]) -> usize {
        super::count_unrolled(a)
    }

    /// # Safety
    /// Requires AVX2 (checked by `KernelBackend::resolve`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn drain_avx2(a: &mut [u64], b: &[u64], removed: &mut Vec<u32>) -> bool {
        let whole = a.len() & !3;
        let ap = a.as_mut_ptr();
        let bp = b.as_ptr();
        let mut changed = false;
        let mut i = 0usize;
        while i < whole {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            let vc = _mm256_andnot_si256(vb, va); // cleared = a & !b
            // Fast skip via `vptest`: nothing cleared in these 4 words.
            if _mm256_testz_si256(vc, vc) == 0 {
                changed = true;
                _mm256_storeu_si256(ap.add(i).cast(), _mm256_and_si256(va, vb));
                let mut cleared = [0u64; 4];
                _mm256_storeu_si256(cleared.as_mut_ptr().cast(), vc);
                for (lane, &word) in cleared.iter().enumerate() {
                    push_cleared(i + lane, word, removed);
                }
            }
            i += 4;
        }
        for (off, (x, &y)) in a[whole..].iter_mut().zip(&b[whole..]).enumerate() {
            let cleared = *x & !y;
            if cleared != 0 {
                changed = true;
                *x &= y;
                push_cleared(whole + off, cleared, removed);
            }
        }
        changed
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{and_avx2, and_not_avx2, count_avx2, drain_avx2, or_avx2, subset_avx2};

/// Concrete instantiations testable on this machine: always scalar +
/// unrolled, plus SIMD when the CPU supports it. Used by the in-crate
/// differential tests and proptests.
#[cfg(test)]
pub(crate) fn testable_backends() -> Vec<KernelBackend> {
    let mut v = vec![KernelBackend::Scalar, KernelBackend::Unrolled];
    if simd_available() {
        v.push(KernelBackend::Simd);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in [
            KernelBackend::Scalar,
            KernelBackend::Unrolled,
            KernelBackend::Simd,
            KernelBackend::Auto,
        ] {
            assert_eq!(KernelBackend::from_name(k.name()), Some(k));
        }
        assert_eq!(KernelBackend::from_name("avx2"), None);
    }

    #[test]
    fn resolve_is_concrete_and_runnable() {
        for k in [
            KernelBackend::Scalar,
            KernelBackend::Unrolled,
            KernelBackend::Simd,
            KernelBackend::Auto,
        ] {
            let concrete = k.resolve();
            assert_ne!(concrete, KernelBackend::Auto, "{k:?}");
            if concrete == KernelBackend::Simd {
                assert!(simd_available());
            }
        }
        assert_eq!(KernelBackend::Scalar.resolve(), KernelBackend::Scalar);
        assert_eq!(KernelBackend::Unrolled.resolve(), KernelBackend::Unrolled);
        if !simd_available() {
            assert_eq!(KernelBackend::Simd.resolve(), KernelBackend::Scalar);
            assert_eq!(KernelBackend::Auto.resolve(), KernelBackend::Unrolled);
        }
    }

    #[test]
    fn active_is_always_concrete() {
        assert_ne!(active(), KernelBackend::Auto);
        let installed = KernelBackend::Auto.install();
        assert_eq!(active(), installed);
    }

    #[test]
    fn every_backend_matches_scalar_on_fixed_vectors() {
        // Deterministic multi-block vectors with tail words; the
        // proptests fuzz the same property over random lengths.
        let n = 11usize; // not a multiple of 4: exercises unrolled tails
        let a0: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let b0: Vec<u64> = (0..n)
            .map(|i| (i as u64 ^ 0xABCD).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .collect();
        for k in testable_backends() {
            for (op, op_with) in [
                (
                    and_assign_words_with as fn(KernelBackend, &mut [u64], &[u64]) -> bool,
                    "and",
                ),
                (or_assign_words_with, "or"),
                (and_not_assign_words_with, "andnot"),
            ] {
                let mut reference = a0.clone();
                let ref_changed = op(KernelBackend::Scalar, &mut reference, &b0);
                let mut words = a0.clone();
                let changed = op(k, &mut words, &b0);
                assert_eq!(words, reference, "{op_with} words under {k:?}");
                assert_eq!(changed, ref_changed, "{op_with} change flag under {k:?}");
            }
            assert_eq!(
                is_subset_words_with(k, &a0, &b0),
                subset_scalar(&a0, &b0),
                "{k:?}"
            );
            assert_eq!(count_ones_words_with(k, &a0), count_scalar(&a0), "{k:?}");
            let mut ref_words = a0.clone();
            let mut ref_removed = Vec::new();
            let ref_changed = drain_cleared_words_with(
                KernelBackend::Scalar,
                &mut ref_words,
                &b0,
                &mut ref_removed,
            );
            let mut words = a0.clone();
            let mut removed = Vec::new();
            let changed = drain_cleared_words_with(k, &mut words, &b0, &mut removed);
            assert_eq!(words, ref_words, "{k:?}");
            assert_eq!(removed, ref_removed, "{k:?}");
            assert_eq!(changed, ref_changed, "{k:?}");
        }
    }

    #[test]
    fn scatter_kernels_match_scalar() {
        let indices: Vec<u32> = vec![0, 1, 63, 64, 65, 64, 127, 130, 2, 2, 191];
        for k in testable_backends() {
            let mut ref_blocks = vec![0u64; 3];
            or_scatter_with(KernelBackend::Scalar, &mut ref_blocks, &indices);
            let mut blocks = vec![0u64; 3];
            or_scatter_with(k, &mut blocks, &indices);
            assert_eq!(blocks, ref_blocks, "{k:?}");

            let mut ref_counts = vec![0u32; 192];
            increment_scatter_with(KernelBackend::Scalar, &mut ref_counts, &indices);
            let mut counts = vec![0u32; 192];
            increment_scatter_with(k, &mut counts, &indices);
            assert_eq!(counts, ref_counts, "{k:?}");
        }
    }
}
