//! Gap-length (run-length) encoded bit vectors.
//!
//! Sect. 3.3 of the paper notes that "due to bit-vector storage
//! techniques, such as gap-length encoding, the worst memory consumption
//! might not occur with the label storing the most bits", referring to
//! the BitMat storage structure of Atre et al. This module provides that
//! representation: a sorted list of `[start, start+len)` runs of one
//! bits. It is the storage of choice for χ rows that are either very
//! sparse or consist of long contiguous runs (dictionary-encoded
//! databases cluster nodes of one type in contiguous id ranges, which is
//! exactly when run-length encoding shines).
//!
//! [`RleBitVec`] supports the operations the SOI solver needs —
//! intersection, union, subset and intersection tests, popcount — and
//! converts losslessly to and from [`BitVec`].

use crate::BitVec;

/// A run of consecutive one bits `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    start: u32,
    len: u32,
}

impl Run {
    #[inline]
    fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// A fixed-length bit vector stored as sorted, non-adjacent runs of one
/// bits (gap-length encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitVec {
    runs: Vec<Run>,
    len: usize,
}

impl RleBitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        RleBitVec {
            runs: Vec::new(),
            len,
        }
    }

    /// Creates a vector of `len` one bits (a single run).
    pub fn ones(len: usize) -> Self {
        let runs = if len == 0 {
            Vec::new()
        } else {
            vec![Run {
                start: 0,
                len: len as u32,
            }]
        };
        RleBitVec { runs, len }
    }

    /// Builds from sorted-or-unsorted indices.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut runs: Vec<Run> = Vec::new();
        for &i in &sorted {
            assert!((i as usize) < len, "bit index {i} out of bounds {len}");
            match runs.last_mut() {
                Some(run) if run.end() == i => run.len += 1,
                _ => runs.push(Run { start: i, len: 1 }),
            }
        }
        RleBitVec { runs, len }
    }

    /// Lossless conversion from a dense vector.
    pub fn from_bitvec(v: &BitVec) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        for i in v.iter_ones() {
            let i = i as u32;
            match runs.last_mut() {
                Some(run) if run.end() == i => run.len += 1,
                _ => runs.push(Run { start: i, len: 1 }),
            }
        }
        RleBitVec { runs, len: v.len() }
    }

    /// Lossless conversion to a dense vector.
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        for run in &self.runs {
            for i in run.start..run.end() {
                out.set(i as usize);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs — the compressed size (2 × u32 per run).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.runs.iter().map(|r| r.len as usize).sum()
    }

    /// `true` iff no bit is set.
    pub fn none_set(&self) -> bool {
        self.runs.is_empty()
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        let i = i as u32;
        // Last run starting at or before i.
        match self.runs.partition_point(|r| r.start <= i) {
            0 => false,
            p => i < self.runs[p - 1].end(),
        }
    }

    /// Iterator over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> RleOnes<'_> {
        RleOnes {
            runs: &self.runs,
            run_idx: 0,
            next: self.runs.first().map(|r| r.start).unwrap_or(0),
        }
    }

    /// Iterator over the stored maximal runs as `(start, end)` pairs
    /// (half-open, ascending) — the run-level access the run-aware
    /// matrix kernels build on (`BitMatrix::rows_segment` resolves one
    /// CSR segment per run instead of one row per bit).
    pub fn iter_runs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.runs.iter().map(|r| (r.start, r.end()))
    }

    /// Collects the set-bit indices into a vector (`u32` indices,
    /// matching [`BitVec::to_indices`]).
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for r in &self.runs {
            out.extend(r.start..r.end());
        }
        out
    }

    /// Storage words in `u64` equivalents: one per run (a run is two
    /// `u32`s) — the RLE side of the χ-storage accounting in
    /// `BENCH_chi.json`. Compare with [`BitVec::storage_words`].
    pub fn storage_words(&self) -> usize {
        self.runs.len()
    }

    /// Sets bit `i` to zero, splitting its run if it sits in the middle.
    /// A no-op when the bit is already zero.
    pub fn clear(&mut self, i: usize) {
        let i = i as u32;
        let p = self.runs.partition_point(|r| r.start <= i);
        if p == 0 {
            return;
        }
        let run = self.runs[p - 1];
        if i >= run.end() {
            return;
        }
        if run.len == 1 {
            self.runs.remove(p - 1);
        } else if i == run.start {
            self.runs[p - 1].start += 1;
            self.runs[p - 1].len -= 1;
        } else if i == run.end() - 1 {
            self.runs[p - 1].len -= 1;
        } else {
            // Interior bit: split [start, i) / [i+1, end).
            self.runs[p - 1].len = i - run.start;
            self.runs.insert(
                p,
                Run {
                    start: i + 1,
                    len: run.end() - i - 1,
                },
            );
        }
    }

    /// Sets bit `i` to one, merging with an adjacent run (or bridging
    /// two) so runs stay maximal. A no-op when the bit is already set.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds {}", self.len);
        let i = i as u32;
        // First run starting strictly after i; the run before it (if
        // any) is the only one that can already contain i.
        let p = self.runs.partition_point(|r| r.start <= i);
        let touches_prev = p > 0 && {
            let prev = self.runs[p - 1];
            if i < prev.end() {
                return; // already set
            }
            prev.end() == i
        };
        let touches_next = p < self.runs.len() && self.runs[p].start == i + 1;
        match (touches_prev, touches_next) {
            (true, true) => {
                // Bridge: [prev.start, i] ∪ {i} ∪ [i+1, next.end).
                self.runs[p - 1].len += 1 + self.runs[p].len;
                self.runs.remove(p);
            }
            (true, false) => self.runs[p - 1].len += 1,
            (false, true) => {
                self.runs[p].start -= 1;
                self.runs[p].len += 1;
            }
            (false, false) => self.runs.insert(p, Run { start: i, len: 1 }),
        }
    }

    /// Sets every bit to zero.
    pub fn clear_all(&mut self) {
        self.runs.clear();
    }

    /// Copies `other` into `self`, reusing the run storage.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &RleBitVec) {
        self.check_len(other);
        self.runs.clear();
        self.runs.extend_from_slice(&other.runs);
    }

    /// In-place intersection `self ∧= other`; returns `true` iff `self`
    /// changed (the in-place form of [`RleBitVec::and`], mirroring
    /// [`BitVec::and_assign`]).
    pub fn and_assign(&mut self, other: &RleBitVec) -> bool {
        let before = self.count_ones();
        *self = self.and(other);
        // The result is a subset of the old value, so equality is
        // exactly popcount preservation.
        self.count_ones() != before
    }

    /// In-place intersection with a *dense* vector; returns `true` iff
    /// `self` changed. This is the hot χ-update verb of the solver under
    /// the RLE backend: the multiply product and the Eq.-(13) summaries
    /// stay dense, and the RLE χ intersects against them run by run
    /// without densifying itself.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_assign_dense(&mut self, other: &BitVec) -> bool {
        assert_eq!(
            self.len,
            other.len(),
            "bit-vector length mismatch: {} vs {}",
            self.len,
            other.len()
        );
        let before = self.count_ones();
        let mut out: Vec<Run> = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            push_dense_ones_in_range(other, run.start as usize, run.end() as usize, &mut out);
        }
        self.runs = out;
        self.count_ones() != before
    }

    /// In-place intersection that records the removals, mirroring
    /// [`BitVec::drain_cleared`]: `self ∧= other`, appending every
    /// cleared bit index to `removed` in ascending order (the buffer is
    /// *not* cleared first). Returns `true` iff `self` changed.
    pub fn drain_cleared(&mut self, other: &RleBitVec, removed: &mut Vec<u32>) -> bool {
        self.check_len(other);
        let before = removed.len();
        let mut out: Vec<Run> = Vec::with_capacity(self.runs.len());
        let mut j = 0usize;
        for a in &self.runs {
            let mut pos = a.start;
            let aend = a.end();
            while pos < aend {
                while j < other.runs.len() && other.runs[j].end() <= pos {
                    j += 1;
                }
                match other.runs.get(j) {
                    Some(b) if b.start < aend => {
                        if b.start > pos {
                            removed.extend(pos..b.start);
                            pos = b.start;
                        }
                        let kept_end = b.end().min(aend);
                        out.push(Run {
                            start: pos,
                            len: kept_end - pos,
                        });
                        pos = kept_end;
                        // Do not advance past a run that may cover the
                        // next self-run too; the while above handles it.
                    }
                    _ => {
                        removed.extend(pos..aend);
                        pos = aend;
                    }
                }
            }
        }
        self.runs = out;
        removed.len() != before
    }

    /// Subset test `self ≤ other` against a *dense* vector: every run
    /// must be fully set in `other` (block-walked, no densification).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn is_subset_of_dense(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len(), "bit-vector length mismatch");
        self.runs
            .iter()
            .all(|r| other.all_in_range(r.start as usize, r.end() as usize))
    }

    /// Superset test `other ≤ self` against a *dense* vector: the gaps
    /// between runs must contain no set bit of `other` (block-walked).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn covers_dense(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len(), "bit-vector length mismatch");
        let mut gap_start = 0usize;
        for r in &self.runs {
            if other.any_in_range(gap_start, r.start as usize) {
                return false;
            }
            gap_start = r.end() as usize;
        }
        !other.any_in_range(gap_start, self.len)
    }

    /// `true` iff any of the (sorted matrix-row) indices is a set bit —
    /// the RLE counterpart of [`BitVec::intersects_indices`]. Both the
    /// indices and the runs are sorted, so one merge pass suffices.
    pub fn intersects_indices(&self, indices: &[u32]) -> bool {
        let mut j = 0usize;
        for &i in indices {
            while j < self.runs.len() && self.runs[j].end() <= i {
                j += 1;
            }
            match self.runs.get(j) {
                Some(r) if r.start <= i => return true,
                Some(_) => {}
                None => return false,
            }
        }
        false
    }

    /// Expands `self` into a dense accumulator: `out ∨= self`, one
    /// [`BitVec::set_range`] per run.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or_into(&self, out: &mut BitVec) {
        assert_eq!(self.len, out.len(), "bit-vector length mismatch");
        for r in &self.runs {
            out.set_range(r.start as usize, r.end() as usize);
        }
    }

    /// Intersection with another RLE vector.
    pub fn and(&self, other: &RleBitVec) -> RleBitVec {
        self.check_len(other);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            let start = a.start.max(b.start);
            let end = a.end().min(b.end());
            if start < end {
                out.push(Run {
                    start,
                    len: end - start,
                });
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        RleBitVec {
            runs: out,
            len: self.len,
        }
    }

    /// Union with another RLE vector.
    pub fn or(&self, other: &RleBitVec) -> RleBitVec {
        self.check_len(other);
        let mut out: Vec<Run> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let push = |run: Run, out: &mut Vec<Run>| match out.last_mut() {
            Some(last) if last.end() >= run.start => {
                let end = last.end().max(run.end());
                last.len = end - last.start;
            }
            _ => out.push(run),
        };
        while i < self.runs.len() || j < other.runs.len() {
            let take_left = match (self.runs.get(i), other.runs.get(j)) {
                (Some(a), Some(b)) => a.start <= b.start,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_left {
                push(self.runs[i], &mut out);
                i += 1;
            } else {
                push(other.runs[j], &mut out);
                j += 1;
            }
        }
        RleBitVec {
            runs: out,
            len: self.len,
        }
    }

    /// Subset test `self ≤ other`.
    pub fn is_subset_of(&self, other: &RleBitVec) -> bool {
        self.check_len(other);
        // Every run of self must be covered by a single run of other
        // (runs are maximal, so a covering run cannot be split).
        let mut j = 0usize;
        for a in &self.runs {
            while j < other.runs.len() && other.runs[j].end() < a.end() {
                j += 1;
            }
            match other.runs.get(j) {
                Some(b) if b.start <= a.start && a.end() <= b.end() => {}
                _ => return false,
            }
        }
        true
    }

    /// `true` iff `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &RleBitVec) -> bool {
        self.check_len(other);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            if a.start.max(b.start) < a.end().min(b.end()) {
                return true;
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    fn check_len(&self, other: &RleBitVec) {
        assert_eq!(
            self.len, other.len,
            "bit-vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Appends the maximal one-runs of `dense` within `[start, end)` to
/// `out`, coalescing with the last run when adjacent. Block-walked: an
/// all-zeros block inside the range is skipped in one step.
fn push_dense_ones_in_range(dense: &BitVec, start: usize, end: usize, out: &mut Vec<Run>) {
    const B: usize = crate::bitvec::BLOCK_BITS;
    if start >= end {
        return;
    }
    let blocks = dense.blocks();
    let (first, last) = (start / B, (end - 1) / B);
    for (bi, &block) in blocks.iter().enumerate().take(last + 1).skip(first) {
        let mut word = block;
        if bi == first {
            word &= !0u64 << (start % B);
        }
        if bi == last {
            word &= !0u64 >> (B - 1 - (end - 1) % B);
        }
        while word != 0 {
            // Lowest run of consecutive ones inside the word.
            let lo = word.trailing_zeros();
            let ones = (word >> lo).trailing_ones();
            let run_start = (bi * B) as u32 + lo;
            match out.last_mut() {
                Some(r) if r.end() == run_start => r.len += ones,
                _ => out.push(Run {
                    start: run_start,
                    len: ones,
                }),
            }
            if lo + ones >= 64 {
                break;
            }
            word &= !0u64 << (lo + ones);
        }
    }
}

/// Iterator over the set-bit indices of an [`RleBitVec`], in ascending
/// order.
pub struct RleOnes<'a> {
    runs: &'a [Run],
    run_idx: usize,
    next: u32,
}

impl Iterator for RleOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let run = self.runs.get(self.run_idx)?;
        let i = self.next;
        if i + 1 < run.end() {
            self.next = i + 1;
        } else {
            self.run_idx += 1;
            if let Some(next_run) = self.runs.get(self.run_idx) {
                self.next = next_run.start;
            }
        }
        Some(i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_coalesced() {
        let v = RleBitVec::from_indices(20, &[3, 4, 5, 9, 10, 15]);
        assert_eq!(v.num_runs(), 3);
        assert_eq!(v.count_ones(), 6);
    }

    #[test]
    fn get_honours_run_boundaries() {
        let v = RleBitVec::from_indices(20, &[3, 4, 5, 9]);
        assert!(!v.get(2));
        assert!(v.get(3) && v.get(4) && v.get(5));
        assert!(!v.get(6) && !v.get(8));
        assert!(v.get(9));
        assert!(!v.get(19));
    }

    #[test]
    fn bitvec_round_trip() {
        let dense = BitVec::from_indices(130, &[0, 1, 2, 64, 65, 129]);
        let rle = RleBitVec::from_bitvec(&dense);
        assert_eq!(rle.num_runs(), 3);
        assert_eq!(rle.to_bitvec(), dense);
    }

    #[test]
    fn and_intersects_runs() {
        let a = RleBitVec::from_indices(30, &[0, 1, 2, 3, 10, 11, 12]);
        let b = RleBitVec::from_indices(30, &[2, 3, 4, 11]);
        let c = a.and(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![2, 3, 11]);
    }

    #[test]
    fn or_merges_adjacent_runs() {
        let a = RleBitVec::from_indices(30, &[0, 1, 2]);
        let b = RleBitVec::from_indices(30, &[3, 4, 5]);
        let c = a.or(&b);
        assert_eq!(c.num_runs(), 1, "adjacent runs must coalesce");
        assert_eq!(c.count_ones(), 6);
    }

    #[test]
    fn subset_and_intersects() {
        let big = RleBitVec::from_indices(30, &[1, 2, 3, 4, 5, 20, 21]);
        let small = RleBitVec::from_indices(30, &[2, 3, 21]);
        let other = RleBitVec::from_indices(30, &[10]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.intersects(&big));
        assert!(!other.intersects(&big));
        assert!(RleBitVec::zeros(30).is_subset_of(&other));
    }

    #[test]
    fn ones_is_a_single_run() {
        let v = RleBitVec::ones(100);
        assert_eq!(v.num_runs(), 1);
        assert_eq!(v.count_ones(), 100);
        assert_eq!(RleBitVec::ones(0).num_runs(), 0);
    }

    #[test]
    fn clear_splits_runs_like_dense_clear() {
        let indices = [3u32, 4, 5, 6, 9, 64, 65, 66];
        for victim in [3usize, 5, 6, 9, 65, 7 /* already clear */] {
            let mut rle = RleBitVec::from_indices(130, &indices);
            let mut dense = BitVec::from_indices(130, &indices);
            rle.clear(victim);
            dense.clear(victim);
            assert_eq!(rle.to_bitvec(), dense, "clearing {victim}");
            // Runs stay maximal after the split.
            assert_eq!(
                RleBitVec::from_bitvec(&rle.to_bitvec()).num_runs(),
                rle.num_runs(),
                "clearing {victim}"
            );
        }
    }

    #[test]
    fn set_fills_runs_like_dense_set() {
        let indices = [3u32, 4, 5, 9, 11, 64, 66];
        // 10 bridges 9..11, 65 bridges 64..66, 2/6 extend run edges,
        // 20/0 insert isolated runs, 4 is already set.
        for newcomer in [10usize, 65, 2, 6, 20, 0, 4] {
            let mut rle = RleBitVec::from_indices(130, &indices);
            let mut dense = BitVec::from_indices(130, &indices);
            rle.set(newcomer);
            dense.set(newcomer);
            assert_eq!(rle.to_bitvec(), dense, "setting {newcomer}");
            // Runs stay maximal after the merge.
            assert_eq!(
                RleBitVec::from_bitvec(&rle.to_bitvec()).num_runs(),
                rle.num_runs(),
                "setting {newcomer}"
            );
        }
    }

    #[test]
    fn set_then_clear_round_trips() {
        let mut v = RleBitVec::zeros(100);
        for i in [7usize, 8, 9, 50, 99, 0] {
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.to_indices(), vec![0, 7, 8, 9, 50, 99]);
        v.clear(8);
        v.set(8);
        assert_eq!(v.num_runs(), 4, "7..10 re-coalesces into one run");
    }

    #[test]
    fn copy_from_overwrites_reusing_runs() {
        let mut v = RleBitVec::from_indices(30, &[1, 2, 3]);
        let other = RleBitVec::from_indices(30, &[10, 20, 21]);
        v.copy_from(&other);
        assert_eq!(v, other);
    }

    #[test]
    fn clear_all_empties() {
        let mut v = RleBitVec::from_indices(20, &[1, 2, 3, 10]);
        v.clear_all();
        assert!(v.none_set());
        assert_eq!(v.num_runs(), 0);
    }

    #[test]
    fn and_assign_matches_and() {
        let a = RleBitVec::from_indices(30, &[0, 1, 2, 3, 10, 11, 12]);
        let b = RleBitVec::from_indices(30, &[2, 3, 4, 11]);
        let mut c = a.clone();
        assert!(c.and_assign(&b));
        assert_eq!(c, a.and(&b));
        assert!(!c.and_assign(&b), "second intersection is a no-op");
    }

    #[test]
    fn and_assign_dense_matches_dense_and() {
        let a_idx = [0u32, 1, 2, 3, 63, 64, 65, 100, 129];
        let b_idx = [1u32, 3, 63, 64, 100, 101];
        let mut rle = RleBitVec::from_indices(130, &a_idx);
        let dense_b = BitVec::from_indices(130, &b_idx);
        assert!(rle.and_assign_dense(&dense_b));
        let mut expected = BitVec::from_indices(130, &a_idx);
        expected.and_assign(&dense_b);
        assert_eq!(rle.to_bitvec(), expected);
        assert!(!rle.and_assign_dense(&dense_b), "idempotent");
    }

    #[test]
    fn drain_cleared_matches_dense_drain() {
        let a_idx = [1u32, 63, 64, 100, 129];
        let b_idx = [1u32, 64, 77];
        let mut rle = RleBitVec::from_indices(130, &a_idx);
        let rle_b = RleBitVec::from_indices(130, &b_idx);
        let mut removed = vec![42u32]; // pre-existing content must survive
        assert!(rle.drain_cleared(&rle_b, &mut removed));
        assert_eq!(rle.to_indices(), vec![1, 64]);
        assert_eq!(removed, vec![42, 63, 100, 129]);
        removed.clear();
        assert!(!rle.drain_cleared(&rle_b, &mut removed));
        assert!(removed.is_empty());
    }

    #[test]
    fn dense_subset_and_cover_tests() {
        let rle = RleBitVec::from_indices(130, &[3, 4, 5, 64, 65]);
        let superset = BitVec::from_indices(130, &[2, 3, 4, 5, 64, 65, 129]);
        let partial = BitVec::from_indices(130, &[3, 4, 64]);
        assert!(rle.is_subset_of_dense(&superset));
        assert!(!rle.is_subset_of_dense(&partial));
        assert!(rle.covers_dense(&partial));
        assert!(!rle.covers_dense(&superset));
        assert!(RleBitVec::zeros(130).is_subset_of_dense(&partial));
        assert!(rle.covers_dense(&BitVec::zeros(130)));
    }

    #[test]
    fn intersects_indices_merges_sorted_rows() {
        let v = RleBitVec::from_indices(130, &[5, 6, 7, 100]);
        assert!(v.intersects_indices(&[1, 6, 99]));
        assert!(v.intersects_indices(&[100]));
        assert!(!v.intersects_indices(&[0, 4, 8, 99, 101]));
        assert!(!v.intersects_indices(&[]));
    }

    #[test]
    fn or_into_expands_runs() {
        let v = RleBitVec::from_indices(130, &[3, 4, 5, 64, 129]);
        let mut out = BitVec::from_indices(130, &[0]);
        v.or_into(&mut out);
        assert_eq!(out.to_indices(), vec![0, 3, 4, 5, 64, 129]);
    }

    #[test]
    fn iter_runs_reports_maximal_half_open_runs() {
        let v = RleBitVec::from_indices(130, &[0, 1, 2, 64, 100, 101]);
        assert_eq!(
            v.iter_runs().collect::<Vec<_>>(),
            vec![(0, 3), (64, 65), (100, 102)]
        );
        assert_eq!(RleBitVec::zeros(10).iter_runs().count(), 0);
    }

    #[test]
    fn iter_ones_walks_runs_in_order() {
        let idx = [0u32, 1, 63, 64, 65, 127, 128];
        let v = RleBitVec::from_indices(129, &idx);
        assert_eq!(v.to_indices(), idx.to_vec());
        assert_eq!(
            v.iter_ones().collect::<Vec<_>>(),
            idx.iter().map(|&i| i as usize).collect::<Vec<_>>()
        );
    }

    #[test]
    fn compression_wins_on_clustered_ids() {
        // A type-cluster: 10 000 consecutive nodes share a class. Dense
        // storage: 100 000 bits = 12.5 kB; RLE: one run = 8 bytes.
        let dense = {
            let mut v = BitVec::zeros(100_000);
            for i in 40_000..50_000 {
                v.set(i);
            }
            v
        };
        let rle = RleBitVec::from_bitvec(&dense);
        assert_eq!(rle.num_runs(), 1);
        assert_eq!(rle.count_ones(), 10_000);
    }
}
