//! Gap-length (run-length) encoded bit vectors.
//!
//! Sect. 3.3 of the paper notes that "due to bit-vector storage
//! techniques, such as gap-length encoding, the worst memory consumption
//! might not occur with the label storing the most bits", referring to
//! the BitMat storage structure of Atre et al. This module provides that
//! representation: a sorted list of `[start, start+len)` runs of one
//! bits. It is the storage of choice for χ rows that are either very
//! sparse or consist of long contiguous runs (dictionary-encoded
//! databases cluster nodes of one type in contiguous id ranges, which is
//! exactly when run-length encoding shines).
//!
//! [`RleBitVec`] supports the operations the SOI solver needs —
//! intersection, union, subset and intersection tests, popcount — and
//! converts losslessly to and from [`BitVec`].

use crate::BitVec;

/// A run of consecutive one bits `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    start: u32,
    len: u32,
}

impl Run {
    #[inline]
    fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// A fixed-length bit vector stored as sorted, non-adjacent runs of one
/// bits (gap-length encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitVec {
    runs: Vec<Run>,
    len: usize,
}

impl RleBitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        RleBitVec {
            runs: Vec::new(),
            len,
        }
    }

    /// Creates a vector of `len` one bits (a single run).
    pub fn ones(len: usize) -> Self {
        let runs = if len == 0 {
            Vec::new()
        } else {
            vec![Run {
                start: 0,
                len: len as u32,
            }]
        };
        RleBitVec { runs, len }
    }

    /// Builds from sorted-or-unsorted indices.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut runs: Vec<Run> = Vec::new();
        for &i in &sorted {
            assert!((i as usize) < len, "bit index {i} out of bounds {len}");
            match runs.last_mut() {
                Some(run) if run.end() == i => run.len += 1,
                _ => runs.push(Run { start: i, len: 1 }),
            }
        }
        RleBitVec { runs, len }
    }

    /// Lossless conversion from a dense vector.
    pub fn from_bitvec(v: &BitVec) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        for i in v.iter_ones() {
            let i = i as u32;
            match runs.last_mut() {
                Some(run) if run.end() == i => run.len += 1,
                _ => runs.push(Run { start: i, len: 1 }),
            }
        }
        RleBitVec { runs, len: v.len() }
    }

    /// Lossless conversion to a dense vector.
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        for run in &self.runs {
            for i in run.start..run.end() {
                out.set(i as usize);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs — the compressed size (2 × u32 per run).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.runs.iter().map(|r| r.len as usize).sum()
    }

    /// `true` iff no bit is set.
    pub fn none_set(&self) -> bool {
        self.runs.is_empty()
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        let i = i as u32;
        // Last run starting at or before i.
        match self.runs.partition_point(|r| r.start <= i) {
            0 => false,
            p => i < self.runs[p - 1].end(),
        }
    }

    /// Iterator over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs
            .iter()
            .flat_map(|r| (r.start..r.end()).map(|i| i as usize))
    }

    /// Intersection with another RLE vector.
    pub fn and(&self, other: &RleBitVec) -> RleBitVec {
        self.check_len(other);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            let start = a.start.max(b.start);
            let end = a.end().min(b.end());
            if start < end {
                out.push(Run {
                    start,
                    len: end - start,
                });
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        RleBitVec {
            runs: out,
            len: self.len,
        }
    }

    /// Union with another RLE vector.
    pub fn or(&self, other: &RleBitVec) -> RleBitVec {
        self.check_len(other);
        let mut out: Vec<Run> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let push = |run: Run, out: &mut Vec<Run>| match out.last_mut() {
            Some(last) if last.end() >= run.start => {
                let end = last.end().max(run.end());
                last.len = end - last.start;
            }
            _ => out.push(run),
        };
        while i < self.runs.len() || j < other.runs.len() {
            let take_left = match (self.runs.get(i), other.runs.get(j)) {
                (Some(a), Some(b)) => a.start <= b.start,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_left {
                push(self.runs[i], &mut out);
                i += 1;
            } else {
                push(other.runs[j], &mut out);
                j += 1;
            }
        }
        RleBitVec {
            runs: out,
            len: self.len,
        }
    }

    /// Subset test `self ≤ other`.
    pub fn is_subset_of(&self, other: &RleBitVec) -> bool {
        self.check_len(other);
        // Every run of self must be covered by a single run of other
        // (runs are maximal, so a covering run cannot be split).
        let mut j = 0usize;
        for a in &self.runs {
            while j < other.runs.len() && other.runs[j].end() < a.end() {
                j += 1;
            }
            match other.runs.get(j) {
                Some(b) if b.start <= a.start && a.end() <= b.end() => {}
                _ => return false,
            }
        }
        true
    }

    /// `true` iff `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &RleBitVec) -> bool {
        self.check_len(other);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            if a.start.max(b.start) < a.end().min(b.end()) {
                return true;
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    fn check_len(&self, other: &RleBitVec) {
        assert_eq!(
            self.len, other.len,
            "bit-vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_coalesced() {
        let v = RleBitVec::from_indices(20, &[3, 4, 5, 9, 10, 15]);
        assert_eq!(v.num_runs(), 3);
        assert_eq!(v.count_ones(), 6);
    }

    #[test]
    fn get_honours_run_boundaries() {
        let v = RleBitVec::from_indices(20, &[3, 4, 5, 9]);
        assert!(!v.get(2));
        assert!(v.get(3) && v.get(4) && v.get(5));
        assert!(!v.get(6) && !v.get(8));
        assert!(v.get(9));
        assert!(!v.get(19));
    }

    #[test]
    fn bitvec_round_trip() {
        let dense = BitVec::from_indices(130, &[0, 1, 2, 64, 65, 129]);
        let rle = RleBitVec::from_bitvec(&dense);
        assert_eq!(rle.num_runs(), 3);
        assert_eq!(rle.to_bitvec(), dense);
    }

    #[test]
    fn and_intersects_runs() {
        let a = RleBitVec::from_indices(30, &[0, 1, 2, 3, 10, 11, 12]);
        let b = RleBitVec::from_indices(30, &[2, 3, 4, 11]);
        let c = a.and(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![2, 3, 11]);
    }

    #[test]
    fn or_merges_adjacent_runs() {
        let a = RleBitVec::from_indices(30, &[0, 1, 2]);
        let b = RleBitVec::from_indices(30, &[3, 4, 5]);
        let c = a.or(&b);
        assert_eq!(c.num_runs(), 1, "adjacent runs must coalesce");
        assert_eq!(c.count_ones(), 6);
    }

    #[test]
    fn subset_and_intersects() {
        let big = RleBitVec::from_indices(30, &[1, 2, 3, 4, 5, 20, 21]);
        let small = RleBitVec::from_indices(30, &[2, 3, 21]);
        let other = RleBitVec::from_indices(30, &[10]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.intersects(&big));
        assert!(!other.intersects(&big));
        assert!(RleBitVec::zeros(30).is_subset_of(&other));
    }

    #[test]
    fn ones_is_a_single_run() {
        let v = RleBitVec::ones(100);
        assert_eq!(v.num_runs(), 1);
        assert_eq!(v.count_ones(), 100);
        assert_eq!(RleBitVec::ones(0).num_runs(), 0);
    }

    #[test]
    fn compression_wins_on_clustered_ids() {
        // A type-cluster: 10 000 consecutive nodes share a class. Dense
        // storage: 100 000 bits = 12.5 kB; RLE: one run = 8 bytes.
        let dense = {
            let mut v = BitVec::zeros(100_000);
            for i in 40_000..50_000 {
                v.set(i);
            }
            v
        };
        let rle = RleBitVec::from_bitvec(&dense);
        assert_eq!(rle.num_runs(), 1);
        assert_eq!(rle.count_ones(), 10_000);
    }
}
