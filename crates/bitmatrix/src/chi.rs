//! Pluggable χ storage: one candidate vector per SOI variable, stored
//! either densely or run-length encoded.
//!
//! The solver of Sect. 3.2 keeps one candidate set χ(v) per variable.
//! Dense [`BitVec`] storage costs O(|V|) words per variable regardless
//! of how few candidates survive — on large graphs with selective
//! labels the sets are tiny (or consist of long contiguous id runs,
//! because dictionary-encoded databases cluster nodes of one type), and
//! the gap-length encoded [`RleBitVec`] stores them in O(runs) words.
//!
//! [`ChiVec`] is the per-variable abstraction both fixpoint engines go
//! through: a two-variant enum whose operations are bit-for-bit
//! equivalent across backends, including the *order* in which removal
//! verbs report cleared bits — which is why the solver's χ fixpoints
//! and every logical work counter are identical whichever backend a
//! solve selects (property-tested in `dualsim-core`). The backend is
//! chosen per solve by [`ChiBackend`]: explicitly, or adaptively from
//! the seeded candidate density (`Auto`).

use crate::bitvec::{BitVec, Ones};
use crate::rle::{RleBitVec, RleOnes};

/// χ storage backend selection, configured per solve
/// (`SolverConfig::chi_backend` in `dualsim-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChiBackend {
    /// Dense `u64`-block storage ([`BitVec`]): O(|V|) words per
    /// variable, constant-time bit access — the right choice when most
    /// nodes stay candidates.
    #[default]
    Dense,
    /// Run-length encoded storage ([`RleBitVec`]): O(runs) words per
    /// variable — the right choice when candidate sets are sparse or
    /// clustered (huge graphs with selective labels).
    Rle,
    /// Decide per solve from the *seeded* candidate density: RLE when
    /// the Eq. (12)/(13) initialization leaves at most
    /// 1/[`AUTO_RLE_DENSITY_DIVISOR`] of the |vars| × |V| candidate
    /// space populated, dense otherwise. The decision is made *before*
    /// any χ vector materializes (from summary popcounts), so a solve
    /// that resolves to dense never builds a fragmented RLE seed first.
    Auto,
}

/// `Auto` picks RLE when `seeded_candidates * AUTO_RLE_DENSITY_DIVISOR
/// <= |vars| * |V|`, i.e. at seeded densities of 1/64 and below. The
/// divisor equals the dense block width on purpose: even a fully
/// scattered candidate set (one 8-byte run per candidate) then costs at
/// most `space / 64` words — the dense block count — so an
/// `Auto`-selected RLE backend can never store more χ words than dense
/// would.
pub const AUTO_RLE_DENSITY_DIVISOR: usize = 64;

impl ChiBackend {
    /// Parses a backend name (`dense` / `rle` / `auto`), as accepted by
    /// the `sparqlsim --chi-backend` flag.
    pub fn from_name(name: &str) -> Option<ChiBackend> {
        match name {
            "dense" => Some(ChiBackend::Dense),
            "rle" => Some(ChiBackend::Rle),
            "auto" => Some(ChiBackend::Auto),
            _ => None,
        }
    }

    /// The backend's display name.
    pub fn name(self) -> &'static str {
        match self {
            ChiBackend::Dense => "dense",
            ChiBackend::Rle => "rle",
            ChiBackend::Auto => "auto",
        }
    }
}

/// One χ candidate vector behind the pluggable storage abstraction.
///
/// All verbs are semantically identical across the two backends, report
/// identical change flags, and enumerate/clear bits in identical
/// (ascending) order. Equality is *semantic*: two vectors are equal iff
/// they have the same length and the same set bits, regardless of
/// backend.
#[derive(Debug, Clone)]
pub enum ChiVec {
    /// Dense `u64`-block storage.
    Dense(BitVec),
    /// Run-length encoded storage.
    Rle(RleBitVec),
}

fn concrete(backend: ChiBackend) -> ChiBackend {
    assert!(
        backend != ChiBackend::Auto,
        "Auto must be resolved to a concrete backend before constructing χ vectors"
    );
    backend
}

impl ChiVec {
    /// A vector of `len` zero bits in the given (concrete) backend.
    ///
    /// # Panics
    /// Panics on [`ChiBackend::Auto`] — the caller resolves `Auto`
    /// before materializing storage.
    pub fn zeros(len: usize, backend: ChiBackend) -> ChiVec {
        match concrete(backend) {
            ChiBackend::Dense => ChiVec::Dense(BitVec::zeros(len)),
            _ => ChiVec::Rle(RleBitVec::zeros(len)),
        }
    }

    /// A vector of `len` one bits (for RLE: a single run).
    ///
    /// # Panics
    /// Panics on [`ChiBackend::Auto`].
    pub fn ones(len: usize, backend: ChiBackend) -> ChiVec {
        match concrete(backend) {
            ChiBackend::Dense => ChiVec::Dense(BitVec::ones(len)),
            _ => ChiVec::Rle(RleBitVec::ones(len)),
        }
    }

    /// A vector with exactly the given bits set.
    ///
    /// # Panics
    /// Panics on [`ChiBackend::Auto`] or out-of-bounds indices.
    pub fn from_indices(len: usize, indices: &[u32], backend: ChiBackend) -> ChiVec {
        match concrete(backend) {
            ChiBackend::Dense => ChiVec::Dense(BitVec::from_indices(len, indices)),
            _ => ChiVec::Rle(RleBitVec::from_indices(len, indices)),
        }
    }

    /// The storage backend of this vector (never `Auto`).
    pub fn backend(&self) -> ChiBackend {
        match self {
            ChiVec::Dense(_) => ChiBackend::Dense,
            ChiVec::Rle(_) => ChiBackend::Rle,
        }
    }

    /// Converts in place to the given concrete backend (no-op when
    /// already there).
    ///
    /// # Panics
    /// Panics on [`ChiBackend::Auto`].
    pub fn convert_to(&mut self, backend: ChiBackend) {
        match (concrete(backend), &*self) {
            (ChiBackend::Dense, ChiVec::Rle(v)) => *self = ChiVec::Dense(v.to_bitvec()),
            (ChiBackend::Rle, ChiVec::Dense(v)) => *self = ChiVec::Rle(RleBitVec::from_bitvec(v)),
            _ => {}
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ChiVec::Dense(v) => v.len(),
            ChiVec::Rle(v) => v.len(),
        }
    }

    /// `true` iff the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        match self {
            ChiVec::Dense(v) => v.count_ones(),
            ChiVec::Rle(v) => v.count_ones(),
        }
    }

    /// `true` iff no bit is set.
    #[inline]
    pub fn none_set(&self) -> bool {
        match self {
            ChiVec::Dense(v) => v.none_set(),
            ChiVec::Rle(v) => v.none_set(),
        }
    }

    /// `true` iff at least one bit is set.
    #[inline]
    pub fn any_set(&self) -> bool {
        !self.none_set()
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self {
            ChiVec::Dense(v) => v.get(i),
            ChiVec::Rle(v) => v.get(i),
        }
    }

    /// Sets bit `i` to zero (splitting an RLE run when necessary).
    #[inline]
    pub fn clear(&mut self, i: usize) {
        match self {
            ChiVec::Dense(v) => v.clear(i),
            ChiVec::Rle(v) => v.clear(i),
        }
    }

    /// Sets bit `i` to one (merging adjacent RLE runs when necessary) —
    /// the re-admission verb of insertion maintenance.
    #[inline]
    pub fn set(&mut self, i: usize) {
        match self {
            ChiVec::Dense(v) => v.set(i),
            ChiVec::Rle(v) => v.set(i),
        }
    }

    /// Sets every bit to zero.
    pub fn clear_all(&mut self) {
        match self {
            ChiVec::Dense(v) => v.clear_all(),
            ChiVec::Rle(v) => v.clear_all(),
        }
    }

    /// Copies `other` into `self` without reallocating when the
    /// backends match (the snapshot primitive of the solver's self-loop
    /// evaluation path); a mixed-backend copy falls back to a clone.
    ///
    /// # Panics
    /// Panics if the lengths differ (same-backend case).
    pub fn copy_from(&mut self, other: &ChiVec) {
        match (self, other) {
            (ChiVec::Dense(a), ChiVec::Dense(b)) => a.copy_from(b),
            (ChiVec::Rle(a), ChiVec::Rle(b)) => a.copy_from(b),
            (slot, _) => *slot = other.clone(),
        }
    }

    /// Iterator over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> ChiOnes<'_> {
        match self {
            ChiVec::Dense(v) => ChiOnes::Dense(v.iter_ones()),
            ChiVec::Rle(v) => ChiOnes::Rle(v.iter_ones()),
        }
    }

    /// Collects the set-bit indices into a vector.
    pub fn to_indices(&self) -> Vec<u32> {
        match self {
            ChiVec::Dense(v) => v.to_indices(),
            ChiVec::Rle(v) => v.to_indices(),
        }
    }

    /// Lossless conversion to a dense vector (the χ handoff to
    /// dense-only consumers such as the quotient expansion).
    pub fn to_bitvec(&self) -> BitVec {
        match self {
            ChiVec::Dense(v) => v.clone(),
            ChiVec::Rle(v) => {
                let mut out = BitVec::zeros(v.len());
                v.or_into(&mut out);
                out
            }
        }
    }

    /// `out ∨= self` into a dense accumulator (per-variable union of
    /// `Solution::var_solution`).
    pub fn or_into(&self, out: &mut BitVec) {
        match self {
            ChiVec::Dense(v) => {
                out.or_assign(v);
            }
            ChiVec::Rle(v) => v.or_into(out),
        }
    }

    /// In-place intersection `self ∧= other`; returns `true` iff `self`
    /// changed. Mixed backends are supported (the right-hand side is
    /// viewed semantically).
    pub fn and_assign(&mut self, other: &ChiVec) -> bool {
        match (self, other) {
            (ChiVec::Dense(a), ChiVec::Dense(b)) => a.and_assign(b),
            (ChiVec::Rle(a), ChiVec::Rle(b)) => a.and_assign(b),
            (ChiVec::Dense(a), ChiVec::Rle(b)) => a.and_assign(&b.to_bitvec()),
            (ChiVec::Rle(a), ChiVec::Dense(b)) => a.and_assign_dense(b),
        }
    }

    /// In-place intersection with a *dense* vector (the Eq.-(13)
    /// summaries and the row-wise multiply product stay dense); returns
    /// `true` iff `self` changed. The RLE backend intersects run by run
    /// without densifying itself.
    pub fn and_assign_dense(&mut self, other: &BitVec) -> bool {
        match self {
            ChiVec::Dense(a) => a.and_assign(other),
            ChiVec::Rle(a) => a.and_assign_dense(other),
        }
    }

    /// In-place intersection that records the cleared bits in ascending
    /// order (the removal-event primitive of the delta engine); the
    /// buffer is *not* cleared first. Returns `true` iff `self` changed.
    ///
    /// # Panics
    /// Panics if the backends differ — all χ vectors of one solve share
    /// one backend.
    pub fn drain_cleared(&mut self, other: &ChiVec, removed: &mut Vec<u32>) -> bool {
        match (self, other) {
            (ChiVec::Dense(a), ChiVec::Dense(b)) => a.drain_cleared(b, removed),
            (ChiVec::Rle(a), ChiVec::Rle(b)) => a.drain_cleared(b, removed),
            _ => panic!("drain_cleared across mixed χ backends"),
        }
    }

    /// Subset test `self ≤ other` (mixed backends supported).
    pub fn is_subset_of(&self, other: &ChiVec) -> bool {
        match (self, other) {
            (ChiVec::Dense(a), ChiVec::Dense(b)) => a.is_subset_of(b),
            (ChiVec::Rle(a), ChiVec::Rle(b)) => a.is_subset_of(b),
            (ChiVec::Dense(a), ChiVec::Rle(b)) => b.covers_dense(a),
            (ChiVec::Rle(a), ChiVec::Dense(b)) => a.is_subset_of_dense(b),
        }
    }

    /// Subset test against a dense vector: `self ≤ dense`.
    pub fn is_subset_of_dense(&self, dense: &BitVec) -> bool {
        match self {
            ChiVec::Dense(a) => a.is_subset_of(dense),
            ChiVec::Rle(a) => a.is_subset_of_dense(dense),
        }
    }

    /// Superset test against a dense vector: `dense ≤ self` (the lazy
    /// seeding deferral check of the delta engine).
    pub fn covers_dense(&self, dense: &BitVec) -> bool {
        match self {
            ChiVec::Dense(a) => dense.is_subset_of(a),
            ChiVec::Rle(a) => a.covers_dense(dense),
        }
    }

    /// `true` iff any of the (sorted matrix-row) indices is a set bit.
    #[inline]
    pub fn intersects_indices(&self, indices: &[u32]) -> bool {
        match self {
            ChiVec::Dense(v) => v.intersects_indices(indices),
            ChiVec::Rle(v) => v.intersects_indices(indices),
        }
    }

    /// Storage words in `u64` equivalents — dense: one per 64-bit
    /// block; RLE: one per run (two `u32`s). The per-backend χ memory
    /// metric `SolveStats::chi_peak_words` tracks.
    pub fn storage_words(&self) -> usize {
        match self {
            ChiVec::Dense(v) => v.storage_words(),
            ChiVec::Rle(v) => v.storage_words(),
        }
    }
}

impl From<BitVec> for ChiVec {
    fn from(v: BitVec) -> ChiVec {
        ChiVec::Dense(v)
    }
}

impl From<RleBitVec> for ChiVec {
    fn from(v: RleBitVec) -> ChiVec {
        ChiVec::Rle(v)
    }
}

impl PartialEq for ChiVec {
    /// Semantic equality: same length, same set bits — backends never
    /// matter, so dense-vs-RLE parity gates compare solutions directly.
    fn eq(&self, other: &ChiVec) -> bool {
        match (self, other) {
            (ChiVec::Dense(a), ChiVec::Dense(b)) => a == b,
            (ChiVec::Rle(a), ChiVec::Rle(b)) => a == b,
            (ChiVec::Dense(a), ChiVec::Rle(b)) | (ChiVec::Rle(b), ChiVec::Dense(a)) => {
                rle_eq_dense(b, a)
            }
        }
    }
}

impl Eq for ChiVec {}

impl PartialEq<BitVec> for ChiVec {
    fn eq(&self, other: &BitVec) -> bool {
        match self {
            ChiVec::Dense(a) => a == other,
            ChiVec::Rle(a) => rle_eq_dense(a, other),
        }
    }
}

impl PartialEq<ChiVec> for BitVec {
    fn eq(&self, other: &ChiVec) -> bool {
        other == self
    }
}

fn rle_eq_dense(rle: &RleBitVec, dense: &BitVec) -> bool {
    rle.len() == dense.len()
        && rle.count_ones() == dense.count_ones()
        && rle.is_subset_of_dense(dense)
}

/// Iterator over the set-bit indices of a [`ChiVec`], in ascending
/// order.
pub enum ChiOnes<'a> {
    /// Dense-block walk.
    Dense(Ones<'a>),
    /// Run walk.
    Rle(RleOnes<'a>),
}

impl Iterator for ChiOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            ChiOnes::Dense(it) => it.next(),
            ChiOnes::Rle(it) => it.next(),
        }
    }
}

/// Read-only χ access shared by the Def.-2 checkers of `dualsim-core`:
/// implemented by both the plain dense vectors the baseline algorithms
/// return and the backend-abstracted [`ChiVec`] the solver returns, so
/// one checker certifies every algorithm.
pub trait ChiRead: PartialEq<BitVec> {
    /// Number of bits.
    fn bits(&self) -> usize;
    /// Reads bit `i`.
    fn get(&self, i: usize) -> bool;
    /// `true` iff no bit is set.
    fn none_set(&self) -> bool;
    /// `true` iff `f` holds for every set-bit index (visited in
    /// ascending order, allocation-free; short-circuits on the first
    /// `false`).
    fn all_ones(&self, f: impl FnMut(usize) -> bool) -> bool
    where
        Self: Sized;
    /// `true` iff any of the sorted indices is a set bit.
    fn intersects_indices(&self, indices: &[u32]) -> bool;
    /// Subset test against a same-representation vector.
    fn is_subset_of(&self, other: &Self) -> bool;
    /// Subset test against a dense vector (the product accumulator of
    /// [`BitMatrix::multiply_subset_into`](crate::BitMatrix::multiply_subset_into)),
    /// without densifying `self`.
    fn is_subset_of_bits(&self, dense: &BitVec) -> bool;
}

impl ChiRead for BitVec {
    fn bits(&self) -> usize {
        self.len()
    }
    fn get(&self, i: usize) -> bool {
        BitVec::get(self, i)
    }
    fn none_set(&self) -> bool {
        BitVec::none_set(self)
    }
    fn all_ones(&self, f: impl FnMut(usize) -> bool) -> bool {
        self.iter_ones().all(f)
    }
    fn intersects_indices(&self, indices: &[u32]) -> bool {
        BitVec::intersects_indices(self, indices)
    }
    fn is_subset_of(&self, other: &Self) -> bool {
        BitVec::is_subset_of(self, other)
    }
    fn is_subset_of_bits(&self, dense: &BitVec) -> bool {
        BitVec::is_subset_of(self, dense)
    }
}

impl ChiRead for ChiVec {
    fn bits(&self) -> usize {
        self.len()
    }
    fn get(&self, i: usize) -> bool {
        ChiVec::get(self, i)
    }
    fn none_set(&self) -> bool {
        ChiVec::none_set(self)
    }
    fn all_ones(&self, f: impl FnMut(usize) -> bool) -> bool {
        self.iter_ones().all(f)
    }
    fn intersects_indices(&self, indices: &[u32]) -> bool {
        ChiVec::intersects_indices(self, indices)
    }
    fn is_subset_of(&self, other: &Self) -> bool {
        ChiVec::is_subset_of(self, other)
    }
    fn is_subset_of_bits(&self, dense: &BitVec) -> bool {
        ChiVec::is_subset_of_dense(self, dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [ChiBackend; 2] = [ChiBackend::Dense, ChiBackend::Rle];

    #[test]
    fn constructors_agree_across_backends() {
        for backend in BACKENDS {
            let z = ChiVec::zeros(70, backend);
            let o = ChiVec::ones(70, backend);
            let f = ChiVec::from_indices(70, &[1, 2, 64], backend);
            assert_eq!(z.backend(), backend);
            assert!(z.none_set() && o.any_set());
            assert_eq!(o.count_ones(), 70);
            assert_eq!(f.to_indices(), vec![1, 2, 64]);
        }
        assert_eq!(
            ChiVec::ones(70, ChiBackend::Dense),
            ChiVec::ones(70, ChiBackend::Rle)
        );
    }

    #[test]
    #[should_panic(expected = "Auto must be resolved")]
    fn auto_cannot_materialize() {
        let _ = ChiVec::zeros(10, ChiBackend::Auto);
    }

    #[test]
    fn semantic_equality_ignores_backend() {
        let d = ChiVec::from_indices(130, &[0, 1, 2, 64, 129], ChiBackend::Dense);
        let r = ChiVec::from_indices(130, &[0, 1, 2, 64, 129], ChiBackend::Rle);
        assert_eq!(d, r);
        assert_eq!(r, d);
        let dense = BitVec::from_indices(130, &[0, 1, 2, 64, 129]);
        assert_eq!(r, dense);
        assert_eq!(dense, r);
        let other = ChiVec::from_indices(130, &[0, 1, 2, 64], ChiBackend::Rle);
        assert_ne!(d, other);
    }

    #[test]
    fn copy_from_matches_clone_for_every_backend_pair() {
        for src_backend in BACKENDS {
            for dst_backend in BACKENDS {
                let src = ChiVec::from_indices(70, &[1, 2, 64], src_backend);
                let mut dst = ChiVec::from_indices(70, &[5], dst_backend);
                dst.copy_from(&src);
                assert_eq!(dst, src, "{src_backend:?} -> {dst_backend:?}");
            }
        }
    }

    #[test]
    fn conversion_round_trips() {
        let mut v = ChiVec::from_indices(130, &[5, 6, 7, 100], ChiBackend::Dense);
        let original = v.clone();
        v.convert_to(ChiBackend::Rle);
        assert_eq!(v.backend(), ChiBackend::Rle);
        assert_eq!(v, original);
        v.convert_to(ChiBackend::Dense);
        assert_eq!(v.backend(), ChiBackend::Dense);
        assert_eq!(v, original);
    }

    #[test]
    fn verbs_agree_across_backends() {
        let a_idx = [0u32, 1, 2, 3, 63, 64, 100, 129];
        let b_idx = [1u32, 3, 63, 64, 101];
        let dense_mask = BitVec::from_indices(130, &b_idx);
        let mut results = Vec::new();
        for backend in BACKENDS {
            let mut a = ChiVec::from_indices(130, &a_idx, backend);
            let b = ChiVec::from_indices(130, &b_idx, backend);
            assert!(a.intersects_indices(&[3, 7]));
            assert!(!a.intersects_indices(&[4, 5]));
            assert!(!b.is_subset_of(&a), "101 ∈ b but ∉ a");
            let mut drained = a.clone();
            let mut removed = Vec::new();
            assert!(drained.drain_cleared(&b, &mut removed));
            assert_eq!(removed, vec![0, 2, 100, 129]);
            assert!(a.and_assign_dense(&dense_mask));
            assert_eq!(a, drained);
            a.clear(63);
            a.set(62);
            a.set(64);
            let mut out = BitVec::zeros(130);
            a.or_into(&mut out);
            results.push((a.to_indices(), out, a.count_ones()));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn storage_words_reflect_the_representation() {
        // One 10-bit run in 64k bits: dense pays 1024 words, RLE one.
        let mut dense = ChiVec::zeros(65_536, ChiBackend::Dense);
        dense.convert_to(ChiBackend::Dense);
        assert_eq!(dense.storage_words(), 1024);
        let rle = ChiVec::from_indices(65_536, &(40_000..40_010).collect::<Vec<_>>(), ChiBackend::Rle);
        assert_eq!(rle.storage_words(), 1);
        assert_eq!(rle.count_ones(), 10);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [ChiBackend::Dense, ChiBackend::Rle, ChiBackend::Auto] {
            assert_eq!(ChiBackend::from_name(backend.name()), Some(backend));
        }
        assert_eq!(ChiBackend::from_name("sparse"), None);
    }
}
