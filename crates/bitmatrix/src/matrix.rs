//! Square boolean adjacency matrices with compressed rows.
//!
//! A [`BitMatrix`] stores one adjacency matrix `F^a` (or `B^a`) of
//! Sect. 3.2 in compressed sparse row form: row `i` is the sorted run of
//! column indices whose bit is one. This is the same information as the
//! paper's gap-length encoded bit rows and keeps the memory footprint
//! proportional to the number of edges rather than `|V|²`.

use crate::{kernels, BitVec, ChiRead, ChiVec, RleBitVec};

/// A row selector for [`BitMatrix`] multiplications: any χ
/// representation that can enumerate its set bits drives the row-wise
/// multiply, the counter-seeding multiply and the column-wise probe.
/// Implemented by the dense [`BitVec`] (with the block-skip fast path),
/// the run-length encoded [`RleBitVec`] (walking runs directly, so an
/// RLE χ never densifies to select rows) and the backend-dispatching
/// [`ChiVec`].
pub trait RowSelector {
    /// Number of bits of the selector (must equal the matrix dimension).
    fn selector_len(&self) -> usize;

    /// Calls `f` for every selected row index, in ascending order,
    /// exactly once per set bit — the work-counter contract: the number
    /// of calls is `count_ones()` for every implementation, so solver
    /// statistics are identical across χ backends.
    fn for_each_selected(&self, f: impl FnMut(usize));

    /// `true` iff any of the sorted indices is a set bit (`row ∩ self ≠
    /// ∅` for a compressed matrix row) — the column-wise probe.
    fn selects_any(&self, indices: &[u32]) -> bool;

    /// Calls `f` once per maximal run `[start, end)` of consecutive
    /// selected indices, in ascending order. Runs partition exactly the
    /// indices [`RowSelector::for_each_selected`] visits, in the same
    /// order, so any per-run consumer that walks
    /// [`BitMatrix::rows_segment`] performs the identical per-entry
    /// work (and work *counts*) as the per-bit walk — only the number
    /// of CSR offset lookups differs. The default implementation
    /// coalesces the per-bit walk; [`RleBitVec`] overrides it to emit
    /// its runs directly, with no per-bit decode.
    fn for_each_selected_run(&self, mut f: impl FnMut(usize, usize))
    where
        Self: Sized,
    {
        let mut start = usize::MAX;
        let mut prev = usize::MAX;
        self.for_each_selected(|i| {
            if start == usize::MAX {
                start = i;
            } else if i != prev + 1 {
                f(start, prev + 1);
                start = i;
            }
            prev = i;
        });
        if start != usize::MAX {
            f(start, prev + 1);
        }
    }
}

impl RowSelector for BitVec {
    #[inline]
    fn selector_len(&self) -> usize {
        self.len()
    }

    /// Walks the selector with the dense block-skip fast path: when more
    /// than half the bits are set, all-ones blocks dispatch their 64
    /// rows with no per-bit decode and all-zeros blocks skip 64 rows at
    /// once — the fast path for barely-filtered χ vectors right after
    /// Eq. (12)/(13) initialization.
    #[inline]
    fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        const B: usize = crate::bitvec::BLOCK_BITS;
        if 2 * self.count_ones() > self.len() {
            for (bi, &block) in self.blocks().iter().enumerate() {
                if block == 0 {
                    continue;
                }
                let base = bi * B;
                if block == !0u64 {
                    let end = (base + B).min(self.len());
                    for i in base..end {
                        f(i);
                    }
                } else {
                    let mut bits = block;
                    while bits != 0 {
                        let i = base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        f(i);
                    }
                }
            }
        } else {
            for i in self.iter_ones() {
                f(i);
            }
        }
    }

    #[inline]
    fn selects_any(&self, indices: &[u32]) -> bool {
        self.intersects_indices(indices)
    }
}

impl RowSelector for RleBitVec {
    #[inline]
    fn selector_len(&self) -> usize {
        self.len()
    }

    /// Walks the runs directly — one range loop per run, no per-bit
    /// decode and no densification.
    #[inline]
    fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        for i in self.iter_ones() {
            f(i);
        }
    }

    #[inline]
    fn selects_any(&self, indices: &[u32]) -> bool {
        self.intersects_indices(indices)
    }

    /// One call per stored run — the run-aware fast path: no per-bit
    /// decode at all.
    #[inline]
    fn for_each_selected_run(&self, mut f: impl FnMut(usize, usize)) {
        for (start, end) in self.iter_runs() {
            f(start as usize, end as usize);
        }
    }
}

impl RowSelector for ChiVec {
    #[inline]
    fn selector_len(&self) -> usize {
        self.len()
    }

    #[inline]
    fn for_each_selected(&self, f: impl FnMut(usize)) {
        match self {
            ChiVec::Dense(v) => v.for_each_selected(f),
            ChiVec::Rle(v) => v.for_each_selected(f),
        }
    }

    #[inline]
    fn selects_any(&self, indices: &[u32]) -> bool {
        self.intersects_indices(indices)
    }

    #[inline]
    fn for_each_selected_run(&self, f: impl FnMut(usize, usize)) {
        match self {
            ChiVec::Dense(v) => v.for_each_selected_run(f),
            ChiVec::Rle(v) => v.for_each_selected_run(f),
        }
    }
}

/// A `dim × dim` boolean matrix with compressed (sorted, deduplicated)
/// rows.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    dim: usize,
    /// CSR offsets: row `i` occupies `targets[offsets[i]..offsets[i+1]]`.
    offsets: Box<[u32]>,
    /// Concatenated sorted column indices of all rows.
    targets: Box<[u32]>,
    /// Row summary: bit `i` set iff row `i` is non-empty. For a forward
    /// matrix `F^a` this is the vector `f^a` of Eq. (13).
    summary: BitVec,
}

impl BitMatrix {
    /// Builds a matrix from an edge list of `(row, col)` pairs.
    /// Duplicates are removed; the input order is irrelevant.
    ///
    /// # Panics
    /// Panics if any index is `>= dim` or if the number of entries
    /// overflows `u32`.
    pub fn from_edges(dim: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0u32; dim + 1];
        for &(r, c) in edges {
            assert!(
                (r as usize) < dim && (c as usize) < dim,
                "edge ({r},{c}) out of bounds {dim}"
            );
            counts[r as usize + 1] += 1;
        }
        for i in 0..dim {
            counts[i + 1] += counts[i];
        }
        let nnz = counts[dim] as usize;
        assert!(nnz <= u32::MAX as usize, "too many matrix entries");
        let mut targets = vec![0u32; nnz];
        let mut cursor = counts.clone();
        for &(r, c) in edges {
            let slot = cursor[r as usize] as usize;
            targets[slot] = c;
            cursor[r as usize] += 1;
        }
        // Sort and deduplicate each row, then re-compact the CSR arrays.
        let mut dedup_targets = Vec::with_capacity(nnz);
        let mut offsets = vec![0u32; dim + 1];
        for i in 0..dim {
            let row = &mut targets[counts[i] as usize..counts[i + 1] as usize];
            row.sort_unstable();
            let start = dedup_targets.len();
            for &c in row.iter() {
                if dedup_targets.len() == start || *dedup_targets.last().unwrap() != c {
                    dedup_targets.push(c);
                }
            }
            offsets[i + 1] = dedup_targets.len() as u32;
        }
        let mut summary = BitVec::zeros(dim);
        for i in 0..dim {
            if offsets[i] != offsets[i + 1] {
                summary.set(i);
            }
        }
        BitMatrix {
            dim,
            offsets: offsets.into_boxed_slice(),
            targets: dedup_targets.into_boxed_slice(),
            summary,
        }
    }

    /// Matrix dimension (rows == columns == data-graph node count).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored one-entries (== number of `a`-labeled edges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// The sorted column indices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of one-entries in row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The concatenated entries of the consecutive rows `[start, end)` —
    /// CSR rows are laid out back to back, so a whole *run* of rows is
    /// one contiguous slice reachable through a single offset-pair
    /// lookup. This is the run-aware counterpart of [`BitMatrix::row`]:
    /// walking `rows_segment(a, b)` visits exactly the entries of
    /// `row(a), row(a+1), …, row(b-1)` in that order, with one
    /// row-pointer load for the whole run instead of one per row (the
    /// saving `SolveStats::row_lookups` makes measurable).
    #[inline]
    pub fn rows_segment(&self, start: usize, end: usize) -> &[u32] {
        &self.targets[self.offsets[start] as usize..self.offsets[end] as usize]
    }

    /// Entry test `A(i, j) == 1`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.row(i).binary_search(&(j as u32)).is_ok()
    }

    /// Row summary vector: bit `i` set iff row `i` is non-empty
    /// (the `f^a` / `b^a` vectors of the Eq. (13) initialization).
    #[inline]
    pub fn row_summary(&self) -> &BitVec {
        &self.summary
    }

    /// Number of rows with at least one entry.
    pub fn nonempty_rows(&self) -> usize {
        self.summary.count_ones()
    }

    /// Row-wise bit-matrix multiplication `out = x ×b A` (Eq. (9)):
    /// `out` is the union of the rows of `A` selected by the set bits of
    /// `x`. The selector is any [`RowSelector`] — a dense [`BitVec`]
    /// (walked with the block-skip fast path), an [`RleBitVec`] (runs
    /// walked directly, no densification) or a [`ChiVec`]. Returns the
    /// number of rows OR-ed (a work measure for the solver statistics,
    /// identical across selector representations).
    ///
    /// # Panics
    /// Panics if the vector lengths differ from `dim`.
    pub fn multiply_into<S: RowSelector>(&self, x: &S, out: &mut BitVec) -> usize {
        assert_eq!(x.selector_len(), self.dim);
        assert_eq!(out.len(), self.dim);
        out.clear_all();
        // Hoist the kernel dispatch out of the per-row loop: one lookup
        // per multiply, not one per selected row.
        let kernel = kernels::active();
        let mut rows = 0usize;
        x.for_each_selected(|i| {
            kernels::or_scatter_with(kernel, out.blocks_mut(), self.row(i));
            rows += 1;
        });
        rows
    }

    /// Fused row-OR + subset test: computes `out = x ×b self` exactly as
    /// [`BitMatrix::multiply_into`] and immediately tests `within ≤ out`
    /// while the product words are still cache-hot, with the kernel
    /// dispatch hoisted and an early exit on the first violating word.
    /// Returns `(rows_ored, subset_holds)`.
    ///
    /// This is the one-pass form of the Def. 2 conditions: with
    /// `self = B^a` and `x = χ(w)`, `subset_holds` says every candidate
    /// of `within = χ(v)` has an `a`-successor in `χ(w)` — candidates
    /// that would die are detected without a second full scan, and the
    /// re-evaluation engine uses the same call to skip the intersection
    /// write-back entirely when an inequality is already stable.
    ///
    /// # Panics
    /// Panics if the vector lengths differ from `dim`.
    pub fn multiply_subset_into<S: RowSelector, C: ChiRead>(
        &self,
        x: &S,
        out: &mut BitVec,
        within: &C,
    ) -> (usize, bool) {
        assert_eq!(within.bits(), self.dim);
        let rows = self.multiply_into(x, out);
        (rows, within.is_subset_of_bits(out))
    }

    /// Counter-initializing multiply for the delta-counting fixpoint
    /// engine: for every set bit `i` of `x` and every entry `j` of row
    /// `i`, increments `counts[j]`. Afterwards each `counts[j]` has grown
    /// by `|column j of self ∩ x|` — the *support* of candidate `j` with
    /// respect to the source set `x`. Returns the number of increments
    /// performed (the initialization work measure).
    ///
    /// The selector is walked *run by run*
    /// ([`RowSelector::for_each_selected_run`]): each maximal run of
    /// selected rows resolves to one contiguous CSR segment
    /// ([`BitMatrix::rows_segment`]), so an RLE selector seeds with one
    /// offset lookup per run instead of one per bit (dense selectors
    /// coalesce their set bits into runs and keep the block-skip fast
    /// path underneath). The increments performed (and their count) are
    /// identical to the per-bit definition for every representation.
    ///
    /// # Panics
    /// Panics if `x` or `counts` do not have length `dim`.
    pub fn count_into<S: RowSelector>(&self, x: &S, counts: &mut [u32]) -> usize {
        assert_eq!(x.selector_len(), self.dim);
        assert_eq!(counts.len(), self.dim);
        let kernel = kernels::active();
        let mut increments = 0usize;
        x.for_each_selected_run(|start, end| {
            let segment = self.rows_segment(start, end);
            kernels::increment_scatter_with(kernel, counts, segment);
            increments += segment.len();
        });
        increments
    }

    /// Column-wise evaluation helper: clears every bit `j` of `keep` whose
    /// row `j` of `self` does **not** intersect `probe`.
    ///
    /// With `self = B^a` (the transpose of `F^a`) and `probe = χ_S(v)`,
    /// this computes `keep ∧ (χ_S(v) ×b F^a)` without materializing the
    /// product — the column-wise strategy of Sect. 3.3. Returns
    /// `(changed, rows_probed)`.
    ///
    /// `removed` is a caller-provided scratch buffer (cleared on entry);
    /// on return it holds the indices of the cleared bits, so hot loops
    /// reuse one allocation across calls and delta engines can feed the
    /// removal set straight into their worklist.
    pub fn retain_intersecting_rows(
        &self,
        keep: &mut BitVec,
        probe: &BitVec,
        removed: &mut Vec<u32>,
    ) -> (bool, usize) {
        assert_eq!(keep.len(), self.dim);
        assert_eq!(probe.len(), self.dim);
        let probed = self.probe_kept_rows(keep.iter_ones(), probe, removed);
        for &j in removed.iter() {
            keep.clear(j as usize);
        }
        (!removed.is_empty(), probed)
    }

    /// [`BitMatrix::retain_intersecting_rows`] over the χ-storage
    /// abstraction: `keep` and `probe` are [`ChiVec`]s of either
    /// backend. The probe order (ascending candidates of `keep`), the
    /// probe count and the removal list are identical to the dense
    /// version (both run through [`BitMatrix::probe_kept_rows`]), so
    /// solver work counters do not depend on the backend.
    pub fn retain_intersecting_chi(
        &self,
        keep: &mut ChiVec,
        probe: &ChiVec,
        removed: &mut Vec<u32>,
    ) -> (bool, usize) {
        assert_eq!(keep.len(), self.dim);
        assert_eq!(probe.len(), self.dim);
        let probed = self.probe_kept_rows(keep.iter_ones(), probe, removed);
        for &j in removed.iter() {
            keep.clear(j as usize);
        }
        (!removed.is_empty(), probed)
    }

    /// The shared probe phase of the column-wise evaluation: walks the
    /// kept candidates in ascending order, counts one probe per
    /// candidate, and collects (into the cleared `removed` buffer) the
    /// candidates whose matrix row does not intersect `probe`. One
    /// implementation for every (keep, probe) representation pair keeps
    /// the probe-count and removal-order contract — which the backend
    /// parity gates pin — in exactly one place.
    fn probe_kept_rows<S: RowSelector>(
        &self,
        kept: impl Iterator<Item = usize>,
        probe: &S,
        removed: &mut Vec<u32>,
    ) -> usize {
        removed.clear();
        let mut probed = 0usize;
        for j in kept {
            probed += 1;
            if !probe.selects_any(self.row(j)) {
                removed.push(j as u32);
            }
        }
        probed
    }

    /// Heap bytes held by the CSR arrays and the summary vector — the
    /// per-label matrix memory the paper's §5.1 accounting reports.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<u32>()
            + self.summary.heap_bytes()
    }

    /// Builds the transposed matrix.
    pub fn transpose(&self) -> BitMatrix {
        let mut edges = Vec::with_capacity(self.nnz());
        for i in 0..self.dim {
            for &j in self.row(i) {
                edges.push((j, i as u32));
            }
        }
        BitMatrix::from_edges(self.dim, &edges)
    }

    /// Iterator over all `(row, col)` one-entries.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.dim).flat_map(move |i| self.row(i).iter().map(move |&j| (i as u32, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitMatrix {
        // 0 -> {1, 2}, 1 -> {0}, 3 -> {3}; row 2 and 4 empty.
        BitMatrix::from_edges(5, &[(0, 2), (0, 1), (1, 0), (3, 3), (0, 1)])
    }

    #[test]
    fn rows_are_sorted_and_deduplicated() {
        let m = sample();
        assert_eq!(m.row(0), &[1, 2]);
        assert_eq!(m.row(1), &[0]);
        assert_eq!(m.row(2), &[] as &[u32]);
        assert_eq!(m.row(3), &[3]);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn get_checks_membership() {
        let m = sample();
        assert!(m.get(0, 1) && m.get(0, 2) && m.get(1, 0) && m.get(3, 3));
        assert!(!m.get(0, 0) && !m.get(2, 2) && !m.get(4, 4));
    }

    #[test]
    fn row_summary_marks_nonempty_rows() {
        let m = sample();
        assert_eq!(m.row_summary().to_indices(), vec![0, 1, 3]);
        assert_eq!(m.nonempty_rows(), 3);
    }

    #[test]
    fn multiply_matches_paper_example() {
        // The born_in forward matrix of Fig. 2(a): rows director1 (1) and
        // director2 (2) point at place (0).
        let f = BitMatrix::from_edges(5, &[(1, 0), (2, 0)]);
        let b = f.transpose();
        let all = BitVec::ones(5);
        let mut r = BitVec::zeros(5);
        // χ(director) ×b F^born_in = (1,0,0,0,0)
        f.multiply_into(&all, &mut r);
        assert_eq!(r.to_indices(), vec![0]);
        // χ(place) ×b B^born_in = (0,1,1,0,0)
        b.multiply_into(&all, &mut r);
        assert_eq!(r.to_indices(), vec![1, 2]);
    }

    #[test]
    fn multiply_with_empty_vector_is_empty() {
        let m = sample();
        let x = BitVec::zeros(5);
        let mut out = BitVec::ones(5);
        m.multiply_into(&x, &mut out);
        assert!(out.none_set());
    }

    #[test]
    fn retain_intersecting_rows_equals_column_wise_product() {
        let f = sample();
        let b = f.transpose();
        let x = BitVec::from_indices(5, &[0, 3]);
        // Row-wise product.
        let mut rowwise = BitVec::zeros(5);
        f.multiply_into(&x, &mut rowwise);
        // Column-wise: start from all candidates, retain those whose
        // B-row intersects x.
        let mut colwise = BitVec::ones(5);
        let mut removed = vec![99u32]; // stale scratch must be cleared
        b.retain_intersecting_rows(&mut colwise, &x, &mut removed);
        assert_eq!(rowwise, colwise);
        // The scratch buffer reports exactly the cleared bits.
        for &j in &removed {
            assert!(!colwise.get(j as usize));
        }
        assert_eq!(removed.len(), 5 - colwise.count_ones());
    }

    #[test]
    fn dense_and_sparse_multiply_paths_agree() {
        // 130 nodes forces several blocks, incl. a ragged tail; a chain
        // plus fan-out gives non-trivial rows.
        let dim = 130;
        let mut edges: Vec<(u32, u32)> = (0..dim as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 64), (5, 129), (77, 3), (129, 0)]);
        let m = BitMatrix::from_edges(dim, &edges);
        for x in [
            BitVec::ones(dim),                              // all-ones blocks
            BitVec::from_indices(dim, &[0, 63, 64, 129]),   // sparse path
            {
                let mut v = BitVec::ones(dim);
                v.clear(7);
                v.clear(70);
                v                                            // dense, not all-ones
            },
        ] {
            let mut out = BitVec::zeros(dim);
            let rows = m.multiply_into(&x, &mut out);
            assert_eq!(rows, x.count_ones());
            // Reference: per-bit definition.
            let mut expected = BitVec::zeros(dim);
            for i in 0..dim {
                if x.get(i) {
                    expected.set_indices(m.row(i));
                }
            }
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn count_into_counts_column_support() {
        let m = sample(); // 0 -> {1, 2}, 1 -> {0}, 3 -> {3}
        let x = BitVec::from_indices(5, &[0, 1]);
        let mut counts = vec![0u32; 5];
        let increments = m.count_into(&x, &mut counts);
        assert_eq!(counts, vec![1, 1, 1, 0, 0]);
        assert_eq!(increments, 3);
        // Counting is additive over repeated calls.
        let y = BitVec::from_indices(5, &[3]);
        m.count_into(&y, &mut counts);
        assert_eq!(counts, vec![1, 1, 1, 1, 0]);
    }

    #[test]
    fn rows_segment_concatenates_consecutive_rows() {
        let m = sample(); // 0 -> {1, 2}, 1 -> {0}, 3 -> {3}
        assert_eq!(m.rows_segment(0, 2), &[1, 2, 0]);
        assert_eq!(m.rows_segment(0, 5), &[1, 2, 0, 3]);
        assert_eq!(m.rows_segment(2, 3), &[] as &[u32]);
        assert_eq!(m.rows_segment(3, 3), &[] as &[u32]);
        // One segment per run visits exactly the per-row entries.
        let mut per_row = Vec::new();
        for i in 1..4 {
            per_row.extend_from_slice(m.row(i));
        }
        assert_eq!(m.rows_segment(1, 4), per_row.as_slice());
    }

    #[test]
    fn selected_runs_partition_the_selected_bits() {
        let indices = [0u32, 1, 2, 63, 64, 66, 129];
        let dense = BitVec::from_indices(130, &indices);
        let rle = RleBitVec::from_indices(130, &indices);
        let mut dense_runs = Vec::new();
        dense.for_each_selected_run(|a, b| dense_runs.push((a, b)));
        let mut rle_runs = Vec::new();
        rle.for_each_selected_run(|a, b| rle_runs.push((a, b)));
        assert_eq!(dense_runs, vec![(0, 3), (63, 65), (66, 67), (129, 130)]);
        assert_eq!(dense_runs, rle_runs);
        // The runs flatten back to the per-bit walk.
        let flat: Vec<usize> = dense_runs.iter().flat_map(|&(a, b)| a..b).collect();
        assert_eq!(
            flat,
            indices.iter().map(|&i| i as usize).collect::<Vec<_>>()
        );
    }

    #[test]
    fn transpose_is_involutive() {
        let m = sample();
        let tt = m.transpose().transpose();
        for i in 0..5 {
            assert_eq!(m.row(i), tt.row(i));
        }
    }

    #[test]
    fn entries_round_trip() {
        let m = sample();
        let entries: Vec<_> = m.entries().collect();
        let m2 = BitMatrix::from_edges(5, &entries);
        for i in 0..5 {
            assert_eq!(m.row(i), m2.row(i));
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = BitMatrix::from_edges(4, &[]);
        assert_eq!(m.nnz(), 0);
        assert!(m.row_summary().none_set());
        let mut out = BitVec::ones(4);
        m.multiply_into(&BitVec::ones(4), &mut out);
        assert!(out.none_set());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        BitMatrix::from_edges(3, &[(0, 3)]);
    }
}
