//! Experiment harness: regenerates every table of the paper's evaluation
//! section (Sect. 5) over the synthetic datasets.
//!
//! * [`run_table2`] — SPARQLSIM vs. Ma et al. runtimes on the BGP cores
//!   of B0–B19 (Table 2);
//! * [`run_table3`] — result counts, required triples, pruning time and
//!   triples after pruning for all 32 queries (Table 3);
//! * [`run_table45`] — full vs. pruned query times per engine (Table 4
//!   with the hash-join/RDFox stand-in, Table 5 with the
//!   nested-loop/Virtuoso stand-in);
//! * [`run_iterations`] — the §5.3 iteration-count narrative (L1 in two
//!   iterations, L0 in many).
//!
//! Dataset sizes are configurable through `DUALSIM_LUBM_UNIS` and
//! `DUALSIM_DBPEDIA_ENTITIES`; the defaults keep a full `experiments all`
//! run in the minutes range on a laptop.

#![warn(missing_docs)]

use dualsim_core::baseline::dual_simulation_ma;
use dualsim_core::{build_sois, prune, solve, SolverConfig};
use dualsim_datagen::workloads::{all_queries, BenchQuery, Dataset};
use dualsim_datagen::{generate_dbpedia, generate_lubm, DbpediaConfig, LubmConfig};
use dualsim_engine::{required_triples, Engine};
use dualsim_graph::GraphDb;
use dualsim_query::Query;
use std::time::{Duration, Instant};

/// The pair of benchmark databases.
pub struct Datasets {
    /// LUBM-style database.
    pub lubm: GraphDb,
    /// DBpedia-style database.
    pub dbpedia: GraphDb,
}

impl Datasets {
    /// Database a workload query runs against.
    pub fn for_query(&self, q: &BenchQuery) -> &GraphDb {
        match q.dataset {
            Dataset::Lubm => &self.lubm,
            Dataset::Dbpedia => &self.dbpedia,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Generates the benchmark databases (sizes overridable via environment,
/// see the crate docs).
pub fn default_datasets() -> Datasets {
    let unis = env_usize("DUALSIM_LUBM_UNIS", 15);
    let entities = env_usize("DUALSIM_DBPEDIA_ENTITIES", 20_000);
    Datasets {
        lubm: generate_lubm(&LubmConfig {
            universities: unis,
            seed: 7,
        }),
        dbpedia: generate_dbpedia(&DbpediaConfig {
            entities,
            ..DbpediaConfig::default()
        }),
    }
}

/// Moderate datasets for the Criterion benches: large enough that the
/// asymptotic behaviour shows, small enough that a full `cargo bench`
/// stays in the minutes range (the naive Ma et al. baseline is part of
/// the suite).
pub fn bench_datasets() -> Datasets {
    Datasets {
        lubm: generate_lubm(&LubmConfig {
            universities: 6,
            seed: 7,
        }),
        dbpedia: generate_dbpedia(&DbpediaConfig {
            entities: 8_000,
            ..DbpediaConfig::default()
        }),
    }
}

/// Small datasets for unit tests of the harness itself.
pub fn tiny_datasets() -> Datasets {
    Datasets {
        lubm: generate_lubm(&LubmConfig {
            universities: 2,
            seed: 7,
        }),
        dbpedia: generate_dbpedia(&DbpediaConfig {
            entities: 2_000,
            relation_labels: 40,
            attribute_labels: 10,
            classes: 15,
            avg_degree: 3.0,
            seed: 11,
        }),
    }
}

/// Runs `f` `reps` times and returns (last result, median duration).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(reps > 0);
    let mut times = Vec::with_capacity(reps);
    let mut result = None;
    for _ in 0..reps {
        let start = Instant::now();
        result = Some(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    (result.expect("reps > 0"), times[times.len() / 2])
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Query id (B0–B19).
    pub id: &'static str,
    /// SPARQLSIM (SOI solver) runtime on the BGP core.
    pub t_sparqlsim: Duration,
    /// Ma et al. runtime on the same core.
    pub t_ma: Duration,
}

/// Table 2: SPARQLSIM vs. Ma et al. on the BGP cores of B0–B19 (the
/// paper strips OPTIONAL for this comparison; `mandatory_core` does the
/// same).
pub fn run_table2(dbpedia: &GraphDb, reps: usize) -> Vec<Table2Row> {
    let cfg = SolverConfig::default();
    all_queries()
        .iter()
        .filter(|b| b.id.starts_with('B'))
        .map(|bench| {
            let core = Query::Bgp(bench.query.mandatory_core());
            let (_, t_sparqlsim) = time_median(reps, || {
                let sois = build_sois(dbpedia, &core);
                sois.iter()
                    .map(|s| solve(dbpedia, s, &cfg))
                    .collect::<Vec<_>>()
            });
            let (_, t_ma) = time_median(reps, || {
                build_sois(dbpedia, &core)
                    .iter()
                    .map(|s| dual_simulation_ma(dbpedia, s))
                    .collect::<Vec<_>>()
            });
            Table2Row {
                id: bench.id,
                t_sparqlsim,
                t_ma,
            }
        })
        .collect()
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Query id.
    pub id: &'static str,
    /// Result-set size (`Result No.`).
    pub results: usize,
    /// Triples used by some match (`No. Req. Triples`).
    pub required: usize,
    /// Pruning time (`t_SPARQLSIM`).
    pub t_sparqlsim: Duration,
    /// Triples surviving the pruning (`Tripl. aft. Pruning`).
    pub kept: usize,
    /// Solver iterations summed over union-free branches (§5.3).
    pub iterations: usize,
}

/// Table 3: pruning effectiveness for all 32 queries. Result sets are
/// computed on the pruned database (sound by Thm. 2, and much faster),
/// using the given engine.
pub fn run_table3(data: &Datasets, engine: &dyn Engine) -> Vec<Table3Row> {
    let cfg = SolverConfig::default();
    all_queries()
        .iter()
        .map(|bench| {
            let db = data.for_query(bench);
            let (report, t_sparqlsim) = time_median(1, || prune(db, &bench.query, &cfg));
            let pruned = report.pruned_db(db);
            let results = engine.evaluate(&pruned, &bench.query);
            // Provenance-exact accounting runs on the pruned database:
            // sound by Thm. 2 and identical to the full-database count.
            let required = required_triples(&pruned, &bench.query).len();
            Table3Row {
                id: bench.id,
                results: results.len(),
                required,
                t_sparqlsim,
                kept: report.num_kept(),
                iterations: report.iterations(),
            }
        })
        .collect()
}

/// One row of Table 4/5.
#[derive(Debug, Clone)]
pub struct Table45Row {
    /// Query id.
    pub id: &'static str,
    /// Query time on the full database (`t_DB`).
    pub t_db: Duration,
    /// Query time on the pruned database (`t_DB pruned`).
    pub t_pruned: Duration,
    /// Pruned query time plus pruning time
    /// (`t_DB pruned + t_SPARQLSIM`).
    pub t_total: Duration,
    /// Result count (sanity: must agree between full and pruned).
    pub results: usize,
}

/// Tables 4 and 5: full vs. pruned evaluation times for one engine.
/// Panics if pruning changes a result set — that would falsify the
/// soundness theorem, and the harness doubles as an end-to-end check.
pub fn run_table45(data: &Datasets, engine: &dyn Engine, reps: usize) -> Vec<Table45Row> {
    let cfg = SolverConfig::default();
    all_queries()
        .iter()
        .map(|bench| {
            let db = data.for_query(bench);
            let (full, t_db) = time_median(reps, || engine.evaluate(db, &bench.query));
            let report = prune(db, &bench.query, &cfg);
            let pruned_db = report.pruned_db(db);
            let (pruned, t_pruned) =
                time_median(reps, || engine.evaluate(&pruned_db, &bench.query));
            assert_eq!(
                full, pruned,
                "{}: pruning changed the result set — soundness violated",
                bench.id
            );
            Table45Row {
                id: bench.id,
                t_db,
                t_pruned,
                t_total: t_pruned + report.total_time(),
                results: full.len(),
            }
        })
        .collect()
}

/// One row of the dual-vs-forward pruning-power ablation.
#[derive(Debug, Clone)]
pub struct PruningPowerRow {
    /// Query id.
    pub id: &'static str,
    /// Triples kept by dual-simulation pruning.
    pub dual_kept: usize,
    /// Triples kept by plain forward-simulation pruning (the Panda
    /// notion) — always ≥ `dual_kept`.
    pub forward_kept: usize,
}

/// The Sect.-6 claim "we rely on dual simulation being more effective in
/// pruning unnecessary triples \[than plain simulation\]", measured per
/// workload query.
pub fn run_pruning_power(data: &Datasets) -> Vec<PruningPowerRow> {
    use dualsim_core::{prune_with, SimulationKind};
    let cfg = SolverConfig::default();
    all_queries()
        .iter()
        .map(|bench| {
            let db = data.for_query(bench);
            let dual = prune(db, &bench.query, &cfg);
            let forward = prune_with(db, &bench.query, &cfg, SimulationKind::Forward, 1);
            assert!(
                forward.num_kept() >= dual.num_kept(),
                "{}: forward simulation must be the weaker notion",
                bench.id
            );
            PruningPowerRow {
                id: bench.id,
                dual_kept: dual.num_kept(),
                forward_kept: forward.num_kept(),
            }
        })
        .collect()
}

/// One row of the simulation-spectrum quality report.
#[derive(Debug, Clone)]
pub struct SpectrumRow {
    /// Query id (BGP core).
    pub id: &'static str,
    /// Total candidates Σ|χ(v)| under strong simulation.
    pub strong: usize,
    /// Total candidates under dual simulation.
    pub dual: usize,
    /// Total candidates under plain forward simulation.
    pub forward: usize,
}

/// Quality comparison across the simulation spectrum (Sect. 6: dual
/// simulation trades topology for speed; strong simulation restores it):
/// candidate counts per notion on the connected BGP cores of the
/// workload. Invariant `strong ≤ dual ≤ forward` is asserted.
pub fn run_simulation_spectrum(data: &Datasets) -> Vec<SpectrumRow> {
    use dualsim_core::{build_sois_with, strong_simulation, SimulationKind};
    let cfg = SolverConfig::default();
    let mut rows = Vec::new();
    for bench in all_queries() {
        let db = data.for_query(&bench);
        let core = Query::Bgp(bench.query.mandatory_core());
        let soi = match build_sois(db, &core).pop() {
            Some(soi) if soi.pattern_is_connected() => soi,
            _ => continue,
        };
        let dual_sol = solve(db, &soi, &cfg);
        // Strong simulation inspects one ball per candidate of its center
        // variable; bound the per-row cost so the report stays in the
        // seconds range on the high-volume rows.
        let center_candidates = dual_sol
            .chi
            .iter()
            .map(|c| c.count_ones())
            .min()
            .unwrap_or(0);
        if center_candidates > 300 {
            continue;
        }
        let dual: usize = dual_sol.chi.iter().map(|c| c.count_ones()).sum();
        let strong_sim = strong_simulation(db, &soi, &cfg);
        let strong: usize = strong_sim.chi.iter().map(|c| c.count_ones()).sum();
        let fsoi = build_sois_with(db, &core, SimulationKind::Forward).remove(0);
        let fwd_sol = solve(db, &fsoi, &cfg);
        let forward: usize = fwd_sol.chi.iter().map(|c| c.count_ones()).sum();
        assert!(strong <= dual && dual <= forward, "{}", bench.id);
        rows.push(SpectrumRow {
            id: bench.id,
            strong,
            dual,
            forward,
        });
    }
    rows
}

/// One row of the §5.3 iteration report.
#[derive(Debug, Clone)]
pub struct IterationRow {
    /// Query id.
    pub id: &'static str,
    /// Solver iterations (stabilization passes).
    pub iterations: usize,
    /// χ updates.
    pub updates: usize,
    /// Triples after pruning vs. required triples — the
    /// over-approximation factor discussed for L1.
    pub kept: usize,
}

/// The §5.3 narrative: iteration counts per LUBM query.
pub fn run_iterations(data: &Datasets) -> Vec<IterationRow> {
    let cfg = SolverConfig::default();
    all_queries()
        .iter()
        .filter(|b| b.dataset == Dataset::Lubm)
        .map(|bench| {
            let db = data.for_query(bench);
            let report = prune(db, &bench.query, &cfg);
            IterationRow {
                id: bench.id,
                iterations: report.iterations(),
                updates: report.branch_stats.iter().map(|s| s.updates).sum(),
                kept: report.num_kept(),
            }
        })
        .collect()
}

/// Formats a duration in seconds with µs resolution, like the paper's
/// tables.
pub fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualsim_engine::{HashJoinEngine, NestedLoopEngine};

    #[test]
    fn table2_covers_all_b_queries() {
        let data = tiny_datasets();
        let rows = run_table2(&data.dbpedia, 1);
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn table3_rows_are_consistent() {
        let data = tiny_datasets();
        let rows = run_table3(&data, &NestedLoopEngine);
        assert_eq!(rows.len(), 32);
        for row in &rows {
            assert!(
                row.required <= row.kept,
                "{}: required {} must be covered by kept {} (Thm. 2)",
                row.id,
                row.required,
                row.kept
            );
            if row.results == 0 {
                assert_eq!(row.required, 0, "{}", row.id);
            }
        }
    }

    #[test]
    fn table45_soundness_holds_for_both_engines() {
        let data = tiny_datasets();
        // run_table45 asserts result-set equality internally.
        let rows_hash = run_table45(&data, &HashJoinEngine, 1);
        let rows_nested = run_table45(&data, &NestedLoopEngine, 1);
        assert_eq!(rows_hash.len(), 32);
        for (h, n) in rows_hash.iter().zip(rows_nested.iter()) {
            assert_eq!(h.results, n.results, "{}: engines disagree", h.id);
        }
    }

    #[test]
    fn iteration_report_shows_l0_l1_contrast() {
        let data = tiny_datasets();
        let rows = run_iterations(&data);
        let l0 = rows.iter().find(|r| r.id == "L0").unwrap();
        let l1 = rows.iter().find(|r| r.id == "L1").unwrap();
        assert!(
            l0.iterations >= l1.iterations,
            "L0 ({}) should need at least as many iterations as L1 ({})",
            l0.iterations,
            l1.iterations
        );
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bb"));
    }
}
